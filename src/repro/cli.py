"""Command-line interface: ``jmake``.

Subcommands::

    jmake demo                      run JMake on a demo patch over the
                                    synthetic tree and print the report
    jmake evaluate [--commits N]    build a corpus, run the evaluation
                                    window, and print every table/figure
    jmake janitors [--commits N]    identify janitors (Tables I-II)
    jmake trace <commit>            check one commit with tracing on and
                                    print its annotated span tree
    jmake serve [--shards N]        start the sharded check service,
                                    submit a batch of commits, report
                                    per-request verdicts and scheduling
                                    stats, and drain cleanly
    jmake worker --connect H:P      join a coordinator as a cross-host
                                    worker: authenticate with the
                                    shared key, rebuild the corpus from
                                    the shipped spec, and serve WORK
                                    frames until shutdown (reconnecting
                                    through partitions with jittered
                                    backoff)
    jmake stats <sink>              read a telemetry sink back: latest
                                    snapshot tables (p50/p90/p99 request
                                    latency) or event-kind counts
    jmake watch [--out-dir D]       fleet mode: continuously pull unseen
                                    commits from a stream, check them
                                    through the sharded service, journal
                                    every verdict, and fold the journal
                                    into the persistent verdict store
    jmake query <store>             ask an ingested store questions —
                                    typed filters, the janitor ranking,
                                    or the canonical dump CI diffs —
                                    without compiling anything

Output paths: every sink-producing subcommand takes ``--out-dir DIR``
and resolves its outputs to conventional filenames inside it
(``stats.json``, ``metrics.jsonl``, ``events.jsonl``, ``run.jnl``,
``verdicts.sqlite``). The old per-sink flags (``--stats-out``,
``--metrics-sink``, ``--events-out``, ``--journal``) keep working as
explicit per-sink overrides but print a deprecation notice on stderr;
``repro.api.resolve_outputs`` is the one shared validator behind all
of them.

Observability: ``jmake evaluate --trace-out FILE`` writes a Chrome
trace-event JSON (load it in chrome://tracing or https://ui.perfetto.dev)
with one span tree per checked commit; ``--metrics-out FILE`` writes the
pipeline metrics registry (counters/gauges/histograms, cache telemetry
included) as JSON. ``jmake serve --metrics-sink/--events-out/
--stats-interval`` turn the service into a continuous telemetry plane:
periodic metric snapshots to OpenMetrics or JSONL sinks plus a
structured operational event log, both resumable across restarts.
``--log-level`` configures the ``repro.*`` logger hierarchy. Everything
runs offline against the generated substrate; see README.md.

This module imports only from :mod:`repro.api` — the stable facade is
the CLI's sole dependency on the library, by design.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import api


def _demo(args: argparse.Namespace) -> int:
    tree = api.generate_tree()
    session = api.CheckSession.from_generated_tree(tree)

    path = "drivers/staging/comedi/comedi0.c"
    original = tree.files[path]
    edited = original.replace("int status = 0;",
                              "int status = 0;\n\tint retries = 0;")
    files = dict(tree.files)
    files[path] = edited
    worktree = api.CheckSession.worktree_for_files(files)
    patch = api.Patch(files=[api.diff_texts(path, original, edited)])

    print(f"Checking a demo patch touching {path} ...")
    report = session.check_patch(worktree, patch)
    print(report.render())
    return 0 if report.certified else 1


def _resolve_outputs(command: str, out_dir: "str | None",
                     sinks: dict, deprecated=()) -> dict:
    """Resolve a subcommand's output paths through the one shared
    validator (``api.resolve_outputs``).

    ``deprecated`` lists ``(sink_name, flag)`` pairs whose flags
    predate the ``--out-dir`` convention: when one was given, a notice
    goes to stderr (never stdout — CI's recovery job diffs stdout) and
    the explicit value still wins as the documented per-sink override.
    """
    for name, flag in deprecated:
        if sinks.get(name) is not None:
            print(f"jmake {command}: notice: {flag} is deprecated; "
                  f"prefer --out-dir DIR ({name} lands at "
                  f"DIR/{api.OUT_DIR_DEFAULTS[name]}); the explicit "
                  f"flag keeps working as a per-sink override",
                  file=sys.stderr)
    return api.resolve_outputs(out_dir, sinks)


def _evaluate(args: argparse.Namespace) -> int:
    try:
        api.validate_jobs(args.jobs, what="--jobs")
    except ValueError as error:
        print(f"jmake evaluate: {error}", file=sys.stderr)
        return 2
    try:
        journal = _resolve_outputs(
            "evaluate", args.out_dir, {"journal": args.journal},
            deprecated=(("journal", "--journal"),))["journal"]
    except ValueError as error:
        print(f"jmake evaluate: {error}", file=sys.stderr)
        return 2
    fault_plan = None
    injector = api.NULL_INJECTOR
    if args.fault_plan:
        try:
            fault_plan = api.FaultPlan.load(args.fault_plan)
        except api.FaultPlanError as error:
            print(f"jmake evaluate: {error}", file=sys.stderr)
            return 2
        injector = api.FaultInjector(fault_plan)
        print(f"fault plan loaded: {len(fault_plan.specs)} rule(s), "
              f"seed={fault_plan.seed!r}")
    try:
        retry_policy = api.RetryPolicy(
            max_retries=args.max_retries,
            step_timeout_seconds=args.step_timeout)
    except ValueError as error:
        print(f"jmake evaluate: {error}", file=sys.stderr)
        return 2
    spec = api.CorpusSpec(seed=args.seed,
                          history_commits=max(200, args.commits // 2),
                          eval_commits=args.commits)
    print(f"Building corpus ({spec.eval_commits} evaluation commits) ...")
    corpus = api.build_corpus(spec)
    options = api.JMakeOptions(use_configs=not args.no_configs,
                               use_allmodconfig=args.allmodconfig)
    if args.no_cache:
        cache: "api.BuildCache | bool" = False
    else:
        policy = api.CachePolicy(clock=args.cache_clock)
        if args.cache_file:
            cache = api.BuildCache.load(args.cache_file, policy,
                                        injector=injector)
        else:
            cache = api.BuildCache(policy)
    if args.resume and not journal:
        print("jmake evaluate: --resume requires --journal "
              "(or --out-dir)", file=sys.stderr)
        return 2
    if args.chaos_kill_after is not None and not journal:
        print("jmake evaluate: --chaos-kill-after requires --journal "
              "(or --out-dir)", file=sys.stderr)
        return 2
    observe = bool(args.trace_out or args.metrics_out)
    session = api.EvaluationSession(corpus, options=options, cache=cache,
                                    observe=observe, fault_plan=fault_plan,
                                    retry_policy=retry_policy)
    crash_point = None
    if args.chaos_kill_after is not None:
        try:
            crash_point = api.CrashPoint(args.chaos_kill_after)
        except ValueError as error:
            print(f"jmake evaluate: {error}", file=sys.stderr)
            return 2
    print("Running JMake over the evaluation window ...")
    try:
        result = session.run(limit=args.limit, jobs=args.jobs,
                             journal=journal, resume=args.resume,
                             on_journal_append=crash_point)
    except api.SimulatedCrashError as error:
        # the chaos harness killed the run at the requested journal
        # offset; everything already journaled survives for --resume
        print(f"jmake evaluate: {error}", file=sys.stderr)
        print(f"resume with: jmake evaluate --journal {journal} "
              f"--resume", file=sys.stderr)
        return 3
    except api.JournalError as error:
        # covers corruption too: a damaged interior record must stop
        # the run loudly, never silently re-check what was durable
        print(f"jmake evaluate: {error}", file=sys.stderr)
        return 2
    if result.journal_stats is not None:
        stats = result.journal_stats
        print(f"journal {stats['path']}: {stats['records']} verdict(s) "
              f"durable ({stats['resumed']} resumed, "
              f"{stats['emitted']} fresh, "
              f"{stats['checkpoints_written']} checkpoint(s))")
    if args.cache_file and session.cache is not None:
        session.cache.save(args.cache_file)
        print(f"build cache written to {args.cache_file}")
    if args.trace_out:
        events = api.write_chrome_trace(args.trace_out,
                                        result.span_trees or [])
        print(f"trace written to {args.trace_out} "
              f"({events} events, {len(result.span_trees or [])} commits)")
    if args.metrics_out:
        combined = result.metrics.snapshot() \
            if result.metrics is not None else api.MetricsRegistry()
        if session.cache is not None:
            combined.merge(session.cache.stats.registry)
        # the substrate's namespaced counters (substrate.prepared.*,
        # substrate.replay.*) ride along in the same payload
        combined.merge(api.collect_substrate_metrics())
        api.atomic_write_json(args.metrics_out, combined.to_dict())
        print(f"metrics written to {args.metrics_out}")

    print(f"\ncommits: {result.total_commits}  ignored: "
          f"{result.ignored_commits}  patches checked: "
          f"{len(result.patches)}\n")
    if fault_plan:
        injected = sum(len(patch.fault_reports)
                       for patch in result.patches)
        partial = [patch for patch in result.patches
                   if patch.quarantined_archs]
        print(f"Robustness: {injected} fault(s) injected, "
              f"{len(partial)} commit(s) degraded to PARTIAL")
        for patch in partial:
            print(f"  {patch.commit_id}: {patch.verdict}")
        print()
    if args.cache_stats and result.cache_stats is not None:
        print("Build cache statistics\n" + result.cache_stats.render()
              + "\n")
    if args.cache_stats:
        from repro.cpp import prepared
        print("Substrate fast-path statistics\n" + prepared.render_stats()
              + "\n")
    _, text = api.table3(result)
    print("Table III — patch characteristics\n" + text + "\n")
    _, text = api.table4(result)
    print("Table IV — reasons lines escape the compiler (janitors)\n"
          + text + "\n")
    for experiment_id in ("E-F4a", "E-F4b", "E-F4c", "E-F5", "E-F6",
                          "E-S1", "E-S2", "E-S3", "E-S4", "E-S5", "E-S6"):
        _, text = api.EXPERIMENTS[experiment_id].run(result)
        print(text + "\n")
    if args.output:
        api.atomic_write_text(args.output,
                              api.write_markdown_report(result))
        print(f"markdown report written to {args.output}")
    return 0


def _build_telemetry(metrics_paths, events_path) -> tuple:
    """Sinks/EventLog/snapshot-seed from resolved telemetry paths.

    Returns ``(metrics_sinks, events, snapshot_start_seq, closers)``.
    JSONL sinks carry their journal-style ``last_seq`` watermark out of
    recovery; seeding the emitters with it is what makes a restarted
    service continue the monotone sequence instead of duplicating
    already-durable records.
    """
    metrics_sinks = []
    closers = []
    snapshot_start = 0
    for path in metrics_paths or []:
        if path.endswith(".jsonl"):
            sink = api.JsonlSink(path)
            snapshot_start = max(snapshot_start, sink.last_seq)
            closers.append(sink)
        else:
            sink = api.OpenMetricsSink(path)
        metrics_sinks.append(sink)
    events = None
    if events_path:
        event_sink = api.JsonlSink(events_path)
        closers.append(event_sink)
        events = api.EventLog(start_seq=event_sink.last_seq,
                              sinks=[event_sink])
    elif metrics_sinks:
        # sinks imply observe mode: keep the in-memory ring so
        # stats()["events"] is populated even without a durable file
        events = api.EventLog()
    return metrics_sinks, events, snapshot_start, closers


def _serve(args: argparse.Namespace) -> int:
    try:
        api.validate_jobs(args.shards, what="--shards")
        if args.jobs is not None:
            api.validate_jobs(args.jobs, what="--jobs")
        config = api.ServiceConfig(
            shards=args.shards,
            batch_limit=args.batch_limit,
            max_pending_requests=args.max_pending,
            transport=args.transport,
            jobs=args.jobs,
            start_method=args.start_method,
            listen=args.listen,
            auth_key=args.auth_key,
            spawn_workers=not args.no_spawn,
            heartbeat_seconds=args.heartbeat,
            lease_seconds=args.lease,
            reconnect_grace_seconds=args.reconnect_grace)
        if args.stats_interval is not None and args.stats_interval <= 0:
            raise ValueError(f"--stats-interval must be positive, "
                             f"got {args.stats_interval}")
    except ValueError as error:
        print(f"jmake serve: {error}", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = api.FaultPlan.load(args.fault_plan)
        except api.FaultPlanError as error:
            print(f"jmake serve: {error}", file=sys.stderr)
            return 2
        config.fault_plan = fault_plan
    try:
        resolved = _resolve_outputs(
            "serve", args.out_dir,
            {"stats": args.stats_out, "metrics": args.metrics_sink,
             "events": args.events_out},
            deprecated=(("stats", "--stats-out"),
                        ("metrics", "--metrics-sink"),
                        ("events", "--events-out")))
    except ValueError as error:
        print(f"jmake serve: {error}", file=sys.stderr)
        return 2
    stats_out = resolved["stats"]
    events_out = resolved["events"]
    metrics_paths = resolved["metrics"]
    if isinstance(metrics_paths, str):
        metrics_paths = [metrics_paths]
    try:
        metrics_sinks, events, snapshot_start, closers = \
            _build_telemetry(metrics_paths, events_out)
    except OSError as error:
        print(f"jmake serve: {error}", file=sys.stderr)
        return 2
    if events is not None:
        config.events = events
        api.set_substrate_event_hook(
            lambda enabled: events.emit(api.EVENT_FASTPATH_CHANGED,
                                        enabled=enabled))
    spec = api.CorpusSpec(seed=args.seed,
                          history_commits=max(200, args.commits // 2),
                          eval_commits=args.commits)
    print(f"Building corpus ({spec.eval_commits} evaluation commits) ...")
    corpus = api.build_corpus(spec)
    service = api.serve(corpus,
                        config=config,
                        cache=not args.no_cache)
    if metrics_sinks:
        service.snapshotter = api.Snapshotter(
            service.metrics,
            collectors=[api.collect_substrate_metrics],
            interval_seconds=args.stats_interval,
            start_seq=snapshot_start,
            sinks=metrics_sinks)

    commits = corpus.repository.log(since=api.Corpus.TAG_EVAL_START,
                                    until=api.Corpus.TAG_EVAL_END)
    checkable = [commit for commit in commits
                 if api.extract_changed_files(
                     corpus.repository.show(commit))]
    if args.limit is not None:
        checkable = checkable[:args.limit]
    if config.transport == "asyncio":
        print(f"service: transport=asyncio shards={config.shards} "
              f"batch_limit={config.batch_limit}; submitting "
              f"{len(checkable)} request(s) ...")
    else:
        fleet = ""
        if config.listen:
            fleet = f" listen={config.listen}"
        if not config.spawn_workers:
            fleet += " (awaiting external workers)"
        print(f"service: transport={config.transport} "
              f"jobs={config.jobs or config.shards} "
              f"start_method={config.start_method}{fleet}; submitting "
              f"{len(checkable)} request(s) ...")
    try:
        results = service.check_commits(
            [commit.id for commit in checkable])
        stats = service.stats()
    finally:
        api.set_substrate_event_hook(None)
        for sink in closers:
            sink.close()
    for result in results:
        print(f"  {result.request_id} {result.commit_id}: "
              f"{result.verdict} "
              f"({result.elapsed_sim_seconds:.1f}s simulated)")
    print(f"\nrequests completed: {stats['requests_completed']}")
    for index, shard in enumerate(stats["shards"]):
        if "units_run" in shard:
            print(f"  shard {index}: units={shard['units_run']} "
                  f"batches={shard['batches_run']} "
                  f"archs={','.join(shard['archs']) or '-'} "
                  f"queue_depth={shard['queue_depth']}")
        else:
            print(f"  worker {shard['worker']}: pid={shard['pid']} "
                  f"assignments={shard['assignments']} "
                  f"crashes={shard['crashes']} "
                  f"hangs={shard['hangs']} "
                  f"restarts={shard['restarts']}")
    batcher = stats["batcher"]
    if batcher:
        print(f"  batcher: flushes={batcher.get('flushes', 0)} "
              f"units_batched={batcher.get('units_batched', 0)} "
              f"pending={batcher.get('pending_units', 0)}")
    health = stats["health"]
    print(f"  health: {health['status']} "
          f"(breakers={health['breaker_open_shards'] or '-'} "
          f"quarantined={','.join(health['quarantined_archs']) or '-'})")
    if stats.get("snapshots"):
        snapshots = stats["snapshots"]
        print(f"  snapshots: {snapshots['samples_taken']} sample(s), "
              f"seq={snapshots['seq']}, "
              f"interval={snapshots['interval_seconds']}s")
        for sink in metrics_sinks:
            print(f"    sink {sink.path}")
    if events is not None:
        event_stats = stats["events"]
        counts = " ".join(f"{kind}={count}" for kind, count
                          in event_stats["counts"].items()) or "-"
        print(f"  events: seq={event_stats['seq']} {counts}")
        if events_out:
            print(f"    sink {events_out}")
    if stats_out:
        api.atomic_write_json(stats_out, stats)
        print(f"stats written to {stats_out}")
    drained = not stats["started"] and not batcher.get("pending_units")
    print("drain: clean" if drained else "drain: NOT CLEAN")
    return 0 if drained and len(results) == len(checkable) else 1


def _worker(args: argparse.Namespace) -> int:
    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
        if not host or not 0 < port < 65536:
            raise ValueError
    except ValueError:
        print(f"jmake worker: --connect wants HOST:PORT, "
              f"got {args.connect!r}", file=sys.stderr)
        return 2
    corpus = None
    if args.seed is not None:
        # pre-build the corpus locally instead of waiting for the
        # coordinator's spec; the WELCOME fingerprint check still
        # proves both sides see the same tree
        spec = api.CorpusSpec(seed=args.seed,
                              history_commits=max(200, args.commits // 2),
                              eval_commits=args.commits)
        print(f"Building corpus ({spec.eval_commits} evaluation "
              f"commits) ...")
        corpus = api.build_corpus(spec)
    try:
        reconnect = api.ReconnectPolicy(max_attempts=args.max_attempts)
        client = api.WorkerClient(
            host, port,
            auth_key=args.auth_key,
            worker_id=args.worker_id,
            corpus=corpus,
            use_cache=not args.no_cache,
            start_method=args.start_method or "fork",
            reconnect=reconnect)
    except ValueError as error:
        print(f"jmake worker: {error}", file=sys.stderr)
        return 2
    print(f"worker: connecting to {host}:{port} ...")
    try:
        summary = client.run()
    except api.AuthError as error:
        print(f"jmake worker: {error}", file=sys.stderr)
        return 4
    except api.CorpusMismatchError as error:
        print(f"jmake worker: {error}", file=sys.stderr)
        print("hint: rebuild with the coordinator's --seed/--commits "
              "(or drop --seed to take the wire spec)", file=sys.stderr)
        return 4
    except (api.TransportError, OSError) as error:
        print(f"jmake worker: {error}", file=sys.stderr)
        return 3
    print(f"worker {summary['worker_id']} done: "
          f"{summary['assignments']} assignment(s), "
          f"{summary['reconnects']} reconnect(s), "
          f"lease epoch {summary['lease']}")
    return 0


def _watch(args: argparse.Namespace) -> int:
    try:
        api.validate_jobs(args.shards, what="--shards")
        if args.jobs is not None:
            api.validate_jobs(args.jobs, what="--jobs")
        resolved = _resolve_outputs(
            "watch", args.out_dir,
            {"store": args.store, "journal": args.journal,
             "events": args.events_out, "stats": args.stats_out})
        service_config = api.ServiceConfig(
            shards=args.shards,
            transport=args.transport,
            jobs=args.jobs,
            start_method=args.start_method)
        config = api.WatchConfig(
            batch_size=args.batch_size,
            max_batches=args.max_batches,
            limit=args.limit,
            fsync=not args.no_fsync,
            chaos_kill_after=args.chaos_kill_after,
            service=service_config,
            cache=not args.no_cache,
            follow=args.follow,
            poll_interval_seconds=args.poll_interval,
            stop_file=args.stop_file,
            idle_timeout_seconds=args.idle_timeout)
    except ValueError as error:
        print(f"jmake watch: {error}", file=sys.stderr)
        return 2
    store_path = resolved["store"]
    journal = resolved["journal"]
    if not store_path or not journal:
        print("jmake watch: needs --out-dir (or both --store and "
              "--journal) so the store and journal persist",
              file=sys.stderr)
        return 2
    events = None
    closers = []
    if resolved["events"]:
        event_sink = api.JsonlSink(resolved["events"])
        closers.append(event_sink)
        events = api.EventLog(start_seq=event_sink.last_seq,
                              sinks=[event_sink])
    spec = api.CorpusSpec(seed=args.seed,
                          history_commits=max(200, args.commits // 2),
                          eval_commits=args.commits)
    print(f"Building corpus ({spec.eval_commits} evaluation commits) ...")
    corpus = api.build_corpus(spec)
    options = api.JMakeOptions(use_configs=not args.no_configs,
                               use_allmodconfig=args.allmodconfig)
    try:
        if args.source == "synthetic":
            source = api.SyntheticTrafficSource(corpus, args.traffic,
                                                seed=args.traffic_seed)
        else:
            source = api.WindowSource(corpus)
    except ValueError as error:
        print(f"jmake watch: {error}", file=sys.stderr)
        return 2
    resume_hint = f"--out-dir {args.out_dir}" if args.out_dir else \
        f"--store {store_path} --journal {journal}"
    mode = " follow" if args.follow else ""
    print(f"watch: source={args.source} transport={args.transport} "
          f"shards={args.shards} batch_size={args.batch_size}{mode}; "
          f"store={store_path} journal={journal}")
    session = api.WatchSession(corpus, store=store_path,
                               journal=journal, source=source,
                               options=options, config=config,
                               events=events, resume=args.resume)
    previous_handlers = {}
    if args.follow:
        import signal

        def _graceful(signum, frame):
            # flag only; the loop stops at the next batch boundary so
            # the in-flight batch lands durably first
            session.request_stop("signal")

        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _graceful)
    try:
        result = session.run()
    except api.SimulatedCrashError as error:
        # the dying verdict is already durable in the journal; the
        # resumed daemon catches the store up and continues the stream
        print(f"jmake watch: {error}", file=sys.stderr)
        print(f"resume with: jmake watch {resume_hint} --resume "
              f"(same --seed/--commits/--source flags)",
              file=sys.stderr)
        return 3
    except (api.JournalError, api.StoreError) as error:
        print(f"jmake watch: {error}", file=sys.stderr)
        return 2
    finally:
        if previous_handlers:
            import signal
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
        for sink in closers:
            sink.close()
    idle = f", {result.idle_polls} idle poll(s)" \
        if result.idle_polls else ""
    # CI greps "watch drained:"; other stop reasons name themselves
    ending = "drained" if result.stopped_by == "drained" \
        else f"stopped ({result.stopped_by})"
    print(f"\nwatch {ending}: "
          f"{result.commits_seen} commit(s) pulled, "
          f"{result.fresh} checked fresh, {result.replayed} replayed "
          f"from the journal, {result.batches} batch(es){idle}")
    stats = result.store_stats
    print(f"store {store_path}: {stats['verdicts']} verdict(s), "
          f"{stats['file_rows']} file row(s), {stats['authors']} "
          f"author(s) ({result.ingested} ingested this run, "
          f"{result.duplicates} duplicate(s))")
    jstats = result.journal_stats
    print(f"journal {jstats['path']}: {jstats['records']} verdict(s) "
          f"durable ({jstats['recovered']} recovered, "
          f"{jstats['emitted']} fresh)")
    if result.janitors:
        print("\njanitor view (ascending file_cv):")
        for row in result.janitors:
            print(f"  {row.email} patches={row.patches} "
                  f"certified={row.certified} partial={row.partial} "
                  f"attention={row.attention} files={row.files} "
                  f"file_cv={row.file_cv:.3f}")
    if resolved["stats"]:
        summary = {
            "commits_seen": result.commits_seen,
            "fresh": result.fresh,
            "replayed": result.replayed,
            "batches": result.batches,
            "ingested": result.ingested,
            "duplicates": result.duplicates,
            "store": result.store_stats,
            "journal": result.journal_stats,
        }
        api.atomic_write_json(resolved["stats"], summary)
        print(f"stats written to {resolved['stats']}")
    return 0


def _query(args: argparse.Namespace) -> int:
    import os
    if args.store != ":memory:" and not os.path.exists(args.store):
        print(f"jmake query: {args.store}: no such store "
              f"(run `jmake watch` or `ingest_ledger` first)",
              file=sys.stderr)
        return 2
    tristate = {"yes": True, "no": False, None: None}
    try:
        store = api.open_store(args.store)
    except api.StoreError as error:
        print(f"jmake query: {error}", file=sys.stderr)
        return 2
    with store:
        if args.compact:
            if args.retain is None:
                print("jmake query: --compact needs --retain N "
                      "(newest verdicts to keep)", file=sys.stderr)
                return 2
            try:
                pruned = store.compact(args.retain)
            except api.StoreError as error:
                print(f"jmake query: {error}", file=sys.stderr)
                return 2
            print(f"{args.store}: compacted to {pruned['kept']} "
                  f"verdict(s) ({pruned['pruned']} pruned, "
                  f"{pruned['file_rows_pruned']} file row(s) dropped, "
                  f"janitor view rebuilt)")
            return 0
        if args.canonical:
            # the byte-deterministic proof format CI diffs — nothing
            # else may touch stdout in this mode
            sys.stdout.write(store.canonical_dump())
            return 0
        if args.janitors:
            rows = store.janitor_report(api.JanitorViewCriteria(
                min_patches=args.min_patches, min_files=args.min_files,
                top_n=args.top))
            print(f"{args.store}: {len(rows)} janitor(s) "
                  f"(ascending file_cv)")
            for row in rows:
                print(f"  {row.email} ({row.name}) "
                      f"patches={row.patches} certified={row.certified} "
                      f"partial={row.partial} attention={row.attention} "
                      f"files={row.files} file_cv={row.file_cv:.3f}")
            return 0
        predicates = {
            "commit": args.commit, "path": args.path,
            "arch": args.arch, "config": args.config,
            "status": args.status, "verdict": args.verdict,
            "author": args.author, "limit": args.limit,
            "certified": tristate[args.certified],
            "fully_checked": tristate[args.fully_checked],
        }
        predicates = {name: value for name, value in predicates.items()
                      if value is not None}
        try:
            results = api.query_verdicts(store, **predicates)
        except api.StoreError as error:
            print(f"jmake query: {error}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps([verdict.record for verdict in results],
                             indent=2, sort_keys=True))
            return 0
        print(f"{args.store}: {len(results)} verdict(s) "
              f"({len(store)} stored)")
        for verdict in results:
            print(f"  {verdict.commit} {verdict.verdict} "
                  f"author={verdict.author_email or '-'} "
                  f"files={len(set(row.path for row in verdict.files))} "
                  f"elapsed={verdict.elapsed_seconds:.1f}s")
            if args.files:
                for row in verdict.files:
                    print(f"    {row.path} arch={row.arch or '-'} "
                          f"config={row.config or '-'} "
                          f"status={row.status} "
                          f"i_ok={int(row.i_ok)} o_ok={int(row.o_ok)}")
    return 0


def _render_metrics_tables(metrics: dict) -> str:
    """Counters/gauges as a fixed-width table, histograms with
    p50/p90/p99 latency summaries."""
    lines = []
    scalars = [(name, value)
               for section in ("counters", "gauges")
               for name, value in sorted(metrics.get(section, {}).items())]
    if scalars:
        width = max(len(name) for name, _ in scalars)
        lines.append(f"{'instrument':<{width}} {'value':>14}")
        lines.append("-" * (width + 15))
        for name, value in scalars:
            text = f"{value:.3f}".rstrip("0").rstrip(".") \
                if isinstance(value, float) else str(value)
            lines.append(f"{name:<{width}} {text:>14}")
    histograms = metrics.get("histograms", {})
    if histograms:
        if lines:
            lines.append("")
        for name in sorted(histograms):
            data = histograms[name]
            quantiles = api.histogram_quantiles(data)
            lines.append(
                f"{name}: n={data['count']} sum={data['sum']:.4f} "
                f"p50={quantiles[0.5]:.4f} p90={quantiles[0.9]:.4f} "
                f"p99={quantiles[0.99]:.4f}")
    return "\n".join(lines)


def _stats(args: argparse.Namespace) -> int:
    """Read one telemetry sink back: latest snapshot (or event counts)."""
    path = args.sink
    try:
        if path.endswith(".jsonl"):
            records = api.read_jsonl(path)
            if not records:
                print(f"jmake stats: no records in {path}",
                      file=sys.stderr)
                return 2
            snapshots = [record for record in records
                         if "metrics" in record]
            if snapshots:
                record = snapshots[-1]
                api.validate_snapshot_record(record)
                print(f"{path}: {len(snapshots)} snapshot(s), latest "
                      f"seq={record['seq']} clock={record['clock']} "
                      f"ts={record['ts']:.3f}\n")
                print(_render_metrics_tables(record["metrics"]))
                return 0
            # an --events-out file: summarize kinds instead
            counts: dict[str, int] = {}
            for record in records:
                api.validate_event_record(record)
                counts[record["kind"]] = counts.get(record["kind"], 0) + 1
            print(f"{path}: {len(records)} event(s), latest "
                  f"seq={records[-1]['seq']}\n")
            width = max(len(kind) for kind in counts)
            for kind in sorted(counts):
                print(f"{kind:<{width}} {counts[kind]:>8}")
            return 0
        with open(path, "r", encoding="utf-8") as handle:
            metrics = api.parse_openmetrics(handle.read())
        seq = metrics["gauges"].pop("jmake_snapshot_seq", None)
        timestamp = metrics["gauges"].pop(
            "jmake_snapshot_timestamp_seconds", None)
        header = f"{path}: OpenMetrics exposition"
        if seq is not None:
            header += f", snapshot seq={seq}"
        if timestamp is not None:
            header += f" ts={timestamp:.3f}"
        print(header + "\n")
        print(_render_metrics_tables(metrics))
        return 0
    except FileNotFoundError:
        print(f"jmake stats: {path}: no such file", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"jmake stats: {path}: {error}", file=sys.stderr)
        return 2


def _trace(args: argparse.Namespace) -> int:
    spec = api.CorpusSpec(seed=args.seed,
                          history_commits=max(200, args.commits // 2),
                          eval_commits=args.commits)
    print(f"Building corpus ({spec.eval_commits} evaluation commits) ...")
    corpus = api.build_corpus(spec)
    try:
        commit = corpus.repository.resolve(args.commit)
    except api.VcsError as error:
        print(f"jmake trace: {error}", file=sys.stderr)
        print("hint: commit ids come from the synthetic corpus; run "
              "`jmake evaluate` (same --seed/--commits) to list them",
              file=sys.stderr)
        return 2
    tracer = api.Tracer()
    metrics = api.MetricsRegistry()
    options = api.JMakeOptions(use_configs=not args.no_configs,
                               use_allmodconfig=args.allmodconfig)
    session = api.CheckSession.from_generated_tree(
        corpus.tree, options=options, tracer=tracer, metrics=metrics)
    report = session.check_commit(corpus.repository, commit)
    root = tracer.drain()[-1]
    root.set("commit.index", 0)
    root.set("worker", 0)
    tree = root.to_dict()
    print(f"\n{api.render_span_tree(tree)}\n")
    print(f"spans: {api.span_count(tree)}  verdict: {report.verdict}")
    if args.out:
        events = api.write_chrome_trace(args.out, [tree])
        print(f"trace written to {args.out} ({events} events)")
    return 0


def _janitors(args: argparse.Namespace) -> int:
    spec = api.CorpusSpec(seed=args.seed,
                          history_commits=args.commits,
                          eval_commits=max(100, args.commits // 3))
    print(f"Building corpus ({spec.history_commits} history commits) ...")
    corpus = api.build_corpus(spec)
    criteria = api.scaled_criteria(corpus)
    _, text = api.table1(criteria)
    print("Table I — thresholds\n" + text + "\n")
    finder = api.JanitorFinder(corpus.repository, corpus.tree.maintainers,
                               criteria=criteria)
    ranked = finder.identify(
        history_since=None, history_until=api.Corpus.TAG_EVAL_END,
        eval_since=api.Corpus.TAG_EVAL_START,
        eval_until=api.Corpus.TAG_EVAL_END)
    tool_users = {p.name for p in corpus.roster if p.tool_user}
    interns = {p.name for p in corpus.roster if p.intern}
    _, text = api.table2(ranked, tool_users=tool_users, interns=interns)
    print("Table II — identified janitors\n" + text)
    ground_truth = {p.name for p in corpus.roster
                    if p.kind is api.PersonaKind.JANITOR}
    hits = sum(1 for dev in ranked if dev.name in ground_truth)
    print(f"\nground-truth janitors recovered: {hits}/{len(ranked)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``jmake`` command."""
    parser = argparse.ArgumentParser(
        prog="jmake",
        description="JMake reproduction (Lawall & Muller, DSN 2017)")
    parser.add_argument("--log-level", default=None,
                        choices=list(api.LEVELS),
                        help="configure the repro.* logger hierarchy "
                             "(default: warnings only, unformatted)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="check one demo patch")
    demo.set_defaults(func=_demo)

    evaluate = sub.add_parser("evaluate",
                              help="regenerate the paper's evaluation")
    evaluate.add_argument("--commits", type=int, default=400)
    evaluate.add_argument("--limit", type=int, default=None)
    evaluate.add_argument("--seed", default="jmake-cli")
    evaluate.add_argument("--no-configs", action="store_true",
                          help="allyesconfig only (the E-S1 baseline)")
    evaluate.add_argument("--allmodconfig", action="store_true",
                          help="also try allmodconfig (the E-A1 extension)")
    evaluate.add_argument("--jobs", type=int, default=1,
                          help="worker processes (the paper used 25)")
    evaluate.add_argument("--no-cache", action="store_true",
                          help="disable the content-addressed build cache")
    evaluate.add_argument("--cache-stats", action="store_true",
                          help="print build-cache hit/miss statistics")
    evaluate.add_argument("--cache-file", default=None,
                          help="pickle the build cache here "
                               "(loaded first if it exists)")
    evaluate.add_argument("--cache-clock", default="replay",
                          choices=["replay", "probe"],
                          help="hit accounting: replay charges the full "
                               "modeled cost (timings byte-identical); "
                               "probe charges only the probe cost")
    evaluate.add_argument("--output", default=None,
                          help="write a markdown report to this path")
    evaluate.add_argument("--trace-out", default=None,
                          help="write a Chrome trace-event JSON "
                               "(chrome://tracing / Perfetto) with one "
                               "span tree per checked commit")
    evaluate.add_argument("--metrics-out", default=None,
                          help="write the pipeline metrics registry "
                               "(counters/histograms + cache telemetry) "
                               "as JSON")
    evaluate.add_argument("--out-dir", default=None, metavar="DIR",
                          help="resolve output sinks to conventional "
                               "filenames in this directory (journal "
                               "-> DIR/run.jnl); per-sink flags "
                               "override")
    evaluate.add_argument("--journal", default=None,
                          help="write-ahead verdict journal: every "
                               "patch verdict is fsynced here the "
                               "moment it exists (see DESIGN.md §7; "
                               "deprecated spelling of --out-dir's "
                               "run.jnl)")
    evaluate.add_argument("--resume", action="store_true",
                          help="replay --journal and rerun only the "
                               "commits without a durable verdict; the "
                               "final records are byte-identical to an "
                               "uninterrupted run")
    evaluate.add_argument("--chaos-kill-after", type=int, default=None,
                          metavar="N",
                          help="chaos harness: simulate sudden process "
                               "death after N journaled verdicts "
                               "(exit 3; rerun with --resume)")
    evaluate.add_argument("--fault-plan", default=None,
                          help="JSON fault plan to inject deterministic "
                               "build failures (see DESIGN.md §5)")
    evaluate.add_argument("--max-retries", type=int, default=2,
                          help="bounded retries per faulted step "
                               "(exponential backoff, simulated clock)")
    evaluate.add_argument("--step-timeout", type=float, default=None,
                          help="simulated seconds one config/compile "
                               "step may take before failing with a "
                               "timeout")
    evaluate.set_defaults(func=_evaluate)

    serve = sub.add_parser("serve",
                           help="start the sharded check service, run a "
                                "batch of requests, and drain")
    serve.add_argument("--commits", type=int, default=400)
    serve.add_argument("--limit", type=int, default=8,
                       help="requests to submit from the eval window")
    serve.add_argument("--seed", default="jmake-cli")
    serve.add_argument("--shards", type=int, default=2,
                       help="per-architecture shard workers")
    serve.add_argument("--transport", default="asyncio",
                       choices=("asyncio", "mp", "socket"),
                       help="execution backend: in-process asyncio "
                            "shards, warm multiprocessing workers over "
                            "pipes, or workers over a localhost socket "
                            "speaking the framed wire protocol")
    serve.add_argument("--jobs", type=int, default=None,
                       help="worker processes for mp/socket transports "
                            "(default: --shards)")
    serve.add_argument("--start-method", default=None,
                       choices=("fork", "spawn", "forkserver"),
                       help="multiprocessing start method for worker "
                            "processes (default: JMAKE_START_METHOD "
                            "from the environment, else fork)")
    serve.add_argument("--batch-limit", type=int, default=50,
                       help="max files per coalesced preprocess "
                            "invocation (§III-D)")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="admission control: concurrent requests")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the shared build cache")
    serve.add_argument("--fault-plan", default=None,
                       help="JSON fault plan applied per request")
    serve.add_argument("--out-dir", default=None, metavar="DIR",
                       help="resolve output sinks to conventional "
                            "filenames in this directory (stats.json, "
                            "metrics.jsonl, events.jsonl); per-sink "
                            "flags override")
    serve.add_argument("--stats-out", default=None,
                       help="write scheduling stats JSON here "
                            "(deprecated spelling of --out-dir's "
                            "stats.json)")
    serve.add_argument("--metrics-sink", action="append", default=None,
                       metavar="PATH",
                       help="periodic metric snapshots: *.jsonl appends "
                            "JSON-lines history (resumable), anything "
                            "else is an atomically rewritten "
                            "OpenMetrics exposition file (repeatable)")
    serve.add_argument("--events-out", default=None, metavar="PATH",
                       help="append structured operational events "
                            "(crashes, breakers, rejections, ...) as "
                            "JSONL; resumes seq numbers on restart")
    serve.add_argument("--stats-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="real seconds between metric snapshots "
                            "when a --metrics-sink is configured "
                            "(default: 1.0)")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="socket transport: bind the coordinator "
                            "here so cross-host `jmake worker` "
                            "processes can dial in (default: an "
                            "ephemeral localhost port)")
    serve.add_argument("--auth-key", default=None, metavar="KEY",
                       help="shared secret for the HMAC challenge/"
                            "response worker handshake (default: a "
                            "random per-run key, which only spawned "
                            "workers can know)")
    serve.add_argument("--no-spawn", action="store_true",
                       help="socket transport: spawn no local workers; "
                            "every slot waits for an external `jmake "
                            "worker --connect` (requires --auth-key)")
    serve.add_argument("--heartbeat", type=float, default=0.0,
                       metavar="SECONDS",
                       help="socket transport: ask workers to "
                            "heartbeat this often; 0 disables "
                            "lease-based failure detection")
    serve.add_argument("--lease", type=float, default=0.0,
                       metavar="SECONDS",
                       help="socket transport: reclaim a worker's "
                            "assignment after this long without a "
                            "heartbeat (>= --heartbeat)")
    serve.add_argument("--reconnect-grace", type=float, default=0.0,
                       metavar="SECONDS",
                       help="socket transport: how long a crashed "
                            "connection may rejoin (fresh lease epoch) "
                            "before the slot restarts or breaks")
    serve.set_defaults(func=_serve)

    worker = sub.add_parser(
        "worker",
        help="join a coordinator as a cross-host check worker over "
             "the framed wire protocol")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the coordinator's --listen address")
    worker.add_argument("--auth-key", required=True, metavar="KEY",
                        help="shared secret proving this worker to "
                             "the coordinator (HMAC challenge/response)")
    worker.add_argument("--worker-id", type=int, default=-1,
                        help="claim a specific worker slot "
                             "(default: -1, any free slot)")
    worker.add_argument("--seed", default=None,
                        help="pre-build the corpus locally from this "
                             "seed instead of taking the coordinator's "
                             "wire spec (must match its --seed)")
    worker.add_argument("--commits", type=int, default=400,
                        help="evaluation commits when --seed is given "
                             "(must match the coordinator)")
    worker.add_argument("--no-cache", action="store_true",
                        help="disable this worker's build cache")
    worker.add_argument("--max-attempts", type=int, default=8,
                        help="consecutive failed dials before giving "
                             "up (jittered exponential backoff "
                             "between attempts)")
    worker.add_argument("--start-method", default=None,
                        choices=("fork", "spawn", "forkserver"),
                        help="reported in HELLO for fleet telemetry")
    worker.set_defaults(func=_worker)

    watch = sub.add_parser("watch",
                           help="fleet mode: continuously check unseen "
                                "commits from a stream and ingest every "
                                "verdict into the persistent store")
    watch.add_argument("--commits", type=int, default=400)
    watch.add_argument("--seed", default="jmake-cli")
    watch.add_argument("--no-configs", action="store_true",
                       help="allyesconfig only (the E-S1 baseline)")
    watch.add_argument("--allmodconfig", action="store_true",
                       help="also try allmodconfig (the E-A1 extension)")
    watch.add_argument("--out-dir", default=None, metavar="DIR",
                       help="resolve the store/journal/event sinks to "
                            "conventional filenames in this directory "
                            "(verdicts.sqlite, run.jnl, events.jsonl)")
    watch.add_argument("--store", default=None, metavar="PATH",
                       help="per-sink override: the SQLite verdict "
                            "store (default: DIR/verdicts.sqlite)")
    watch.add_argument("--journal", default=None, metavar="PATH",
                       help="per-sink override: the write-ahead "
                            "verdict journal (default: DIR/run.jnl)")
    watch.add_argument("--events-out", default=None, metavar="PATH",
                       help="per-sink override: append watch/ingest "
                            "events as JSONL (default: "
                            "DIR/events.jsonl when --out-dir is set)")
    watch.add_argument("--stats-out", default=None, metavar="PATH",
                       help="per-sink override: write the run summary "
                            "JSON (default: DIR/stats.json)")
    watch.add_argument("--source", default="window",
                       choices=("window", "synthetic"),
                       help="commit stream: the corpus's evaluation "
                            "window (a fixed backlog) or fresh "
                            "deterministic synthetic traffic")
    watch.add_argument("--traffic", type=int, default=12,
                       help="synthetic source: commits to generate")
    watch.add_argument("--traffic-seed", default="watch-traffic",
                       help="synthetic source: traffic stream seed")
    watch.add_argument("--batch-size", type=int, default=8,
                       help="unseen commits checked per ingest batch")
    watch.add_argument("--max-batches", type=int, default=None,
                       help="stop after this many batches "
                            "(default: drain the stream)")
    watch.add_argument("--limit", type=int, default=None,
                       help="cap on total commits checked across the "
                            "run (journal backlog included, so "
                            "--resume stops at the same stream "
                            "position)")
    watch.add_argument("--resume", action="store_true",
                       help="reopen the journal and store, replay "
                            "durable verdicts, and continue the "
                            "stream where the last process died")
    watch.add_argument("--chaos-kill-after", type=int, default=None,
                       metavar="N",
                       help="chaos harness: simulate sudden process "
                            "death after N journaled verdicts "
                            "(exit 3; rerun with --resume)")
    watch.add_argument("--no-fsync", action="store_true",
                       help="skip per-record journal fsync (tests)")
    watch.add_argument("--follow", action="store_true",
                       help="long-lived mode: when the stream runs "
                            "dry, poll it for new commits instead of "
                            "exiting; stop via SIGTERM/SIGINT (the "
                            "in-flight batch still lands), "
                            "--stop-file, or --idle-timeout")
    watch.add_argument("--poll-interval", type=float, default=0.5,
                       metavar="SECONDS",
                       help="follow mode: real seconds between idle "
                            "polls (default: 0.5)")
    watch.add_argument("--stop-file", default=None, metavar="PATH",
                       help="follow mode: stop gracefully when this "
                            "file appears (touch it to stop a daemon "
                            "you cannot signal)")
    watch.add_argument("--idle-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="follow mode: stop after this long with "
                            "no new commits (default: wait forever)")
    watch.add_argument("--shards", type=int, default=2,
                       help="per-architecture shard workers")
    watch.add_argument("--transport", default="asyncio",
                       choices=("asyncio", "mp", "socket"),
                       help="check-service execution backend")
    watch.add_argument("--jobs", type=int, default=None,
                       help="worker processes for mp/socket transports")
    watch.add_argument("--start-method", default=None,
                       choices=("fork", "spawn", "forkserver"),
                       help="multiprocessing start method")
    watch.add_argument("--no-cache", action="store_true",
                       help="disable the shared build cache")
    watch.set_defaults(func=_watch)

    query = sub.add_parser("query",
                           help="ask an ingested verdict store "
                                "questions without compiling anything")
    query.add_argument("store", help="path to a verdict store "
                                     "(--store/--out-dir from a watch "
                                     "or ingest run)")
    query.add_argument("--commit", default=None,
                       help="exact commit id")
    query.add_argument("--path", default=None,
                       help="commits whose patch touched this file")
    query.add_argument("--arch", default=None,
                       help="commits with a compilation fact on this "
                            "architecture")
    query.add_argument("--config", default=None,
                       help="commits checked under this config target")
    query.add_argument("--status", default=None,
                       help="per-file status (e.g. ok, quarantined)")
    query.add_argument("--verdict", default=None,
                       help="CERTIFIED, 'ATTENTION REQUIRED', PARTIAL "
                            "(prefix match), or an exact "
                            "'PARTIAL:<archs>' string")
    query.add_argument("--author", default=None,
                       help="commits by this author email")
    query.add_argument("--certified", default=None,
                       choices=("yes", "no"))
    query.add_argument("--fully-checked", default=None,
                       choices=("yes", "no"))
    query.add_argument("--limit", type=int, default=None,
                       help="return at most this many verdicts")
    query.add_argument("--files", action="store_true",
                       help="also print each verdict's per-file rows")
    query.add_argument("--json", action="store_true",
                       help="print the full canonical records as JSON")
    query.add_argument("--janitors", action="store_true",
                       help="print the §IV janitor ranking from the "
                            "materialized view instead of verdicts")
    query.add_argument("--min-patches", type=int, default=3,
                       help="janitor view: minimum patches threshold")
    query.add_argument("--min-files", type=int, default=2,
                       help="janitor view: minimum distinct files")
    query.add_argument("--top", type=int, default=10,
                       help="janitor view: rows to print")
    query.add_argument("--canonical", action="store_true",
                       help="print the byte-deterministic canonical "
                            "dump (the kill/resume proof format CI "
                            "diffs)")
    query.add_argument("--compact", action="store_true",
                       help="retention: prune the store down to the "
                            "newest --retain verdicts, rebuild the "
                            "janitor view over the survivors in the "
                            "same transaction, and vacuum")
    query.add_argument("--retain", type=int, default=None, metavar="N",
                       help="newest verdicts --compact keeps")
    query.set_defaults(func=_query)

    stats = sub.add_parser("stats",
                           help="read a telemetry sink back: latest "
                                "snapshot tables with p50/p90/p99 "
                                "latency, or event-kind counts")
    stats.add_argument("sink", help="a --metrics-sink/--events-out path "
                                    "(*.jsonl history or OpenMetrics "
                                    "exposition)")
    stats.set_defaults(func=_stats)

    janitors = sub.add_parser("janitors",
                              help="identify janitors (Tables I-II)")
    janitors.add_argument("--commits", type=int, default=900)
    janitors.add_argument("--seed", default="jmake-cli")
    janitors.set_defaults(func=_janitors)

    trace = sub.add_parser("trace",
                           help="check one commit with tracing on and "
                                "print its annotated span tree")
    trace.add_argument("commit", help="commit id (or unique prefix) "
                                      "in the synthetic corpus")
    trace.add_argument("--commits", type=int, default=400)
    trace.add_argument("--seed", default="jmake-cli")
    trace.add_argument("--no-configs", action="store_true",
                       help="allyesconfig only (the E-S1 baseline)")
    trace.add_argument("--allmodconfig", action="store_true",
                       help="also try allmodconfig (the E-A1 extension)")
    trace.add_argument("--out", default=None,
                       help="also write this commit's Chrome trace JSON")
    trace.set_defaults(func=_trace)

    args = parser.parse_args(argv)
    if args.log_level:
        configure_logging = api.configure_logging
        configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
