"""Shared utilities: deterministic randomness, simulated time, text helpers."""

from repro.util.rng import DeterministicRng
from repro.util.simclock import SimClock
from repro.util.text import (
    ends_with_continuation,
    join_spliced_lines,
    split_lines_keepends,
)

__all__ = [
    "DeterministicRng",
    "SimClock",
    "ends_with_continuation",
    "join_spliced_lines",
    "split_lines_keepends",
]
