"""Shared utilities: deterministic randomness, simulated time, text
helpers, crash-atomic file writes."""

from repro.util.atomicio import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
)
from repro.util.rng import DeterministicRng
from repro.util.simclock import SimClock
from repro.util.text import (
    ends_with_continuation,
    join_spliced_lines,
    split_lines_keepends,
)

__all__ = [
    "DeterministicRng",
    "SimClock",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "ends_with_continuation",
    "fsync_directory",
    "join_spliced_lines",
    "split_lines_keepends",
]
