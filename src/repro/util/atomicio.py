"""Crash-atomic file writes.

Every artifact the pipeline persists (`--cache-file` pickles,
``--stats-out``/``--metrics-out``/``--trace-out`` JSON, markdown
reports, journal checkpoints) goes through :func:`atomic_write_bytes`:
the payload is written to a temporary file *in the same directory* as
the destination, flushed and fsynced, then moved over the destination
with ``os.replace``. A crash at any point leaves either the old file
or the new file — never a torn half-write — and the temp file is
removed on failure.

The containing directory is fsynced after the rename (best-effort;
some platforms refuse ``open(dir)``), so the rename itself survives a
power cut on journaling filesystems.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "fsync_directory",
]


def fsync_directory(directory: str) -> None:
    """fsync a directory so a rename inside it is durable (best effort)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, *,
                       fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    ``fsync=False`` skips the flush-to-disk (still atomic against
    concurrent readers, not against power loss) for hot paths where the
    caller batches durability elsewhere.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(directory)


def atomic_write_text(path: str, text: str, *,
                      encoding: str = "utf-8",
                      fsync: bool = True) -> None:
    """:func:`atomic_write_bytes` for text payloads."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write_json(path: str, payload, *, indent: int = 1,
                      sort_keys: bool = True,
                      fsync: bool = True) -> None:
    """Serialize ``payload`` as JSON and write it crash-atomically."""
    atomic_write_text(
        path,
        json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n",
        fsync=fsync)
