"""Deterministic random number generation.

All stochastic behaviour in the library (synthetic tree generation, commit
streams, the random defconfig choice of §III-C) flows through
:class:`DeterministicRng`, so a corpus spec plus a seed reproduces every
table and figure bit-for-bit.

The generator is a thin wrapper over :class:`random.Random` that adds
namespacing: ``rng.fork("commits")`` yields an independent stream whose
sequence does not change when unrelated subsystems draw more or fewer
values. This keeps experiments stable as the code evolves.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random stream with cheap namespaced forking."""

    def __init__(self, seed: int | str, *, _label: str = "root") -> None:
        if isinstance(seed, str):
            digest = hashlib.sha256(seed.encode("utf-8")).digest()
            seed = int.from_bytes(digest[:8], "big")
        self._seed = seed
        self._label = _label
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The resolved integer seed."""
        return self._seed

    @property
    def label(self) -> str:
        """Namespace lineage, for debugging."""
        return self._label

    def fork(self, namespace: str) -> "DeterministicRng":
        """Return an independent stream derived from this seed and a name.

        Forks are derived from the *original* seed, not the stream state,
        so the order in which forks are created does not matter.
        """
        material = f"{self._seed}:{namespace}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        child_seed = int.from_bytes(digest[:8], "big")
        return DeterministicRng(child_seed, _label=f"{self._label}/{namespace}")

    # -- draws ---------------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Inclusive uniform integer in [low, high]."""
        return self._random.randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """One element, uniformly."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(options)

    def sample(self, options: Sequence[T], k: int) -> list[T]:
        """k elements without replacement."""
        return self._random.sample(list(options), k)

    def shuffle(self, items: list[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def weighted_choice(self, options: Sequence[T],
                        weights: Sequence[float]) -> T:
        """One element with the given weights."""
        if len(options) != len(weights):
            raise ValueError("options and weights must have equal length")
        return self._random.choices(list(options), weights=list(weights))[0]

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self._random.random() < probability

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normal draw."""
        return self._random.lognormvariate(mu, sigma)

    def pareto(self, alpha: float) -> float:
        """Pareto draw (heavy-tailed sizes)."""
        return self._random.paretovariate(alpha)

    def zipf_rank(self, n: int, skew: float = 1.0) -> int:
        """Draw a 0-based rank in [0, n) with a Zipf-like bias toward 0.

        Implemented by inverse-CDF over the truncated harmonic weights; the
        result is deterministic given the stream state.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        weights = [1.0 / (rank + 1) ** skew for rank in range(n)]
        total = sum(weights)
        target = self._random.random() * total
        acc = 0.0
        for rank, weight in enumerate(weights):
            acc += weight
            if target < acc:
                return rank
        return n - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicRng(seed={self._seed}, label={self._label!r})"
