"""Low-level text helpers shared by the preprocessor and mutation engine."""

from __future__ import annotations


def split_lines_keepends(text: str) -> list[str]:
    """Split into physical lines, preserving newline characters.

    Unlike :meth:`str.splitlines`, only ``\\n`` terminates a line, which
    matches how the rest of the library treats source text (all synthetic
    sources use Unix line endings).
    """
    if not text:
        return []
    lines = text.split("\n")
    if lines[-1] == "":
        lines.pop()
        return [line + "\n" for line in lines]
    return [line + "\n" for line in lines[:-1]] + [lines[-1]]


def ends_with_continuation(line: str) -> bool:
    """True if the physical line ends with a backslash continuation."""
    return line.rstrip("\n").rstrip(" \t").endswith("\\")


def join_spliced_lines(lines: list[str], start: int) -> tuple[str, int]:
    """Join a logical line beginning at physical index ``start``.

    Returns ``(logical_text, next_index)`` where ``logical_text`` has the
    backslash-newline pairs removed and ``next_index`` is the physical line
    index following the logical line.
    """
    parts: list[str] = []
    index = start
    while index < len(lines):
        raw = lines[index].rstrip("\n")
        if raw.rstrip(" \t").endswith("\\") and index + 1 < len(lines):
            stripped = raw.rstrip(" \t")
            parts.append(stripped[:-1])
            index += 1
            continue
        parts.append(raw)
        index += 1
        break
    return "".join(parts), index
