"""Simulated wall-clock used by the build-cost model.

The paper reports running times measured on the authors' 48-core testbed
(Figures 4-6). Our compiler substrate runs in microseconds, so measuring
it directly would flatten every CDF. Instead the build system charges
*simulated seconds* to a :class:`SimClock` according to the cost model in
:mod:`repro.kbuild.timing`; the evaluation harness reads elapsed simulated
time per step and per patch, which preserves the paper's distributional
shape (setup-dominated invocations, header fan-out tails, whole-kernel
rebuild outliers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class TimedSpan:
    """One charged interval: what happened, when, and for how long."""

    label: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        """start + duration."""
        return self.start + self.duration


class SimClock:
    """Monotonic simulated clock with labelled charge accounting."""

    def __init__(self) -> None:
        self._now = 0.0
        self._spans: list[TimedSpan] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def spans(self) -> list[TimedSpan]:
        """All charged spans, in order."""
        return list(self._spans)

    def charge(self, label: str, seconds: float) -> TimedSpan:
        """Advance the clock by ``seconds`` and record the span."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        span = TimedSpan(label=label, start=self._now, duration=seconds)
        self._now += seconds
        self._spans.append(span)
        return span

    def durations(self, label: str) -> list[float]:
        """All charged durations carrying the given label."""
        return [span.duration for span in self._spans if span.label == label]

    @property
    def span_count(self) -> int:
        """Number of charged spans so far (a bookmark for elapsed_since)."""
        return len(self._spans)

    def elapsed_since(self, span_index: int) -> float:
        """Exactly-rounded total charged since a ``span_count`` bookmark.

        ``now - start`` is contaminated by the clock's accumulated
        offset: the same charges on top of different running totals can
        differ in the last float bits, which breaks byte-identical
        serial-vs-parallel comparisons (each worker's clock carries a
        different lane history). ``math.fsum`` over the interval's own
        durations is a pure function of those charges alone.
        """
        return math.fsum(span.duration
                         for span in self._spans[span_index:])

    def total(self, label: str | None = None) -> float:
        """Total charged time, optionally restricted to one label."""
        if label is None:
            return self._now
        return sum(self.durations(label))

    def reset(self) -> None:
        """Zero the clock and clear the spans."""
        self._now = 0.0
        self._spans.clear()


@dataclass
class StepTimer:
    """Context manager that charges a span when the block exits.

    The duration must be supplied by the block (cost-model driven), not
    measured, so usage is::

        with StepTimer(clock, "make_i") as timer:
            timer.cost = model.i_file_cost(...)
    """

    clock: SimClock
    label: str
    cost: float = 0.0
    span: TimedSpan | None = field(default=None, init=False)

    def __enter__(self) -> "StepTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.span = self.clock.charge(self.label, self.cost)
