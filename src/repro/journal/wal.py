"""The append-only, fsync-disciplined write-ahead journal.

On-disk format: a flat sequence of frames, each

    +----------------+----------------+------------------+
    | length (4B BE) | CRC32 (4B BE)  | payload (length) |
    +----------------+----------------+------------------+

where the payload is one record serialized as canonical JSON (sorted
keys, compact separators, ``allow_nan=False``). Appends write the
whole frame, flush, and fsync before returning (``fsync=False`` drops
the fsync for benchmarks/tests), so a record that :meth:`Journal.append`
returned for is durable.

Replay walks the frames and classifies damage by *where* it sits:

- a frame that runs past end-of-file (partial header, short payload,
  or a CRC mismatch on the physically last frame) is the signature of
  a torn final write — the expected way a crash looks — and is
  truncated away, after which appends continue from the clean tail;
- a CRC mismatch on an *interior* frame (valid data follows it) means
  the file was corrupted at rest, which replay must never paper over:
  it raises :class:`~repro.errors.JournalCorruptError`.

The ``torn_journal_write`` fault kind (site ``journal_append``) cuts a
frame short mid-write and raises
:class:`~repro.errors.SimulatedCrashError`, producing exactly the torn
tail the replay path recovers from.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import (
    JournalCorruptError,
    JournalError,
    SimulatedCrashError,
)
from repro.faults.inject import NULL_INJECTOR
from repro.faults.plan import (
    KIND_TORN_JOURNAL_WRITE,
    SITE_JOURNAL_APPEND,
    unit_draw,
)
from repro.obs.logcfg import get_logger

_logger = get_logger("journal")

#: frame header: payload length, payload CRC32 (both big-endian u32)
_HEADER = struct.Struct(">II")

#: refuse absurd frame lengths outright (a corrupt length field would
#: otherwise make replay try to read gigabytes before failing the CRC)
MAX_RECORD_BYTES = 64 * 1024 * 1024


def encode_record(record: dict) -> bytes:
    """Canonical JSON payload bytes for one record."""
    try:
        text = json.dumps(record, sort_keys=True,
                          separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as error:
        raise JournalError(
            f"record is not journal-serializable: {error}") from error
    return text.encode("utf-8")


def frame_record(record: dict) -> bytes:
    """A full on-disk frame (header + payload) for one record."""
    payload = encode_record(record)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class ReplayResult:
    """What :meth:`Journal.replay` recovered."""

    #: the intact records, in append order
    records: list = field(default_factory=list)
    #: bytes cut off the tail (0 on a clean journal)
    truncated_bytes: int = 0
    #: human-readable reason the tail was truncated ("" when clean)
    truncated_reason: str = ""


def scan_frames(data: bytes, *, path: str = "<journal>") -> ReplayResult:
    """Parse a journal byte string into records + torn-tail verdict."""
    result = ReplayResult()
    offset = 0
    size = len(data)
    while offset < size:
        if offset + _HEADER.size > size:
            result.truncated_bytes = size - offset
            result.truncated_reason = (
                f"partial frame header at offset {offset}")
            break
        length, crc = _HEADER.unpack_from(data, offset)
        payload_start = offset + _HEADER.size
        payload_end = payload_start + length
        if length > MAX_RECORD_BYTES:
            # a trashed length field; only tolerable on the last frame
            if _looks_like_tail(data, size, payload_start):
                result.truncated_bytes = size - offset
                result.truncated_reason = (
                    f"implausible frame length {length} at offset "
                    f"{offset}")
                break
            raise JournalCorruptError(
                f"{path}: implausible interior frame length {length} "
                f"at offset {offset}", path=path, offset=offset)
        if payload_end > size:
            result.truncated_bytes = size - offset
            result.truncated_reason = (
                f"short payload at offset {offset} "
                f"(need {length}, have {size - payload_start})")
            break
        payload = data[payload_start:payload_end]
        if zlib.crc32(payload) != crc:
            if payload_end == size:
                # physically last frame: a torn in-place write
                result.truncated_bytes = size - offset
                result.truncated_reason = (
                    f"CRC mismatch on final frame at offset {offset}")
                break
            raise JournalCorruptError(
                f"{path}: CRC mismatch on interior frame at offset "
                f"{offset} ({size - payload_end} valid bytes follow)",
                path=path, offset=offset)
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            # CRC passed but the payload is not a record: corruption
            # that happened before framing; never silently skipped
            raise JournalCorruptError(
                f"{path}: undecodable record at offset {offset}: "
                f"{error}", path=path, offset=offset) from error
        result.records.append(record)
        offset = payload_end
    return result


def _looks_like_tail(data: bytes, size: int, payload_start: int) -> bool:
    """True when no plausible frame follows ``payload_start``."""
    return size - payload_start < _HEADER.size


class Journal:
    """One append-only journal file.

    ``fsync=True`` (the default) makes every append durable before it
    returns; ``fsync=False`` trades durability for speed (still
    append-ordered). ``injector`` wires the chaos plan in:
    ``torn_journal_write`` faults cut the frame short and raise
    :class:`SimulatedCrashError`. ``on_append`` is the chaos observer
    called after each durable append with the 1-based append count.
    """

    def __init__(self, path: str, *, fsync: bool = True,
                 injector=None, on_append=None) -> None:
        self.path = path
        self.fsync = fsync
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.on_append = on_append
        self._handle = None
        #: frames appended by this process
        self.appended = 0

    # -- replay ----------------------------------------------------------------

    def replay(self, *, truncate_torn_tail: bool = True) -> ReplayResult:
        """Read every intact record; repair a torn tail in place.

        Missing file → empty result (the normal first-run case).
        A torn final frame is logged, truncated off the file (so later
        appends extend a clean tail), and reported in the result; a
        corrupt interior frame raises
        :class:`~repro.errors.JournalCorruptError`.
        """
        self.close()
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return ReplayResult()
        result = scan_frames(data, path=self.path)
        if result.truncated_bytes and truncate_torn_tail:
            keep = len(data) - result.truncated_bytes
            _logger.warning(
                "journal %s: truncating torn tail (%d byte(s): %s); "
                "%d record(s) recovered", self.path,
                result.truncated_bytes, result.truncated_reason,
                len(result.records))
            with open(self.path, "r+b") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())
        return result

    # -- append ----------------------------------------------------------------

    def _open_for_append(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, record: dict) -> int:
        """Durably append one record; returns this process's 1-based
        append count."""
        frame = frame_record(record)
        handle = self._open_for_append()
        spec = self.injector.fire(SITE_JOURNAL_APPEND, path=self.path)
        if spec is not None and spec.kind == KIND_TORN_JOURNAL_WRITE:
            # model the write being cut short by process death: a
            # deterministic prefix of the frame reaches the disk, then
            # the "process" dies
            draw = unit_draw(self.injector.plan.seed, "torn-cut",
                             self.path, self.appended, len(frame))
            cut = 1 + int(draw * (len(frame) - 1))
            handle.write(frame[:cut])
            handle.flush()
            os.fsync(handle.fileno())
            raise SimulatedCrashError(
                f"torn journal write: {cut}/{len(frame)} bytes of "
                f"frame {self.appended + 1} reached {self.path}")
        handle.write(frame)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self.appended += 1
        if self.on_append is not None:
            self.on_append(self.appended)
        return self.appended

    # -- maintenance -----------------------------------------------------------

    def truncate_all(self) -> None:
        """Drop every frame (post-checkpoint compaction)."""
        self.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())

    def size_bytes(self) -> int:
        """Current on-disk size (0 when absent)."""
        if self._handle is not None:
            self._handle.flush()
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        """Close the append handle (reopened lazily on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
