"""The verdict ledger: dedup keys + compaction over the raw WAL.

A :class:`VerdictLedger` is what the evaluation runner and the check
service actually hold: an in-memory ``key -> record`` map backed by
the :class:`~repro.journal.wal.Journal`. Keys are dedup identities
(commit ids); :meth:`VerdictLedger.emit` appends exactly once per key,
which is what makes supervisor requeues and resumed runs unable to
double-emit a verdict.

Compaction: every ``checkpoint_interval`` appended records the ledger
writes a compacted checkpoint — the whole map as one crash-atomic JSON
file next to the WAL (``<path>.ckpt``) — then truncates the WAL.
Recovery loads the checkpoint first, replays the WAL on top, and
dedups by key, so a crash *between* the checkpoint write and the WAL
truncation only leaves harmless duplicates.

A ``meta`` record (corpus identity, options fingerprint) guards
against resuming someone else's journal: :meth:`VerdictLedger.bind_meta`
refuses a mismatch with :class:`~repro.errors.JournalError`.
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import JournalCorruptError, JournalError
from repro.journal.wal import Journal, ReplayResult
from repro.obs.events import (
    EVENT_JOURNAL_CHECKPOINT,
    EVENT_JOURNAL_TRUNCATED,
    NULL_EVENTS,
)
from repro.obs.logcfg import get_logger
from repro.util.atomicio import atomic_write_json

_logger = get_logger("journal.ledger")

CHECKPOINT_VERSION = 1


class VerdictLedger:
    """Durable, deduplicated ``key -> record`` storage for verdicts."""

    def __init__(self, path: str, *, fsync: bool = True,
                 checkpoint_interval: int = 0,
                 injector=None, on_append=None,
                 fresh: bool = False, events=None) -> None:
        if checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval cannot be negative, "
                f"got {checkpoint_interval!r}")
        self.path = path
        self.checkpoint_path = path + ".ckpt"
        self.checkpoint_interval = checkpoint_interval
        self.journal = Journal(path, fsync=fsync, injector=injector)
        #: chaos observer, called after each durable *verdict* emit
        #: with the count of verdicts this process has emitted (meta
        #: and replayed records don't count — a kill offset of N means
        #: "die after N fresh verdicts")
        self.on_append = on_append
        #: verdicts emitted by this process
        self.emitted = 0
        self._records: dict[str, dict] = {}
        self.meta: dict | None = None
        #: records recovered from disk at open (checkpoint + WAL)
        self.recovered = 0
        #: torn-tail bytes truncated at open
        self.truncated_bytes = 0
        self.checkpoints_written = 0
        self._since_checkpoint = 0
        #: structured-event log for durability transitions (torn-tail
        #: truncations, checkpoints)
        self.events = events if events is not None else NULL_EVENTS
        #: real seconds spent inside :meth:`emit` (encode + CRC +
        #: write + fsync + any triggered checkpoint) — the journal's
        #: whole warm-path cost, measured in-run so the overhead
        #: benchmark doesn't have to difference two noisy totals
        self.emit_seconds = 0.0
        if fresh:
            self._wipe()
        else:
            self._recover()

    # -- recovery --------------------------------------------------------------

    def _wipe(self) -> None:
        for stale in (self.path, self.checkpoint_path):
            try:
                os.unlink(stale)
            except FileNotFoundError:
                pass

    def _load_checkpoint(self) -> None:
        try:
            with open(self.checkpoint_path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return
        except (OSError, json.JSONDecodeError) as error:
            # checkpoints are written atomically; an unreadable one is
            # corruption at rest, and dropping it would silently forget
            # durable verdicts
            raise JournalCorruptError(
                f"unreadable journal checkpoint "
                f"{self.checkpoint_path}: {error}",
                path=self.checkpoint_path) from error
        if not isinstance(payload, dict) or \
                payload.get("version") != CHECKPOINT_VERSION:
            raise JournalCorruptError(
                f"journal checkpoint {self.checkpoint_path} has "
                f"unsupported version "
                f"{payload.get('version') if isinstance(payload, dict) else None!r}",
                path=self.checkpoint_path)
        self.meta = payload.get("meta")
        for key, record in payload.get("records", []):
            self._records[key] = record

    def _recover(self) -> None:
        self._load_checkpoint()
        from_checkpoint = len(self._records)
        replay: ReplayResult = self.journal.replay()
        self.truncated_bytes = replay.truncated_bytes
        if self.truncated_bytes:
            self.events.emit(EVENT_JOURNAL_TRUNCATED, path=self.path,
                             truncated_bytes=self.truncated_bytes)
        for entry in replay.records:
            if "meta" in entry:
                if self.meta is None:
                    self.meta = entry["meta"]
                continue
            # dedup: first write wins (re-emitted keys are identical
            # by construction — verdicts are pure functions of the
            # commit — so which copy survives is immaterial)
            self._records.setdefault(entry["k"], entry["r"])
        self.recovered = len(self._records)
        if self.recovered:
            _logger.info(
                "journal %s: recovered %d verdict(s) "
                "(%d from checkpoint, %d torn byte(s) truncated)",
                self.path, self.recovered, from_checkpoint,
                self.truncated_bytes)

    # -- meta guard ------------------------------------------------------------

    def bind_meta(self, meta: dict) -> None:
        """Bind (or verify) the run identity this journal belongs to."""
        if self.meta is not None:
            if self.meta != meta:
                raise JournalError(
                    f"journal {self.path} belongs to a different run: "
                    f"journal meta {self.meta!r} != current {meta!r} "
                    f"(use a fresh journal path, or drop --resume)")
            return
        self.meta = dict(meta)
        self.journal.append({"meta": self.meta})

    # -- the dedup surface -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> list[str]:
        """Every key with a durable verdict (insertion order)."""
        return list(self._records)

    def get(self, key: str) -> dict | None:
        """The durable record for one key (None when absent)."""
        return self._records.get(key)

    def emit(self, key: str, record: dict) -> bool:
        """Durably record one verdict exactly once.

        Returns True when the record was appended, False when the key
        was already present (the requeue/double-submit path) — the
        caller's record is then discarded in favor of the durable one.
        """
        if key in self._records:
            return False
        started = time.perf_counter()
        self.journal.append({"k": key, "r": record})
        self._records[key] = record
        self.emitted += 1
        self._since_checkpoint += 1
        if self.checkpoint_interval and \
                self._since_checkpoint >= self.checkpoint_interval:
            self.checkpoint()
        self.emit_seconds += time.perf_counter() - started
        if self.on_append is not None:
            self.on_append(self.emitted)
        return True

    # -- compaction ------------------------------------------------------------

    def checkpoint(self) -> None:
        """Write the compacted map atomically, then truncate the WAL."""
        atomic_write_json(self.checkpoint_path, {
            "version": CHECKPOINT_VERSION,
            "meta": self.meta,
            "records": [[key, record]
                        for key, record in self._records.items()],
        })
        self.journal.truncate_all()
        self.checkpoints_written += 1
        self._since_checkpoint = 0
        self.events.emit(EVENT_JOURNAL_CHECKPOINT, path=self.path,
                         checkpoint=self.checkpoints_written,
                         records=len(self._records))
        _logger.debug("journal %s: checkpoint #%d (%d record(s))",
                      self.path, self.checkpoints_written,
                      len(self._records))

    def stats(self) -> dict:
        """Durability telemetry for ``--stats-out`` and tests."""
        return {
            "path": self.path,
            "records": len(self._records),
            "recovered": self.recovered,
            "emitted": self.emitted,
            "appended": self.journal.appended,
            "truncated_bytes": self.truncated_bytes,
            "checkpoints_written": self.checkpoints_written,
            "wal_bytes": self.journal.size_bytes(),
            "emit_seconds": self.emit_seconds,
        }

    def close(self) -> None:
        """Close the underlying journal handle."""
        self.journal.close()

    def __enter__(self) -> "VerdictLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
