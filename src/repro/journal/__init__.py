"""Crash-safe durability: the write-ahead verdict journal.

Three layers, bottom-up:

- :mod:`repro.journal.wal` — :class:`Journal`, the append-only,
  fsync-disciplined frame log (length+CRC32 framing, torn-tail
  truncation on replay, typed refusal of interior corruption);
- :mod:`repro.journal.ledger` — :class:`VerdictLedger`, the dedup-keyed
  ``commit -> verdict`` map over the WAL, with periodic compacted
  checkpoints and the exactly-once :meth:`VerdictLedger.emit` the
  supervisor's requeue path relies on;
- :mod:`repro.journal.records` — the PatchRecord <-> JSON codec whose
  round-trip exactness makes a killed-and-resumed evaluation run
  byte-identical to an uninterrupted one.

Entry points: ``EvaluationSession.run(journal=..., resume=...)`` and
``jmake evaluate --journal ... --resume``.
"""

from repro.journal.ledger import CHECKPOINT_VERSION, VerdictLedger
from repro.journal.records import (
    RECORD_VERSION,
    patch_record_from_dict,
    patch_record_to_dict,
)
from repro.journal.wal import (
    Journal,
    MAX_RECORD_BYTES,
    ReplayResult,
    encode_record,
    frame_record,
    scan_frames,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Journal",
    "MAX_RECORD_BYTES",
    "RECORD_VERSION",
    "ReplayResult",
    "VerdictLedger",
    "encode_record",
    "frame_record",
    "patch_record_from_dict",
    "patch_record_to_dict",
    "scan_frames",
]

#: store names that briefly lived on this package while the ledger's
#: ``key -> record`` read surface grew into :mod:`repro.store`; the
#: supported import surface is ``repro.api``
_DEPRECATED_STORE_NAMES = (
    "IngestResult",
    "StoredVerdict",
    "VerdictFilter",
    "VerdictStore",
    "ingest_ledger",
)


def __getattr__(name: str):
    """Deprecated access to the verdict store via ``repro.journal``.

    The journal is the store's WAL, so the store types grew up here —
    but the supported spelling is ``repro.api``. Old imports keep
    working, warn, and return the canonical objects.
    """
    if name in _DEPRECATED_STORE_NAMES:
        import warnings

        import repro.store as _store_module
        warnings.warn(
            f"repro.journal.{name} is deprecated; import {name} from "
            f"repro.api (the stable facade)",
            DeprecationWarning, stacklevel=2)
        return getattr(_store_module, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
