"""PatchRecord <-> JSON codec for journaled verdicts.

The journal stores the *evaluation* record (:class:`PatchRecord`), not
the leaner :meth:`PatchReport.to_dict` form: resuming a run must be
able to regenerate every table and figure, and that needs the
attempt-level file-instance data (``first_clean_covers_all``,
``insidious_under_allyes``, hazard kinds, ...) that the report dict
does not carry.

Round-trip fidelity is what makes kill/resume byte-identical:

- floats pass through JSON unchanged (Python's JSON writer emits
  ``repr``-exact doubles and the reader parses them back to the same
  bit pattern), so ``elapsed_seconds`` and every duration survive;
- enums (:class:`FileStatus`, :class:`HazardKind`) serialize by *name*
  — the spelling :meth:`EvaluationResult.canonical_records` renders;
- :class:`FaultReport` entries use their own ``to_dict`` contract.
"""

from __future__ import annotations

from repro.core.report import FileStatus
from repro.errors import SchemaError
from repro.evalsuite.runner import FileInstanceRecord, PatchRecord
from repro.faults.inject import FaultReport
from repro.kernel.layout import HazardKind

#: version tag stored in every journaled verdict payload
RECORD_VERSION = 1

_FILE_FIELDS = ("commit_id", "path", "mutation_count", "useful_archs",
                "missing_lines", "candidate_compilations",
                "first_clean_covers_all", "insidious_under_allyes",
                "needed_non_host_arch", "used_defconfig")


def patch_record_to_dict(record: PatchRecord) -> dict:
    """JSON-ready form of one evaluation PatchRecord."""
    return {
        "v": RECORD_VERSION,
        "commit_id": record.commit_id,
        "author_name": record.author_name,
        "author_email": record.author_email,
        "is_janitor": record.is_janitor,
        "shape": record.shape,
        "certified": record.certified,
        "elapsed_seconds": record.elapsed_seconds,
        "invocation_counts": dict(record.invocation_counts),
        "invocation_durations": {
            kind: list(durations) for kind, durations
            in record.invocation_durations.items()},
        "verdict": record.verdict,
        "quarantined_archs": list(record.quarantined_archs),
        "fault_reports": [fault.to_dict()
                          for fault in record.fault_reports],
        "files": [_file_to_dict(entry) for entry in record.files],
    }


def _file_to_dict(entry: FileInstanceRecord) -> dict:
    payload = {name: getattr(entry, name) for name in _FILE_FIELDS}
    payload["status"] = entry.status.name
    payload["hazard_kinds"] = [kind.name for kind in entry.hazard_kinds]
    return payload


def patch_record_from_dict(payload: dict) -> PatchRecord:
    """Rebuild a PatchRecord from its journaled form.

    Raises :class:`~repro.errors.SchemaError` on payloads written by a
    different codec version or missing required fields — a journal from
    an incompatible build must fail loudly, not resume with holes.
    """
    if not isinstance(payload, dict):
        raise SchemaError(
            f"journaled verdict is not an object: {type(payload).__name__}")
    version = payload.get("v")
    if version != RECORD_VERSION:
        raise SchemaError(
            f"journaled verdict has record version {version!r}, "
            f"expected {RECORD_VERSION}")
    try:
        return PatchRecord(
            commit_id=payload["commit_id"],
            author_name=payload["author_name"],
            author_email=payload["author_email"],
            is_janitor=payload["is_janitor"],
            shape=payload["shape"],
            certified=payload["certified"],
            elapsed_seconds=payload["elapsed_seconds"],
            invocation_counts=dict(payload["invocation_counts"]),
            invocation_durations={
                kind: list(durations) for kind, durations
                in payload["invocation_durations"].items()},
            verdict=payload["verdict"],
            quarantined_archs=list(payload["quarantined_archs"]),
            fault_reports=[FaultReport(**fault)
                           for fault in payload["fault_reports"]],
            files=[_file_from_dict(entry)
                   for entry in payload["files"]],
        )
    except (KeyError, TypeError) as error:
        raise SchemaError(
            f"journaled verdict is missing or has malformed fields: "
            f"{error}") from error


def _file_from_dict(payload: dict) -> FileInstanceRecord:
    try:
        kwargs = {name: payload[name] for name in _FILE_FIELDS}
        status = FileStatus[payload["status"]]
        hazards = [HazardKind[name] for name in payload["hazard_kinds"]]
    except KeyError as error:
        raise SchemaError(
            f"journaled file instance is missing or has unknown "
            f"fields: {error}") from error
    return FileInstanceRecord(status=status, hazard_kinds=hazards,
                              **kwargs)
