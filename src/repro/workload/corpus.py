"""The evaluation corpus bundle.

A :class:`Corpus` holds everything one experiment needs:

- the generated tree and its ground-truth metadata;
- a repository whose history spans two windows — a long *history*
  window (the paper's v3.0..v4.3, used for janitor identification) and
  the *evaluation* window (v4.3..v4.4, the commits JMake checks);
- per-commit ground truth (author persona, change shape, hazard kinds
  touched);
- the author roster.

``build_corpus`` is deterministic given the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.generator import GeneratedTree, KernelTreeGenerator
from repro.kernel.layout import TreeSpec, default_tree_spec
from repro.util.rng import DeterministicRng
from repro.vcs.objects import Signature, Tree
from repro.vcs.repository import Repository
from repro.workload.commits import CommitMetadata, CommitStreamGenerator
from repro.workload.personas import Persona, default_roster


@dataclass(frozen=True)
class CorpusSpec:
    """Scale and seed of one evaluation corpus."""
    seed: int | str = "jmake-corpus-v1"
    #: commits in the v3.0..v4.3 history window (janitor identification)
    history_commits: int = 1200
    #: commits in the v4.3..v4.4 evaluation window
    eval_commits: int = 400
    regular_developers: int = 40
    tree_spec: TreeSpec | None = None


@dataclass
class Corpus:
    """Tree + history + roster + ground truth bundle."""
    spec: CorpusSpec
    tree: GeneratedTree
    repository: Repository
    roster: list[Persona]
    history_metadata: list[CommitMetadata] = field(default_factory=list)
    eval_metadata: list[CommitMetadata] = field(default_factory=list)

    #: tag names bounding the windows
    TAG_BASE = "v3.0"
    TAG_EVAL_START = "v4.3"
    TAG_EVAL_END = "v4.4"

    def metadata_by_commit(self) -> dict[str, CommitMetadata]:
        """commit id -> ground-truth metadata."""
        merged: dict[str, CommitMetadata] = {}
        for record in self.history_metadata + self.eval_metadata:
            merged[record.commit_id] = record
        return merged

    def eval_window_commits(self):
        """Commits of the evaluation window, unfiltered."""
        return [self.repository.resolve(record.commit_id)
                for record in self.eval_metadata]

    def janitor_personas(self) -> list[Persona]:
        """The roster's janitor personas."""
        from repro.workload.personas import PersonaKind
        return [persona for persona in self.roster
                if persona.kind is PersonaKind.JANITOR]


def build_corpus(spec: CorpusSpec | None = None) -> Corpus:
    """Deterministically build a corpus from its spec."""
    spec = spec or CorpusSpec()
    rng = DeterministicRng(spec.seed)
    tree_spec = spec.tree_spec or default_tree_spec(
        seed=f"{spec.seed}-tree")
    tree = KernelTreeGenerator(tree_spec).generate()
    roster = default_roster(
        list(tree_spec.subsystems),
        regular_developers=spec.regular_developers)

    repository = Repository()
    base = repository.commit(
        Tree(tree.files),
        Signature("Linus Torvalds", "torvalds@example.org",
                  "2011-07-21T00:00:00"),
        "Linux 3.0")
    repository.tag(Corpus.TAG_BASE, base.id)

    generator = CommitStreamGenerator(tree, roster, rng.fork("commits"))
    history = generator.generate(repository, spec.history_commits)
    repository.tag(Corpus.TAG_EVAL_START, repository.head().id)

    # Scripted rare populations (§V-C/D): roughly 2% of the window edits
    # a bootstrap file, plus a couple of whole-kernel-rebuild outliers.
    scripted: list[tuple[int, str]] = []
    bootstrap = sorted(tree.bootstrap_paths)
    triggers = sorted(path for path in tree.rebuild_triggers
                      if path in tree.files)
    bootstrap_count = max(1, spec.eval_commits // 50)
    for index in range(bootstrap_count):
        position = (index + 1) * spec.eval_commits // (bootstrap_count + 1)
        scripted.append((position, bootstrap[index % len(bootstrap)]))
    for index, trigger in enumerate(triggers):
        scripted.append((spec.eval_commits // 3 + index * 7, trigger))
    scripted.sort()

    eval_window: list = []
    script_rng = rng.fork("scripted")
    script_index = 0
    normal_total = max(0, spec.eval_commits - len(scripted))
    for produced in range(normal_total):
        while script_index < len(scripted) and \
                scripted[script_index][0] <= produced:
            persona = script_rng.choice(roster)
            eval_window.append(generator.scripted_edit(
                repository, persona, scripted[script_index][1]))
            script_index += 1
        eval_window.extend(generator.generate(repository, 1))
    while script_index < len(scripted):
        persona = script_rng.choice(roster)
        eval_window.append(generator.scripted_edit(
            repository, persona, scripted[script_index][1]))
        script_index += 1
    repository.tag(Corpus.TAG_EVAL_END, repository.head().id)

    return Corpus(spec=spec, tree=tree, repository=repository,
                  roster=roster, history_metadata=history,
                  eval_metadata=eval_window)
