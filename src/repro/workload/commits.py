"""The synthetic commit stream.

Generates a history over a generated tree, commit by commit, with:

- persona-weighted authorship (janitors breadth-first and uniform across
  files, maintainers depth-first and skewed — which is exactly what the
  §IV file-cv ranking keys on);
- change shapes drawn from each persona's Table III mixture, including
  the ignorable population (docs-only, whitespace-only, merges) that
  §V-A filters out;
- compile-safe edits produced through :class:`SourceAnatomy`
  (numeric bumps, statement insertion/removal, comment edits), aimed at
  ordinary code, macro bodies, comments, or hazard blocks;
- full ground truth per commit for the evaluation harness.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from datetime import datetime, timedelta

from repro.kernel.generator import GeneratedTree
from repro.kernel.layout import HazardKind
from repro.util.rng import DeterministicRng
from repro.vcs.objects import Signature, Tree
from repro.vcs.repository import Repository
from repro.workload.anatomy import SourceAnatomy
from repro.workload.personas import Persona, PersonaKind


@dataclass
class FileEdit:
    """Ground truth for one edited file in one commit."""
    path: str
    edit_kind: str                      # code|macro|comment|hazard|header
    hazard_kind: HazardKind | None = None


@dataclass
class CommitMetadata:
    """Ground truth for one generated commit."""
    commit_id: str
    author: Persona
    shape: str                          # c_only|h_only|both|docs|ws|merge
    edits: list[FileEdit] = field(default_factory=list)

    @property
    def is_ignorable(self) -> bool:
        """True for docs-only/whitespace-only/merge commits."""
        return self.shape in ("docs", "ws", "merge")

    def hazard_kinds(self) -> list[HazardKind]:
        """Hazard kinds this commit's edits touched."""
        return [edit.hazard_kind for edit in self.edits
                if edit.hazard_kind is not None]


class CommitStreamGenerator:
    """Produces the synthetic history, persona by persona."""
    def __init__(self, tree: GeneratedTree, roster: list[Persona],
                 rng: DeterministicRng) -> None:
        self._tree = tree
        self._roster = roster
        self._rng = rng
        self._files = dict(tree.files)
        self._date = datetime(2011, 7, 22)   # just after Linux v3.0
        self._counter = 0
        self._c_files = [path for path in sorted(tree.info)
                         if tree.info[path].kind in ("driver_c", "core_c")]
        self._arch_c_files = [path for path in sorted(tree.info)
                              if tree.info[path].kind == "arch_c"]
        self._h_files = [path for path in sorted(tree.info)
                         if tree.info[path].kind in ("subsys_header",
                                                     "shared_header")]

    # -- public ------------------------------------------------------------

    def generate(self, repository: Repository,
                 count: int) -> list[CommitMetadata]:
        """Append `count` commits to the repository."""
        metadata: list[CommitMetadata] = []
        weights = [persona.weight for persona in self._roster]
        for _ in range(count):
            persona = self._rng.weighted_choice(self._roster, weights)
            metadata.append(self._one_commit(repository, persona))
        return metadata

    def scripted_edit(self, repository: Repository, persona: Persona,
                      path: str) -> CommitMetadata:
        """One commit bumping a number in a specific file.

        Used to guarantee coverage of rare populations: the bootstrap
        files of §V-D and the whole-kernel-rebuild outlier of Fig. 4c.
        """
        anatomy = SourceAnatomy.scan(path, self._files[path])
        target_lines = anatomy.code_lines or anatomy.macro_lines
        new_text = None
        if target_lines:
            new_text = anatomy.bump_number(self._rng.choice(target_lines))
        if new_text is None:
            # fall back to a raw numeric bump anywhere in the file
            for lineno in range(1, self._files[path].count("\n") + 2):
                new_text = anatomy.bump_number(lineno)
                if new_text is not None:
                    break
        edits: list[FileEdit] = []
        if new_text is not None:
            self._files[path] = new_text
            edits.append(FileEdit(path=path, edit_kind="code"))
        commit = repository.commit(
            Tree(self._files), self._signature(persona),
            f"{path}: scripted update")
        return CommitMetadata(
            commit_id=commit.id, author=persona,
            shape="c_only" if edits else "ws", edits=edits)

    # -- commit construction ---------------------------------------------------

    def _one_commit(self, repository: Repository,
                    persona: Persona) -> CommitMetadata:
        shape = self._draw_shape(persona)
        edits: list[FileEdit] = []
        if shape == "merge" and len(repository) >= 2:
            return self._merge_commit(repository, persona)
        if shape == "docs":
            self._edit_docs()
        elif shape == "ws":
            self._edit_whitespace(persona)
        elif shape == "c_only":
            edits = self._edit_c_files(persona)
        elif shape == "h_only":
            edits = self._edit_header(persona)
        elif shape == "both":
            edits = self._edit_header_and_c(persona)

        if shape in ("c_only", "h_only", "both"):
            # An edit may have fallen back (e.g. no header candidate), so
            # re-derive the shape from what actually changed.
            has_h = any(edit.path.endswith(".h") for edit in edits)
            has_c = any(edit.path.endswith(".c") for edit in edits)
            if has_h and has_c:
                shape = "both"
            elif has_h:
                shape = "h_only"
            elif has_c:
                shape = "c_only"

        commit = repository.commit(
            Tree(self._files), self._signature(persona),
            self._subject(persona, shape, edits))
        record = CommitMetadata(commit_id=commit.id, author=persona,
                                shape=shape, edits=edits)
        return record

    def _merge_commit(self, repository: Repository,
                      persona: Persona) -> CommitMetadata:
        head = repository.head()
        other = head.parents[0] if head.parents else head.id
        commit = repository.commit(
            Tree(self._files), self._signature(persona),
            "Merge branch 'for-linus'",
            parents=(head.id, other) if other != head.id
            else (head.id,))
        return CommitMetadata(commit_id=commit.id, author=persona,
                              shape="merge")

    def _signature(self, persona: Persona) -> Signature:
        self._date += timedelta(hours=3)
        return Signature(name=persona.name, email=persona.email,
                         date=self._date.isoformat())

    def _subject(self, persona: Persona, shape: str,
                 edits: list[FileEdit]) -> str:
        self._counter += 1
        target = edits[0].path if edits else shape
        return f"{target}: update #{self._counter}"

    # -- shape selection ---------------------------------------------------------

    def _draw_shape(self, persona: Persona) -> str:
        mixture = persona.mixture
        roll = self._rng.random()
        if roll < mixture.c_only:
            return "c_only"
        roll -= mixture.c_only
        if roll < mixture.h_only:
            return "h_only"
        roll -= mixture.h_only
        if roll < mixture.both:
            return "both"
        ignorable = self._rng.random()
        if ignorable < 0.55:
            return "docs"
        if ignorable < 0.85:
            return "ws"
        return "merge"

    # -- file selection -----------------------------------------------------------

    def _candidate_c_files(self, persona: Persona) -> list[str]:
        if persona.home_subsystems:
            files = [path for path in self._c_files
                     if any(path.startswith(home + "/")
                            for home in persona.home_subsystems)]
            if files:
                return files
        return self._c_files

    def _pick_c_file(self, persona: Persona) -> str:
        if self._rng.bernoulli(persona.arch_rate) and self._arch_c_files:
            return self._rng.choice(self._arch_c_files)
        files = self._candidate_c_files(persona)
        if persona.kind is PersonaKind.JANITOR:
            # breadth-first and uniform: low file-cv
            return self._rng.choice(files)
        # depth-first: zipf-skewed toward a few favourite files
        rank = self._rng.zipf_rank(len(files), skew=1.3)
        return files[rank]

    def _pick_header(self, persona: Persona) -> str:
        if persona.home_subsystems:
            headers = [path for path in self._h_files
                       if any(path.startswith(home + "/")
                              for home in persona.home_subsystems)]
            if headers:
                return self._rng.choice(headers)
        return self._rng.choice(self._h_files)

    # -- edits -------------------------------------------------------------------

    def _edit_c_files(self, persona: Persona) -> list[FileEdit]:
        count = 1 + (self._rng.randint(0, persona.max_files - 1)
                     if persona.max_files > 1 else 0)
        edits: list[FileEdit] = []
        chosen: set[str] = set()
        for _ in range(count):
            path = self._pick_c_file(persona)
            if path in chosen:
                continue
            chosen.add(path)
            edit = self._edit_one_c(path, persona)
            if edit is not None:
                edits.append(edit)
        if not edits:
            # guarantee at least one edit so the commit is a modification
            edit = self._edit_one_c(self._c_files[0], persona)
            if edit is not None:
                edits.append(edit)
        return edits

    def _edit_one_c(self, path: str, persona: Persona) -> FileEdit | None:
        if self._rng.bernoulli(persona.hazard_rate):
            # Aim the change at a file that actually carries a hazard
            # block; otherwise the effective rate collapses to the small
            # fraction of files with hazards.
            hazard_path = self._pick_hazard_file(persona) or path
            hazard_anatomy = SourceAnatomy.scan(hazard_path,
                                                self._files[hazard_path])
            hazard_edit = self._try_hazard_edit(hazard_path, hazard_anatomy)
            if hazard_edit is not None:
                return hazard_edit
        anatomy = SourceAnatomy.scan(path, self._files[path])
        if self._rng.bernoulli(0.05):
            sweep = self._macro_sweep(path, anatomy)
            if sweep is not None:
                return sweep
        if self._rng.bernoulli(persona.comment_rate) \
                and anatomy.comment_lines:
            lineno = self._rng.choice(anatomy.comment_lines)
            new_text = anatomy.edit_comment(lineno, f"r{self._counter}")
            if new_text is not None:
                self._files[path] = new_text
                return FileEdit(path=path, edit_kind="comment")
        if self._rng.bernoulli(0.25) and anatomy.macro_lines:
            lineno = self._rng.choice(anatomy.macro_lines)
            new_text = anatomy.bump_number(lineno)
            if new_text is not None:
                self._files[path] = new_text
                return FileEdit(path=path, edit_kind="macro")
        if anatomy.code_lines:
            lineno = self._rng.choice(anatomy.code_lines)
            if self._rng.bernoulli(0.3):
                new_text = anatomy.insert_statement_after(
                    lineno, f"status = status + {self._rng.randint(1, 5)};")
            else:
                new_text = anatomy.bump_number(lineno)
            if new_text is not None:
                self._files[path] = new_text
                # Occasionally also touch a macro in the same file: the
                # changes then span two mutation groups (E-S2's ≤3 tail).
                if self._rng.bernoulli(0.15) and anatomy.macro_lines:
                    extra = SourceAnatomy.scan(path, new_text)
                    if extra.macro_lines:
                        wider = extra.bump_number(
                            self._rng.choice(extra.macro_lines))
                        if wider is not None:
                            self._files[path] = wider
                return FileEdit(path=path, edit_kind="code")
        if anatomy.macro_lines:
            lineno = self._rng.choice(anatomy.macro_lines)
            new_text = anatomy.bump_number(lineno)
            if new_text is not None:
                self._files[path] = new_text
                return FileEdit(path=path, edit_kind="macro")
        return None

    def _pick_hazard_file(self, persona: Persona) -> str | None:
        candidates = [path for path in self._candidate_c_files(persona)
                      if self._tree.info[path].hazards]
        if not candidates:
            candidates = [path for path in self._c_files
                          if self._tree.info[path].hazards]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def _macro_sweep(self, path: str,
                     anatomy: SourceAnatomy) -> FileEdit | None:
        """Bump every macro definition in the file: many mutations (the
        drivers/clk/bcm analogue of §V-B, scaled down)."""
        if len(anatomy.macro_lines) < 2:
            return None
        text = self._files[path]
        changed = False
        for lineno in anatomy.macro_lines:
            current = SourceAnatomy.scan(path, text)
            bumped = current.bump_number(lineno)
            if bumped is not None:
                text = bumped
                changed = True
        if not changed:
            return None
        self._files[path] = text
        return FileEdit(path=path, edit_kind="macro")

    def _try_hazard_edit(self, path: str,
                         anatomy: SourceAnatomy) -> FileEdit | None:
        available = sorted(anatomy.available_hazards(),
                           key=lambda kind: kind.value)
        if not available:
            return None
        kind = self._rng.choice(available)
        if kind is HazardKind.IFDEF_AND_ELSE:
            pairs = anatomy.ifdef_else_pairs()
            block = self._rng.choice(pairs)
            body_numeric = [l for l in block.body_lines
                            if anatomy.bump_number(l) is not None]
            else_numeric = [l for l in block.else_lines
                            if anatomy.bump_number(l) is not None]
            if not body_numeric or not else_numeric:
                return None
            text = anatomy.bump_number(self._rng.choice(body_numeric))
            anatomy2 = SourceAnatomy.scan(path, text)
            text = anatomy2.bump_number(self._rng.choice(else_numeric))
            if text is None:
                return None
            self._files[path] = text
            return FileEdit(path=path, edit_kind="hazard",
                            hazard_kind=kind)
        lines = anatomy.hazard_lines(kind)
        candidates = [l for l in lines
                      if anatomy.bump_number(l) is not None]
        if not candidates:
            return None
        new_text = anatomy.bump_number(self._rng.choice(candidates))
        self._files[path] = new_text
        return FileEdit(path=path, edit_kind="hazard", hazard_kind=kind)

    def _edit_header(self, persona: Persona) -> list[FileEdit]:
        path = self._pick_header(persona)
        anatomy = SourceAnatomy.scan(path, self._files[path])
        info = self._tree.info.get(path)
        lines = self._files[path].split("\n")

        def is_used_macro_line(lineno: int) -> bool:
            if info is None or not info.used_macros:
                return True
            text = lines[lineno - 1]
            return any(name in text for name in info.used_macros)

        used = [l for l in anatomy.macro_lines if is_used_macro_line(l)]
        other = [l for l in anatomy.macro_lines if l not in used]
        # Mostly edit macros some .c file actually uses (coverable);
        # occasionally an orphan — the population the .h pipeline can
        # never certify (§V-B's 2%).
        ordered: list[int] = []
        if used and (not other or self._rng.random() < 0.92):
            ordered = [self._rng.choice(used)]
        elif other:
            ordered = [self._rng.choice(other)]
        edits: list[FileEdit] = []
        self._last_header_macro = None
        for lineno in ordered:
            new_text = anatomy.bump_number(lineno)
            if new_text is not None:
                self._files[path] = new_text
                match = re.match(r"\s*#\s*define\s+(\w+)",
                                 lines[lineno - 1])
                if match:
                    self._last_header_macro = match.group(1)
                edits.append(FileEdit(path=path, edit_kind="header"))
                break
        if edits and used and self._rng.bernoulli(0.25):
            # A second macro in the same header: multi-mutation .h
            # instances (E-S2's "75% need only one" shape).
            rescan = SourceAnatomy.scan(path, self._files[path])
            extra = [l for l in rescan.macro_lines
                     if is_used_macro_line(l)]
            if extra:
                wider = rescan.bump_number(self._rng.choice(extra))
                if wider is not None:
                    self._files[path] = wider
        if not edits and anatomy.code_lines:
            lineno = self._rng.choice(anatomy.code_lines)
            new_text = anatomy.bump_number(lineno)
            if new_text is not None:
                self._files[path] = new_text
                edits.append(FileEdit(path=path, edit_kind="header"))
        return edits

    def _edit_header_and_c(self, persona: Persona) -> list[FileEdit]:
        header_edits = self._edit_header(persona)
        if not header_edits:
            return self._edit_c_files(persona)
        header_path = header_edits[0].path
        # Prefer a .c file that includes the header: the common case
        # where compiling the patch's own .c files covers the header.
        basename = header_path.rsplit("/", 1)[-1]
        includers = [path for path in self._c_files
                     if f'"{basename}"' in self._files[path]
                     or f"/{basename}>" in self._files[path]]
        # Prefer users of the macro the header edit just changed — the
        # natural shape of a combined .h+.c patch, and the reason §V-B
        # finds 66% of .h instances covered by the patch's own .c files.
        macro = getattr(self, "_last_header_macro", None)
        if macro:
            users = [path for path in includers
                     if macro in self._files[path]]
            if users:
                includers = users
        if includers and self._rng.bernoulli(0.92):
            c_path = self._rng.choice(includers)
        else:
            c_path = self._pick_c_file(persona)
        c_edit = self._edit_one_c(c_path, persona)
        if c_edit is not None:
            header_edits.append(c_edit)
        return header_edits

    def _edit_docs(self) -> None:
        path = "Documentation/CodingStyle"
        self._files[path] = self._files[path] + \
            f"\nRevision note {self._counter}.\n"

    def _edit_whitespace(self, persona: Persona) -> None:
        path = self._pick_c_file(persona)
        text = self._files[path]
        if "\treturn" in text:
            self._files[path] = text.replace("\treturn", "\t return", 1)
        else:
            self._files[path] = text.replace("\t", "\t ", 1)
