"""Finding safely editable points in generated source text.

The commit generator must produce patches that (a) keep the file
compilable — real kernel patches overwhelmingly compile — and (b) can be
aimed at specific line populations: ordinary statements, macro bodies,
comments, or lines inside configurability-hazard blocks.

The anatomy scanner is text-based: it re-derives structure from the file
content (the same way JMake itself must), so it stays correct even after
files have been edited repeatedly across a commit stream.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.sourcemap import LineClass, SourceMap
from repro.kernel.layout import HazardKind

_INT_RE = re.compile(r"(?<![\w.])(0x[0-9a-fA-F]+|\d+)(?![\w.])")

#: hazard-block openers recognisable in text; #else handled via pairing
_HAZARD_OPENERS = [
    (re.compile(r"^#if 0\b"), HazardKind.IF_ZERO),
    (re.compile(r"^#ifdef MODULE\b"), HazardKind.MODULE_ONLY),
    (re.compile(r"^#ifndef CONFIG_\w+"), HazardKind.IFNDEF),
    (re.compile(r"^#ifdef CONFIG_(IOSCHED_|PREEMPT_|\w*CPU_)"),
     HazardKind.CHOICE_UNSET),
    (re.compile(r"^#ifdef CONFIG_LEGACY_FEATURE_\d+"),
     HazardKind.NEVER_SET),
    # #ifdef CONFIG_<X>_EXTRA ... #else ... #endif: the else branch is
    # dead under allyesconfig; editing both sides is IFDEF_AND_ELSE.
    (re.compile(r"^#ifdef CONFIG_\w+_EXTRA\b"), HazardKind.IFDEF_AND_ELSE),
    # arch-only bus blocks: hidden from the host but compiled elsewhere
    (re.compile(r"^#ifdef CONFIG_\w+_SPECIAL_BUS\b"),
     HazardKind.ARCH_CONDITIONAL),
]


@dataclass
class HazardBlock:
    """One recognized hazard region with its editable lines."""
    kind: HazardKind
    start: int        # line of the opening directive (1-based)
    end: int          # line of the matching #endif
    body_lines: list[int] = field(default_factory=list)
    #: lines in the #else part, when the block has one
    else_lines: list[int] = field(default_factory=list)


@dataclass
class SourceAnatomy:
    """Editable line populations of one file."""

    path: str
    text: str
    code_lines: list[int] = field(default_factory=list)
    macro_lines: list[int] = field(default_factory=list)
    comment_lines: list[int] = field(default_factory=list)
    hazard_blocks: list[HazardBlock] = field(default_factory=list)
    unused_macro_lines: list[int] = field(default_factory=list)

    @classmethod
    def scan(cls, path: str, text: str) -> "SourceAnatomy":
        """Analyze a file into editable line populations."""
        anatomy = cls(path=path, text=text)
        source_map = SourceMap(path, text)
        hazard_line_set: set[int] = set()
        anatomy.hazard_blocks = _find_hazard_blocks(text)
        for block in anatomy.hazard_blocks:
            hazard_line_set.update(block.body_lines)
            hazard_line_set.update(block.else_lines)
            hazard_line_set.add(block.start)
            hazard_line_set.add(block.end)

        lines = text.split("\n")
        for info in source_map.lines:
            lineno = info.lineno
            raw = lines[lineno - 1] if lineno <= len(lines) else ""
            if info.line_class is LineClass.COMMENT:
                anatomy.comment_lines.append(lineno)
                continue
            if lineno in hazard_line_set:
                continue  # classified separately
            if info.line_class is LineClass.MACRO_DEF:
                anatomy.macro_lines.append(lineno)
                region = info.macro
                if region is not None and "_UNUSED_" in region.name:
                    anatomy.unused_macro_lines.append(lineno)
                continue
            if info.line_class is LineClass.CODE and raw.strip() \
                    and raw.rstrip().endswith(";") and _INT_RE.search(raw):
                anatomy.code_lines.append(lineno)
        return anatomy

    def hazard_lines(self, kind: HazardKind) -> list[int]:
        """Editable lines under hazard blocks of the given kind."""
        if kind is HazardKind.UNUSED_MACRO:
            return list(self.unused_macro_lines)
        selected: list[int] = []
        for block in self.hazard_blocks:
            if block.kind is kind:
                selected.extend(line for line in block.body_lines
                                if self._numeric(line) or
                                self._statement(line))
        return selected

    def ifdef_else_pairs(self) -> list[HazardBlock]:
        """Blocks with both a body and an #else part (IFDEF_AND_ELSE)."""
        return [block for block in self.hazard_blocks
                if block.kind is HazardKind.IFDEF_AND_ELSE
                and block.else_lines and block.body_lines]

    def available_hazards(self) -> set[HazardKind]:
        """Hazard kinds this file can express an edit against."""
        kinds = {block.kind for block in self.hazard_blocks
                 if self.hazard_lines(block.kind)}
        if self.unused_macro_lines:
            kinds.add(HazardKind.UNUSED_MACRO)
        if self.ifdef_else_pairs():
            kinds.add(HazardKind.IFDEF_AND_ELSE)
        return kinds

    # -- edit primitives (all preserve compilability) ---------------------

    def bump_number(self, lineno: int) -> "str | None":
        """New file text with an integer literal on the line incremented."""
        lines = self.text.split("\n")
        if not 1 <= lineno <= len(lines):
            return None
        raw = lines[lineno - 1]
        match = _INT_RE.search(raw)
        if not match:
            return None
        literal = match.group(1)
        value = int(literal, 16) if literal.startswith("0x") else int(literal)
        replacement = hex(value + 1) if literal.startswith("0x") \
            else str(value + 1)
        lines[lineno - 1] = raw[:match.start()] + replacement \
            + raw[match.end():]
        return "\n".join(lines)

    def edit_comment(self, lineno: int, tag: str) -> "str | None":
        """New text with a tag appended inside a comment line."""
        lines = self.text.split("\n")
        if not 1 <= lineno <= len(lines):
            return None
        raw = lines[lineno - 1]
        if "*/" in raw:
            lines[lineno - 1] = raw.replace("*/", f"({tag}) */", 1)
        else:
            lines[lineno - 1] = raw + f" {tag}"
        return "\n".join(lines)

    def insert_statement_after(self, lineno: int, statement: str
                               ) -> "str | None":
        """New text with a statement inserted below the line."""
        lines = self.text.split("\n")
        if not 1 <= lineno <= len(lines):
            return None
        indent = re.match(r"[ \t]*", lines[lineno - 1]).group(0)
        lines.insert(lineno, f"{indent}{statement}")
        return "\n".join(lines)

    def remove_line(self, lineno: int) -> "str | None":
        """Remove a full statement line (safe for the substrate compiler)."""
        lines = self.text.split("\n")
        if not 1 <= lineno <= len(lines):
            return None
        if not lines[lineno - 1].rstrip().endswith(";"):
            return None
        del lines[lineno - 1]
        return "\n".join(lines)

    # -- internals ------------------------------------------------------------

    def _numeric(self, lineno: int) -> bool:
        lines = self.text.split("\n")
        return 1 <= lineno <= len(lines) and \
            _INT_RE.search(lines[lineno - 1]) is not None

    def _statement(self, lineno: int) -> bool:
        lines = self.text.split("\n")
        return 1 <= lineno <= len(lines) and \
            lines[lineno - 1].rstrip().endswith(";")


def _find_hazard_blocks(text: str) -> list[HazardBlock]:
    """Pair hazard openers with their #endif, collecting body lines."""
    blocks: list[HazardBlock] = []
    stack: list[tuple[HazardBlock | None, bool]] = []  # (block, in_else)
    for lineno, raw in enumerate(text.split("\n"), start=1):
        stripped = raw.strip()
        opener_kind = None
        for regex, kind in _HAZARD_OPENERS:
            if regex.match(stripped):
                opener_kind = kind
                break
        if stripped.startswith(("#if", "#ifdef", "#ifndef")):
            block = None
            if opener_kind is not None:
                block = HazardBlock(kind=opener_kind, start=lineno,
                                    end=lineno)
                blocks.append(block)
            stack.append((block, False))
            continue
        if stripped.startswith("#else"):
            if stack:
                block, _ = stack[-1]
                stack[-1] = (block, True)
            continue
        if stripped.startswith("#endif"):
            if stack:
                block, _ = stack.pop()
                if block is not None:
                    block.end = lineno
            continue
        if stack:
            block, in_else = stack[-1]
            if block is not None and stripped:
                if in_else:
                    block.else_lines.append(lineno)
                else:
                    block.body_lines.append(lineno)
    return blocks
