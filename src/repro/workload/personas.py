"""Author behaviour models.

§IV characterizes a janitor as a developer who "works on the code base in
a breadth-first way, touching many files and many subsystems, and doing
about the same small amount of work on each one". Maintainers work
depth-first on one subsystem. The roster mirrors Table II: ten janitor
personas (named after the developers the paper identifies), one
maintainer per subsystem, and a population of regular developers.

Change-type mixtures are calibrated to Table III: for the overall stream
roughly 70% .c-only / 5% .h-only / 23% both (plus a remainder of
ignorable commits); janitors skew to 87% / 2% / 10%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class PersonaKind(Enum):
    """Author archetypes (§IV)."""
    JANITOR = "janitor"
    MAINTAINER = "maintainer"
    REGULAR = "regular"


@dataclass(frozen=True)
class ChangeMixture:
    """Probabilities of per-commit change shapes; the remainder is
    ignorable (docs-only / whitespace-only / merge)."""

    c_only: float
    h_only: float
    both: float

    @property
    def ignorable(self) -> float:
        """The remainder: docs/whitespace/merge commits."""
        return max(0.0, 1.0 - self.c_only - self.h_only - self.both)


@dataclass(frozen=True)
class Persona:
    """One author's behavioural parameters."""
    name: str
    email: str
    kind: PersonaKind
    #: relative volume of commits this persona contributes
    weight: float = 1.0
    #: subsystem paths the persona concentrates on (empty = everywhere)
    home_subsystems: tuple[str, ...] = ()
    mixture: ChangeMixture = ChangeMixture(0.70, 0.05, 0.23)
    #: probability a change lands on configurability-hazard lines
    hazard_rate: float = 0.03
    #: probability a change is comment-only
    comment_rate: float = 0.04
    #: probability of touching an arch/ file
    arch_rate: float = 0.05
    #: files per commit (lognormal-ish; 1..max)
    max_files: int = 4
    #: developer of static-analysis tools ("(T)" in Table II)
    tool_user: bool = False
    #: internship applicant ("(I)" in Table II)
    intern: bool = False


#: The ten janitors of Table II, with their annotations.
JANITOR_NAMES: list[tuple[str, bool, bool]] = [
    ("Javier Martinez Canillas", False, False),
    ("Luis de Bethencourt", False, False),
    ("Dan Carpenter", True, False),
    ("Julia Lawall", True, False),
    ("Shraddha Barke", False, True),
    ("Joe Perches", True, False),
    ("Axel Lin", False, False),
    ("Daniel Borkmann", False, False),
    ("Fabio Estevam", False, False),
    ("Jarkko Nikula", False, False),
]

# Mixtures are over ALL commits; the ignorable remainder models the 16%
# of commits the evaluation drops (merges, whitespace-only, docs-only —
# 2099 of 12,946 in §V-A). Within the *considered* commits the ratios
# reproduce Table III: e.g. janitors 0.80/0.92 ≈ 87% .c-only.
_JANITOR_MIXTURE = ChangeMixture(c_only=0.80, h_only=0.018, both=0.092)
_MAINTAINER_MIXTURE = ChangeMixture(c_only=0.52, h_only=0.055, both=0.235)
_REGULAR_MIXTURE = ChangeMixture(c_only=0.58, h_only=0.042, both=0.195)


def _email_of(name: str) -> str:
    slug = name.lower().replace(" ", ".")
    return f"{slug}@example.org"


def default_roster(subsystems: list,
                   regular_developers: int = 40) -> list[Persona]:
    """The standard author population for the evaluation corpus.

    ``subsystems`` holds either plain path strings or
    :class:`repro.kernel.layout.SubsystemSpec` objects; specs let the
    maintainer personas reuse the exact identities MAINTAINERS lists,
    which is what makes the Table I maintainer-share filter bite.
    """
    subsystem_paths: list[str] = []
    maintainer_identity: dict[str, tuple[str, str]] = {}
    for item in subsystems:
        if isinstance(item, str):
            path = item
            identity = (f"Maintainer of {path}",
                        f"maint-{path.replace('/', '-')}@example.org")
        else:
            path = item.path
            identity = (item.maintainer.split("<", 1)[0].strip(),
                        item.maintainer.split("<", 1)[1].rstrip(">").strip())
        subsystem_paths.append(path)
        maintainer_identity[path] = identity
    roster: list[Persona] = []
    # Janitor weights vary the way Table II patch counts do.
    janitor_weights = [1.0, 0.9, 6.0, 3.0, 1.2, 4.5, 4.2, 1.0, 3.4, 1.4]
    for (name, tool_user, intern), weight in zip(JANITOR_NAMES,
                                                 janitor_weights):
        roster.append(Persona(
            name=name, email=_email_of(name), kind=PersonaKind.JANITOR,
            weight=weight,
            mixture=_JANITOR_MIXTURE,
            hazard_rate=0.07,
            comment_rate=0.06,
            arch_rate=0.03,
            max_files=3,
            tool_user=tool_user, intern=intern,
        ))
    for path in subsystem_paths:
        maintainer_name, maintainer_email = maintainer_identity[path]
        roster.append(Persona(
            name=maintainer_name,
            email=maintainer_email,
            kind=PersonaKind.MAINTAINER,
            weight=2.2,
            home_subsystems=(path,),
            mixture=_MAINTAINER_MIXTURE,
            hazard_rate=0.085,
            comment_rate=0.03,
            arch_rate=0.02,
            max_files=5,
        ))
    for index in range(regular_developers):
        roster.append(Persona(
            name=f"Developer {index:02d}",
            email=f"dev{index:02d}@example.org",
            kind=PersonaKind.REGULAR,
            weight=1.0,
            home_subsystems=tuple(
                subsystem_paths[index % len(subsystem_paths):
                                index % len(subsystem_paths) + 2]),
            mixture=_REGULAR_MIXTURE,
            hazard_rate=0.085,
            comment_rate=0.04,
            arch_rate=0.08,
            max_files=4,
        ))
    return roster
