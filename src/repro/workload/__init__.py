"""Synthetic evaluation corpus: tree + commit history + author roster.

The paper evaluates JMake on the 12,946 commits between Linux v4.3 and
v4.4, plus the v3.0..v4.4 history for janitor identification (§IV-V).
This package generates an equivalent population over the synthetic tree:

- :mod:`repro.workload.anatomy` — finds safely editable points in
  generated source text (code statements, macro bodies, comments,
  hazard blocks);
- :mod:`repro.workload.personas` — author behaviour models (janitors,
  maintainers, regular developers) with Table III change mixtures;
- :mod:`repro.workload.commits` — the commit-stream generator;
- :mod:`repro.workload.corpus` — the bundle the evaluation harness
  consumes, with per-commit ground truth.
"""

from repro.workload.anatomy import SourceAnatomy
from repro.workload.commits import CommitMetadata, CommitStreamGenerator
from repro.workload.corpus import Corpus, CorpusSpec, build_corpus
from repro.workload.personas import Persona, PersonaKind, default_roster

__all__ = [
    "CommitMetadata",
    "CommitStreamGenerator",
    "Corpus",
    "CorpusSpec",
    "Persona",
    "PersonaKind",
    "SourceAnatomy",
    "build_corpus",
    "default_roster",
]
