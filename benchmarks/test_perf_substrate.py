"""Real wall-clock performance benchmarks of the substrate itself.

Unlike the table/figure benchmarks (which report *simulated* seconds),
these measure the library's actual throughput — the numbers a developer
feels when running JMake interactively: preprocessing a driver, solving
allyesconfig, generating the tree, checking one patch end to end.
"""

import pytest

from repro.core.jmake import JMake
from repro.cpp.preprocessor import Preprocessor
from repro.kbuild.build import BuildSystem
from repro.kconfig.solver import allyesconfig
from repro.kernel.generator import generate_tree
from repro.kernel.layout import default_tree_spec
from repro.kernel.generator import KernelTreeGenerator
from repro.vcs.diff import Patch, diff_texts


@pytest.fixture(scope="module")
def tree():
    return generate_tree()


def test_perf_tree_generation(benchmark):
    spec = default_tree_spec()
    tree = benchmark(lambda: KernelTreeGenerator(spec).generate())
    assert len(tree.files) > 200


def test_perf_preprocess_driver(benchmark, tree):
    build = BuildSystem(tree.provider(),
                        path_lister=lambda: sorted(tree.files))
    config = build.make_config("x86_64", "allyesconfig")
    compiler = build._compiler("x86_64", config, modular_unit=False)
    result = benchmark(compiler.preprocess, "drivers/net/netdrv0.c")
    assert "netdrv0_probe" in result.text


def test_perf_allyesconfig_solve(benchmark, tree):
    build = BuildSystem(tree.provider(),
                        path_lister=lambda: sorted(tree.files))
    model = build.config_model("x86_64")
    config = benchmark(allyesconfig, model)
    assert config.enabled("NETDRV")


def test_perf_jmake_check_patch(benchmark, tree):
    jmake = JMake.from_generated_tree(tree)
    path = "fs/ext4/ext40.c"
    original = tree.files[path]
    edited = original.replace("int status = 0;", "int status = 7;")
    files = dict(tree.files)
    files[path] = edited
    patch = Patch(files=[diff_texts(path, original, edited)])

    def check():
        worktree = JMake.worktree_for_files(files)
        return jmake.check_patch(worktree, patch)

    report = benchmark(check)
    assert report.certified


def test_perf_kernel_header_preprocess(benchmark, tree):
    """Worst-case single file: a driver including shared headers."""
    provider = tree.provider()
    preprocessor = Preprocessor(
        provider, include_paths=["arch/x86/include", "include"],
        predefined={"__KERNEL__": "1", "__x86_64__": "1"})
    result = benchmark(preprocessor.preprocess,
                       "drivers/staging/comedi/comedi0.c")
    assert result.included_files
