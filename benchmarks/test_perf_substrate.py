"""Real wall-clock performance benchmarks of the substrate itself.

Unlike the table/figure benchmarks (which report *simulated* seconds),
these measure the library's actual throughput — the numbers a developer
feels when running JMake interactively: preprocessing a driver, solving
allyesconfig, generating the tree, checking one patch end to end.

``test_perf_fastpath_speedup`` additionally emits the machine-readable
``benchmarks/artifacts/BENCH_substrate.json`` — per-stage wall-clock and
ops/sec, normalized by a fixed calibration workload so the committed
baseline (``benchmarks/BENCH_substrate.json``) transfers across
machines — and asserts the fast path's headline speedup. CI's ``perf``
job replays this file through ``benchmarks/perf_guard.py`` to catch
throughput regressions.
"""

import json

import pytest

from benchmarks.calibration import calibrate, stage, time_best
from repro.core.jmake import JMake
from repro.cpp import prepared
from repro.cpp.lexer import CommentStripper, tokenize
from repro.cpp.macro import MacroTable
from repro.cpp.preprocessor import Preprocessor
from repro.errors import ReproError
from repro.kbuild.build import BuildSystem
from repro.kconfig.solver import allyesconfig
from repro.kernel.generator import generate_tree
from repro.kernel.layout import default_tree_spec
from repro.kernel.generator import KernelTreeGenerator
from repro.vcs.diff import Patch, diff_texts


@pytest.fixture(scope="module")
def tree():
    return generate_tree()


def test_perf_tree_generation(benchmark):
    spec = default_tree_spec()
    tree = benchmark(lambda: KernelTreeGenerator(spec).generate())
    assert len(tree.files) > 200


def test_perf_preprocess_driver(benchmark, tree):
    build = BuildSystem(tree.provider(),
                        path_lister=lambda: sorted(tree.files))
    config = build.make_config("x86_64", "allyesconfig")
    compiler = build._compiler("x86_64", config, modular_unit=False)
    result = benchmark(compiler.preprocess, "drivers/net/netdrv0.c")
    assert "netdrv0_probe" in result.text


def test_perf_allyesconfig_solve(benchmark, tree):
    build = BuildSystem(tree.provider(),
                        path_lister=lambda: sorted(tree.files))
    model = build.config_model("x86_64")
    config = benchmark(allyesconfig, model)
    assert config.enabled("NETDRV")


def test_perf_jmake_check_patch(benchmark, tree):
    jmake = JMake.from_generated_tree(tree)
    path = "fs/ext4/ext40.c"
    original = tree.files[path]
    edited = original.replace("int status = 0;", "int status = 7;")
    files = dict(tree.files)
    files[path] = edited
    patch = Patch(files=[diff_texts(path, original, edited)])

    def check():
        worktree = JMake.worktree_for_files(files)
        return jmake.check_patch(worktree, patch)

    report = benchmark(check)
    assert report.certified


def test_perf_kernel_header_preprocess(benchmark, tree):
    """Worst-case single file: a driver including shared headers."""
    provider = tree.provider()
    preprocessor = Preprocessor(
        provider, include_paths=["arch/x86/include", "include"],
        predefined={"__KERNEL__": "1", "__x86_64__": "1"})
    result = benchmark(preprocessor.preprocess,
                       "drivers/staging/comedi/comedi0.c")
    assert result.included_files


# -- the fast-path speedup benchmark (BENCH_substrate.json) -----------------

_INCLUDE_PATHS = ["arch/x86/include", "include"]
_PREDEFINED = {"__KERNEL__": "1", "__x86_64__": "1"}
_DRIVER = "drivers/staging/comedi/comedi0.c"
_DRIVER_REPEATS = 40

# calibration/timing/stage helpers are shared with the obs benchmark
# (benchmarks/calibration.py) so every BENCH_*.json normalizes by the
# same machine-speed unit
_calibrate = calibrate
_time_best = time_best
_stage = stage


def test_perf_fastpath_speedup(tree, artifacts_dir):
    """Reference vs fast pipeline; emits BENCH_substrate.json (S3/S6)."""
    provider = tree.provider()
    tu_paths = sorted(p for p in tree.files if p.endswith(".c"))
    all_lines = [line for path in sorted(tree.files)
                 for line in tree.files[path].split("\n")]

    def preprocess_driver():
        pp = Preprocessor(provider, _INCLUDE_PATHS, _PREDEFINED)
        for _ in range(_DRIVER_REPEATS):
            pp.preprocess(_DRIVER)

    def preprocess_tree():
        pp = Preprocessor(provider, _INCLUDE_PATHS, _PREDEFINED)
        for path in tu_paths:
            try:
                pp.preprocess(path)
            except ReproError:
                pass  # non-x86 TUs; identical either way

    def strip_all():
        stripper = CommentStripper()
        for line in all_lines:
            stripper.strip_line(line)

    def tokenize_all():
        for line in all_lines:
            tokenize(line)

    def expand_all():
        macros = MacroTable(_PREDEFINED)
        for line in all_lines:
            macros.expand_text(line)

    calibration = _calibrate()
    stages = []

    # reference timings: every fast-path level force-disabled
    with prepared.fastpath_disabled():
        ref_driver = _time_best(preprocess_driver)
        ref_tree = _time_best(preprocess_tree)
        for name, fn, ops in [("strip", strip_all, len(all_lines)),
                              ("tokenize", tokenize_all, len(all_lines)),
                              ("expand", expand_all, len(all_lines))]:
            stages.append(_stage(f"{name}_reference", ops,
                                 _time_best(fn), calibration))

    # cold: one run against freshly cleared caches (not best-of-N, which
    # would measure the warm path)
    prepared.configure(True)
    cold_driver = _time_best(preprocess_driver, repeats=1)
    prepared.clear_caches()
    cold_tree = _time_best(preprocess_tree, repeats=1)

    # warm: caches stay populated between repeats
    warm_driver = _time_best(preprocess_driver)
    warm_tree = _time_best(preprocess_tree)
    for name, fn, ops in [("strip", strip_all, len(all_lines)),
                          ("tokenize", tokenize_all, len(all_lines)),
                          ("expand", expand_all, len(all_lines))]:
        stages.append(_stage(f"{name}_fastpath", ops,
                             _time_best(fn), calibration))

    stages.append(_stage("preprocess_driver_reference",
                         _DRIVER_REPEATS, ref_driver, calibration))
    stages.append(_stage("preprocess_driver_cold",
                         _DRIVER_REPEATS, cold_driver, calibration))
    stages.append(_stage("preprocess_driver_warm",
                         _DRIVER_REPEATS, warm_driver, calibration))
    stages.append(_stage("preprocess_tree_reference",
                         len(tu_paths), ref_tree, calibration))
    stages.append(_stage("preprocess_tree_cold",
                         len(tu_paths), cold_tree, calibration))
    stages.append(_stage("preprocess_tree_warm",
                         len(tu_paths), warm_tree, calibration))

    speedup = {
        "preprocess_driver_cold": round(ref_driver / cold_driver, 2),
        "preprocess_driver_warm": round(ref_driver / warm_driver, 2),
        "preprocess_tree_cold": round(ref_tree / cold_tree, 2),
        "preprocess_tree_warm": round(ref_tree / warm_tree, 2),
    }
    payload = {
        "suite": "substrate",
        "calibration_ops_per_sec": round(calibration, 2),
        "stages": stages,
        "speedup": speedup,
        "substrate_stats": prepared.stats_snapshot(),
    }
    out = artifacts_dir / "BENCH_substrate.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n--- BENCH_substrate ---\n"
          f"speedups: {json.dumps(speedup)}\n"
          f"calibration: {calibration:,.0f} ops/s")

    # the ISSUE's acceptance bar: >=3x wall-clock on the
    # preprocess-heavy path, measured cold (caches start empty)
    assert speedup["preprocess_driver_cold"] >= 3.0, speedup
