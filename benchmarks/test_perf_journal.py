"""Wall-clock benchmark: journaling overhead over the bare run.

The write-ahead verdict journal appends one fsync-disciplined frame
per checked commit (plus periodic checkpoint compactions). The
acceptance bar (ISSUE 5): the journal's warm-path cost must stay
within 10% of run throughput — durability is one small synchronous
write per *commit*, not per unit, so it must be noise next to the
check pipeline itself.

The asserted ratio is measured *in-run*: the ledger accounts every
second spent inside ``emit`` (encode + CRC + write + fsync +
triggered checkpoints) and the benchmark divides that by the same
run's wall clock. Differencing two separate ~3-second totals cannot
resolve a 10% bound on a shared machine (run-to-run noise on this
class of box is itself ±10%); the A/B wall-clock numbers are still
recorded in the artifact for reference.
"""

import time

import pytest

from repro.evalsuite.runner import EvaluationSession

#: commits per measured run (a window of the bench corpus)
RUN_LIMIT = 120
#: journal emit seconds : run wall seconds must stay under this
OVERHEAD_CEILING = 0.10


@pytest.fixture(scope="module")
def timed_runs(bench_corpus, tmp_path_factory):
    journal = tmp_path_factory.mktemp("journal") / "bench.jnl"

    def run(**kwargs):
        t0 = time.perf_counter()
        result = EvaluationSession(bench_corpus).run(
            limit=RUN_LIMIT, **kwargs)
        return time.perf_counter() - t0, result

    # warmup: fault the generated tree/corpus lazies out of the timing
    run()
    t_bare, bare = run()
    t_journaled, journaled = run(journal=str(journal))
    return t_bare, bare, t_journaled, journaled


def test_perf_journal_overhead(timed_runs, record_artifact):
    t_bare, bare, t_journaled, journaled = timed_runs
    stats = journaled.journal_stats
    overhead = stats["emit_seconds"] / t_journaled
    record_artifact("perf_journal", "\n".join([
        f"commits checked:     {len(bare.patches)}",
        f"bare run:            {t_bare:.3f}s (reference only)",
        f"journaled run:       {t_journaled:.3f}s",
        f"journal emit time:   {stats['emit_seconds'] * 1000:.1f}ms",
        f"warm-path overhead:  {overhead:.1%} "
        f"(ceiling {OVERHEAD_CEILING:.0%})",
        f"verdicts journaled:  {stats['emitted']}",
        f"checkpoints written: {stats['checkpoints_written']}",
        f"final WAL bytes:     {stats['wal_bytes']}",
    ]))
    assert overhead <= OVERHEAD_CEILING, (
        f"journal warm-path overhead {overhead:.1%} above the "
        f"{OVERHEAD_CEILING:.0%} acceptance ceiling")


def test_perf_journal_records_match(timed_runs):
    _, bare, _, journaled = timed_runs
    assert journaled.canonical_records() == bare.canonical_records()
    assert journaled.journal_stats["emitted"] == len(bare.patches)
