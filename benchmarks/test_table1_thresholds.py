"""E-T1: Table I — thresholds on janitor activity."""

from repro.evalsuite.runner import scaled_criteria
from repro.evalsuite.tables import table1
from repro.janitors.identify import JanitorCriteria


def test_table1_thresholds(benchmark, bench_corpus, record_artifact):
    data, text = benchmark(table1, scaled_criteria(bench_corpus))
    record_artifact("table1_thresholds", text)
    # the structural rule is Table I's, with the paper's exact
    # patch/list/maintainer floors
    assert data["# patches"] == ">= 10"
    assert data["# lists"] == ">= 3"
    assert data["# maintainer patches"] == "< 5%"


def test_table1_paper_constants():
    data, _ = table1(JanitorCriteria())
    assert data == {
        "# patches": ">= 10",
        "# subsystems": ">= 20",
        "# lists": ">= 3",
        "# maintainer patches": "< 5%",
    }
