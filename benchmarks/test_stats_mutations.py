"""E-S2: §V-B "Properties of mutations".

Paper targets: .c file instances need one mutation in 82% of cases and
at most three in 95%; .h instances 75% / 92%; janitor instances need
fewer (91%/98% and 84%/93%); at most 15 mutations suffice for janitor
instances.
"""

from repro.evalsuite.experiments import mutation_stats, render_mutation_stats


def test_stats_mutations(benchmark, bench_result, record_artifact):
    stats = benchmark(mutation_stats, bench_result)
    record_artifact("stats_mutations", render_mutation_stats(stats))

    assert stats["all_c"]["one_mutation"].fraction >= 0.70
    assert stats["all_c"]["at_most_three"].fraction >= 0.90
    assert stats["all_h"]["one_mutation"].fraction >= 0.60
    # janitor instances need no more mutations than the overall set
    assert stats["janitor_c"]["one_mutation"].fraction >= \
        stats["all_c"]["one_mutation"].fraction - 0.05
    # the paper's janitor bound: at most 15 mutations per file instance
    assert stats["janitor_c"]["max_mutations"] <= 15
    assert stats["janitor_h"]["max_mutations"] <= 15
