"""E-A4: mutation minimality (§III-B design choice).

JMake inserts one mutation per conditional group / per changed macro
rather than one per changed line, "to minimize the amount of code that
has to be studied". This ablation verifies the design on the bench
tree: grouped placement uses strictly fewer tokens while reaching the
same verdict on multi-line changes.
"""

from repro.core.mutation import MutationEngine
from repro.core.sourcemap import LineClass, SourceMap
from repro.kernel.generator import generate_tree


def per_line_mutation_count(path, text, changed):
    """The naive alternative: one token per changed non-comment line."""
    source_map = SourceMap(path, text)
    count = 0
    for lineno in changed:
        if lineno <= source_map.line_count() and \
                source_map.classify(lineno) is not LineClass.COMMENT:
            count += 1
    return count


def test_ablation_mutation_minimality(benchmark, record_artifact):
    tree = generate_tree()
    engine = MutationEngine()

    grouped_total = 0
    per_line_total = 0
    files = 0
    for path in tree.driver_files():
        text = tree.files[path]
        line_count = text.count("\n")
        if line_count < 12:
            continue
        # a broad change: every 4th line of the file body
        changed = list(range(8, line_count, 4))
        plan = benchmark.pedantic(engine.plan, args=(path, text, changed),
                                  iterations=1, rounds=1) \
            if files == 0 else engine.plan(path, text, changed)
        grouped_total += len(plan.mutations)
        per_line_total += per_line_mutation_count(path, text, changed)
        files += 1

    text = "\n".join([
        "Ablation E-A4: mutation minimality",
        f"  files analysed                 : {files}",
        f"  tokens, grouped placement      : {grouped_total}",
        f"  tokens, one-per-changed-line   : {per_line_total}",
        f"  reduction                      : "
        f"{1 - grouped_total / max(1, per_line_total):.0%}",
    ])
    record_artifact("ablation_mutation_minimality", text)

    assert files > 50
    assert grouped_total < per_line_total * 0.7
