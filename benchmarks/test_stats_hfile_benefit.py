"""E-S4: §V-B "Benefits of mutations for .h files".

Paper targets: 66% of .h instances (76% for janitors) are covered by
compiling the patch's own .c files; 33% need extra .c files; 16% are
ultimately fully covered with 1-11 extra compilations; 2% are never
covered; janitor instances need at most 3 extra compilations.
"""

from repro.evalsuite.experiments import (
    hfile_benefit_stats,
    render_hfile_benefit_stats,
)


def test_stats_hfile_benefit(benchmark, bench_result, record_artifact):
    stats = benchmark(hfile_benefit_stats, bench_result)
    record_artifact("stats_hfile_benefit",
                    render_hfile_benefit_stats(stats))

    all_sub = stats["all"]
    # the majority of .h instances come for free with the patch's .c
    assert all_sub["covered_by_patch_c_files"].fraction >= 0.40
    # the never-covered population is small (2% in the paper)
    assert all_sub["never_compiled"].fraction <= 0.25
    # rescued instances exist and take a bounded number of productive
    # compilations (1-11 in the paper's ideal-case accounting)
    assert all_sub["max_candidate_compilations"] <= 15
    # needing extra .c files is less common than free coverage
    assert all_sub["needed_extra_c_files"].fraction <= \
        all_sub["covered_by_patch_c_files"].fraction + 0.3
