"""Wall-clock benchmark of the content-addressed build cache.

Runs the same 200-commit evaluation window three times — uncached,
cached cold, and cached warm (same shared cache) — with `perf_counter`
around each, asserts the verdict surface is byte-identical throughout,
and records the cold/warm speedup in ``artifacts/perf_cache.txt``.

Simulated timings are untouched by design (the replay clock policy);
this file measures the *real* seconds the cache saves the machine
running the reproduction.
"""

import time

import pytest

from repro.buildcache.cache import BuildCache
from repro.evalsuite.runner import EvaluationRunner
from repro.workload.corpus import CorpusSpec, build_corpus

CACHE_BENCH_COMMITS = 200


@pytest.fixture(scope="module")
def cache_corpus():
    return build_corpus(CorpusSpec(
        seed="perf-cache-v1",
        history_commits=200,
        eval_commits=CACHE_BENCH_COMMITS,
        regular_developers=20,
    ))


def test_perf_cache_warm_speedup(cache_corpus, record_artifact):
    t0 = time.perf_counter()
    uncached = EvaluationRunner(cache_corpus, cache=False).run()
    t_uncached = time.perf_counter() - t0

    cache = BuildCache()
    t0 = time.perf_counter()
    cold = EvaluationRunner(cache_corpus, cache=cache).run()
    t_cold = time.perf_counter() - t0

    # best-of-two warm passes to keep the ratio robust to machine noise
    warm_times = []
    for _ in range(2):
        t0 = time.perf_counter()
        warm = EvaluationRunner(cache_corpus, cache=cache).run()
        warm_times.append(time.perf_counter() - t0)
    t_warm = min(warm_times)

    baseline = uncached.canonical_records()
    assert cold.canonical_records() == baseline
    assert warm.canonical_records() == baseline

    speedup_warm = t_uncached / t_warm
    speedup_cold = t_uncached / t_cold
    stats = warm.cache_stats
    lines = [
        f"commits evaluated        : {len(uncached.patches)} "
        f"(window of {CACHE_BENCH_COMMITS})",
        f"uncached wall clock      : {t_uncached:8.2f} s",
        f"cached cold wall clock   : {t_cold:8.2f} s   "
        f"({speedup_cold:.2f}x vs uncached)",
        f"cached warm wall clock   : {t_warm:8.2f} s   "
        f"({speedup_warm:.2f}x vs uncached)",
        f"warm preprocess hit rate : "
        f"{stats.kind('preprocess').hit_rate:8.1%}",
        f"warm object hit rate     : {stats.kind('object').hit_rate:8.1%}",
        f"warm config hit rate     : {stats.kind('config').hit_rate:8.1%}",
        f"artifact bytes served    : {stats.bytes_saved}",
        f"simulated seconds modeled: {stats.sim_seconds_saved:.1f}",
        "verdict surface          : byte-identical across all three runs",
    ]
    record_artifact("perf_cache", "\n".join(lines))

    assert speedup_warm >= 2.0, \
        f"warm cache speedup {speedup_warm:.2f}x below the 2x target"
