"""E-F5: Figure 5 — CDF of JMake's overall running time, all patches.

Paper targets: 82% of patches within 30 s, 95% within one minute,
with a long tail beyond 6000 s from whole-kernel-rebuild files.
"""

from repro.evalsuite.figures import describe_figure, figure5_overall


def test_fig5_overall_runtime(benchmark, bench_result, record_artifact):
    cdf = benchmark(figure5_overall, bench_result)
    record_artifact("fig5_overall_runtime", describe_figure(
        cdf, title="Fig 5: overall running time (all patches)",
        thresholds=[30.0, 60.0]))
    assert len(cdf) == len(bench_result.patches)
    assert 0.70 <= cdf.fraction_at_most(30.0) <= 0.97
    assert cdf.fraction_at_most(60.0) >= 0.88
    # knee ordering: most of the mass arrives before one minute
    assert cdf.fraction_at_most(60.0) > cdf.fraction_at_most(30.0)
    # long tail exists (hundreds of seconds or the >6000 s outlier)
    assert cdf.max > 100.0
