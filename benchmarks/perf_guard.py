"""CI throughput regression guard over the committed BENCH_* baselines.

Compares freshly measured ``benchmarks/artifacts/BENCH_*.json`` files
(written by ``test_perf_fastpath_speedup`` and
``test_perf_obs_throughput``) against the committed baselines
(``benchmarks/BENCH_substrate.json``, ``benchmarks/BENCH_obs.json``)
and fails when any guarded stage's throughput regressed by more than
the tolerance (default 20%).

Raw ops/sec are machine-dependent, so the comparison uses
``normalized_throughput`` — ops/sec divided by the run's own
calibration workload (``benchmarks/calibration.py``). That ratio
cancels interpreter and hardware speed, leaving only how much work the
code does per operation, which is exactly what a code change regresses.
The committed baselines store deliberately conservative values (75% of
a measured run; see ``--write-baseline``) so ordinary run-to-run noise
stays inside the tolerance while a real regression still trips it.

The substrate's headline speedups (fast vs reference pipeline, measured
in the same process) are ratios already and are compared directly.

``--baseline``/``--fresh`` are repeatable and paired by position, so
one invocation can guard several suites::

    python benchmarks/perf_guard.py \\
        --baseline benchmarks/BENCH_substrate.json \\
            --fresh benchmarks/artifacts/BENCH_substrate.json \\
        --baseline benchmarks/BENCH_obs.json \\
            --fresh benchmarks/artifacts/BENCH_obs.json

With no flags the guard defaults to the substrate pair alone (the
pre-existing CI contract).
"""

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent

#: per-suite guard configuration. ``stages`` lists the stage names whose
#: normalized throughput must not regress (reference stages measure the
#: disabled pipeline and are deliberately unguarded); ``speedups`` maps
#: stage -> hard speedup floor from the acceptance criteria.
SUITE_GUARDS = {
    "substrate": {
        "stages": (
            "strip_fastpath",
            "tokenize_fastpath",
            "expand_fastpath",
            "preprocess_driver_cold",
            "preprocess_driver_warm",
            "preprocess_tree_cold",
            "preprocess_tree_warm",
        ),
        "speedups": {"preprocess_driver_cold": 3.0,
                     "preprocess_driver_warm": 3.0},
    },
    "obs": {
        "stages": (
            "event_emit",
            "snapshot_sample",
            "render_openmetrics",
            "parse_openmetrics",
            "jsonl_emit",
        ),
        "speedups": {},
    },
    # the mp-over-asyncio speedup floor is core-count dependent, so it
    # is asserted (gated) inside test_perf_transport_throughput rather
    # than here; the guard holds each transport's absolute throughput
    "service": {
        "stages": (
            "service_asyncio_steady",
            "service_mp_steady",
        ),
        "speedups": {},
    },
}

#: payloads that predate the ``suite`` tag are substrate measurements
DEFAULT_SUITE = "substrate"


def _load(path: pathlib.Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"perf_guard: missing {path} "
                 f"(run the benchmarks/test_perf_* emitters first)")


def _stage_map(payload: dict) -> dict:
    return {stage["stage"]: stage for stage in payload["stages"]}


def _write_baseline(baseline_path: pathlib.Path,
                    fresh_path: pathlib.Path) -> None:
    payload = _load(fresh_path)
    for stage in payload["stages"]:
        stage["normalized_throughput"] = round(
            stage["normalized_throughput"] * 0.75, 6)
    payload["_note"] = ("baseline deflated to 75% of a measured run; "
                        "regenerate with perf_guard.py --write-baseline")
    baseline_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {baseline_path}")


def _guard_pair(baseline_path: pathlib.Path, fresh_path: pathlib.Path,
                tolerance: float) -> list:
    baseline_payload = _load(baseline_path)
    fresh_payload = _load(fresh_path)
    suite = fresh_payload.get("suite",
                              baseline_payload.get("suite", DEFAULT_SUITE))
    guards = SUITE_GUARDS.get(suite)
    if guards is None:
        return [f"{fresh_path}: unknown suite {suite!r} "
                f"(known: {', '.join(sorted(SUITE_GUARDS))})"]
    print(f"suite {suite}: {baseline_path} vs {fresh_path}")
    baseline = _stage_map(baseline_payload)
    fresh = _stage_map(fresh_payload)

    failures = []
    for name in guards["stages"]:
        if name not in baseline:
            continue  # baseline predates this stage; nothing to hold
        if name not in fresh:
            failures.append(f"{name}: missing from fresh measurement")
            continue
        want = baseline[name]["normalized_throughput"]
        got = fresh[name]["normalized_throughput"]
        floor = want * (1.0 - tolerance)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(f"{name:28} baseline={want:10.4f} fresh={got:10.4f} "
              f"floor={floor:10.4f}  {verdict}")
        if got < floor:
            failures.append(
                f"{name}: normalized throughput {got:.4f} fell below "
                f"{floor:.4f} ({(1 - got / want):.0%} drop, "
                f"tolerance {tolerance:.0%})")

    fresh_speedup = fresh_payload.get("speedup", {})
    for name, floor in guards["speedups"].items():
        got = fresh_speedup.get(name, 0.0)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(f"speedup {name:20} floor={floor:.1f}x fresh={got:.2f}x  "
              f"{verdict}")
        if got < floor:
            failures.append(f"speedup {name}: {got:.2f}x below the "
                            f"{floor:.1f}x acceptance floor")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", action="append", default=None,
                        type=pathlib.Path,
                        help="committed baseline JSON (repeatable; "
                             "paired with --fresh by position)")
    parser.add_argument("--fresh", action="append", default=None,
                        type=pathlib.Path,
                        help="freshly measured JSON (repeatable; "
                             "paired with --baseline by position)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop (default 0.20)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite each baseline from its fresh "
                             "measurement, deflated by 25%% to absorb "
                             "run-to-run noise")
    args = parser.parse_args(argv)

    baselines = args.baseline or [HERE / "BENCH_substrate.json"]
    fresh = args.fresh or [HERE / "artifacts" / "BENCH_substrate.json"]
    if len(baselines) != len(fresh):
        sys.exit(f"perf_guard: {len(baselines)} --baseline but "
                 f"{len(fresh)} --fresh (they pair by position)")

    if args.write_baseline:
        for baseline_path, fresh_path in zip(baselines, fresh):
            _write_baseline(baseline_path, fresh_path)
        return 0

    failures = []
    for index, (baseline_path, fresh_path) in \
            enumerate(zip(baselines, fresh)):
        if index:
            print()
        failures.extend(_guard_pair(baseline_path, fresh_path,
                                    args.tolerance))

    if failures:
        print("\nperf_guard: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf_guard: all throughput checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
