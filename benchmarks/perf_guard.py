"""CI throughput regression guard for the substrate fast path.

Compares a freshly measured ``benchmarks/artifacts/BENCH_substrate.json``
(written by ``test_perf_fastpath_speedup``) against the committed
baseline ``benchmarks/BENCH_substrate.json`` and fails when preprocess
throughput regressed by more than the tolerance (default 20%).

Raw ops/sec are machine-dependent, so the comparison uses
``normalized_throughput`` — ops/sec divided by the run's own
calibration workload (a fixed regex+string loop). That ratio cancels
interpreter and hardware speed, leaving only how much work the
substrate does per line, which is exactly what a code change regresses.
The committed baseline stores deliberately conservative values (75% of
a measured run; see ``--write-baseline``) so ordinary run-to-run noise
stays inside the tolerance while a real regression still trips it.

The headline speedups (fast vs reference pipeline, measured in the same
process) are ratios already and are compared directly.

Usage::

    python benchmarks/perf_guard.py [--baseline PATH] [--fresh PATH]
                                    [--tolerance 0.20]
"""

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent

#: stages whose normalized throughput must not regress; the *_reference
#: stages are deliberately excluded (they measure the disabled pipeline,
#: which a fast-path change legitimately leaves alone)
GUARDED_STAGES = (
    "strip_fastpath",
    "tokenize_fastpath",
    "expand_fastpath",
    "preprocess_driver_cold",
    "preprocess_driver_warm",
    "preprocess_tree_cold",
    "preprocess_tree_warm",
)

#: speedup ratios that must hold within tolerance of the baseline, and
#: the hard floors the ISSUE's acceptance criteria set
GUARDED_SPEEDUPS = {"preprocess_driver_cold": 3.0,
                    "preprocess_driver_warm": 3.0}


def _load(path: pathlib.Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"perf_guard: missing {path} "
                 f"(run benchmarks/test_perf_substrate.py first)")


def _stage_map(payload: dict) -> dict:
    return {stage["stage"]: stage for stage in payload["stages"]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        default=HERE / "BENCH_substrate.json",
                        type=pathlib.Path)
    parser.add_argument("--fresh",
                        default=HERE / "artifacts" / "BENCH_substrate.json",
                        type=pathlib.Path)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop (default 0.20)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from the fresh "
                             "measurement, deflated by 25%% to absorb "
                             "run-to-run noise")
    args = parser.parse_args(argv)

    if args.write_baseline:
        payload = _load(args.fresh)
        for stage in payload["stages"]:
            stage["normalized_throughput"] = round(
                stage["normalized_throughput"] * 0.75, 6)
        payload["_note"] = ("baseline deflated to 75% of a measured run; "
                            "regenerate with perf_guard.py --write-baseline")
        args.baseline.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {args.baseline}")
        return 0

    baseline = _stage_map(_load(args.baseline))
    fresh = _stage_map(_load(args.fresh))
    fresh_speedup = _load(args.fresh)["speedup"]

    failures = []
    for name in GUARDED_STAGES:
        if name not in baseline:
            continue  # baseline predates this stage; nothing to hold
        if name not in fresh:
            failures.append(f"{name}: missing from fresh measurement")
            continue
        want = baseline[name]["normalized_throughput"]
        got = fresh[name]["normalized_throughput"]
        floor = want * (1.0 - args.tolerance)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(f"{name:28} baseline={want:10.4f} fresh={got:10.4f} "
              f"floor={floor:10.4f}  {verdict}")
        if got < floor:
            failures.append(
                f"{name}: normalized throughput {got:.4f} fell below "
                f"{floor:.4f} ({(1 - got / want):.0%} drop, "
                f"tolerance {args.tolerance:.0%})")

    for name, floor in GUARDED_SPEEDUPS.items():
        got = fresh_speedup.get(name, 0.0)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(f"speedup {name:20} floor={floor:.1f}x fresh={got:.2f}x  "
              f"{verdict}")
        if got < floor:
            failures.append(f"speedup {name}: {got:.2f}x below the "
                            f"{floor:.1f}x acceptance floor")

    if failures:
        print("\nperf_guard: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf_guard: all throughput checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
