"""E-A2: the .h candidate-file cap (§III-E).

Beyond 100 candidate .c files JMake restricts itself to allyesconfig,
"at a small risk of false positives" (23 of 21012 file instances in the
paper). The ablation compares a tiny cap (forcing allyesconfig-only for
every fan-out header) against the default, counting headers whose
verdict degrades — plus the invocation savings that motivate the cap.
"""

import pytest

from repro.core.jmake import JMakeOptions
from repro.core.report import FileStatus
from repro.evalsuite.runner import EvaluationRunner

LIMIT = 160


def run_with_cap(corpus, cap):
    runner = EvaluationRunner(
        corpus, options=JMakeOptions(hfile_candidate_cap=cap))
    return runner.run(limit=LIMIT)


def h_verdicts(result):
    return {(record.commit_id, record.path): record.status
            for record in result.file_instances(suffix=".h")}


def test_ablation_hfile_cap(benchmark, bench_corpus, record_artifact):
    default = run_with_cap(bench_corpus, 100)
    tiny = benchmark.pedantic(run_with_cap, args=(bench_corpus, 0),
                              iterations=1, rounds=1)

    default_verdicts = h_verdicts(default)
    tiny_verdicts = h_verdicts(tiny)
    degraded = [key for key, status in default_verdicts.items()
                if status is FileStatus.OK
                and tiny_verdicts.get(key) is not FileStatus.OK]
    default_invocations = sum(p.invocation_counts.get("make_i", 0)
                              for p in default.patches)
    tiny_invocations = sum(p.invocation_counts.get("make_i", 0)
                           for p in tiny.patches)
    total_h = len(default_verdicts)
    text = "\n".join([
        "Ablation E-A2: .h candidate cap",
        f"  .h file instances                    : {total_h}",
        f"  verdicts degraded by allyes-only cap : {len(degraded)}",
        f"  make_i invocations (cap=100)         : {default_invocations}",
        f"  make_i invocations (cap=0)           : {tiny_invocations}",
    ])
    record_artifact("ablation_hfile_cap", text)

    # false positives are rare (23 of 21012 in the paper)
    assert len(degraded) <= max(2, total_h * 0.2)
    # verdict keys line up between runs
    assert set(default_verdicts) == set(tiny_verdicts)
