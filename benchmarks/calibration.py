"""Shared machine-speed calibration for the wall-clock benchmarks.

Raw ops/sec are machine-dependent; every benchmark that emits a
machine-readable ``BENCH_*.json`` divides its measured throughput by
:func:`calibrate` — a fixed regex+string workload that tracks raw
interpreter speed but uses none of the library's caches. The resulting
``normalized_throughput`` transfers across machines, which is what lets
``perf_guard.py`` hold a committed baseline against CI runners of
unknown speed.

One module so the substrate and observability benchmarks (and any
future ``BENCH_*`` emitter) normalize by the *same* unit — two local
copies would silently drift and make their baselines incomparable.
"""

import re
import time

_CALIBRATION_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|[0-9]+|\S")
_CALIBRATION_TEXT = " ".join(
    f"token_{i} CONFIG_OPTION_{i % 7} += {i};" for i in range(400))


def calibrate() -> float:
    """Fixed regex+string workload: this machine's ops/sec unit.

    Uses the same primitives the substrate leans on (regex scanning,
    string slicing) but none of its caches, so the value tracks raw
    interpreter speed. Dividing measured throughput by it makes a
    committed baseline portable across machines.
    """
    rounds = 30
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(rounds):
            pieces = [match.group()
                      for match in _CALIBRATION_RE.finditer(_CALIBRATION_TEXT)]
            "".join(pieces)
        best = min(best, time.perf_counter() - start)
    return rounds / best


def time_best(fn, repeats: int = 5) -> float:
    """Best-of-N wall clock of ``fn()`` (repeats=1 for cold paths)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def stage(name: str, ops: int, seconds: float,
          calibration: float) -> dict:
    """One ``stages[]`` record of a ``BENCH_*.json`` payload."""
    return {
        "stage": name,
        "ops": ops,
        "wall_clock_s": round(seconds, 6),
        "ops_per_sec": round(ops / seconds, 2),
        "normalized_throughput": round(ops / seconds / calibration, 6),
    }
