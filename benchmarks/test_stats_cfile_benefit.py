"""E-S3: §V-B "Benefits of mutations for .c files".

Paper targets: 88% of .c file instances have all changed lines
subjected to the compiler at the first error-free compilation; 3% are
the insidious case (clean allyesconfig build that misses lines); a
minority of those (54 of 415) are rescued by additional architectures;
for janitors, none of the insidious instances could be rescued by the
tried configurations.
"""

from repro.evalsuite.experiments import (
    cfile_benefit_stats,
    render_cfile_benefit_stats,
)


def test_stats_cfile_benefit(benchmark, bench_result, record_artifact):
    stats = benchmark(cfile_benefit_stats, bench_result)
    record_artifact("stats_cfile_benefit",
                    render_cfile_benefit_stats(stats))

    for who in ("all", "janitor"):
        sub = stats[who]
        # the common case clearly dominates
        assert sub["confirmed_first_compile"].fraction >= 0.80
        # the insidious case exists but is a few percent
        assert 0.0 < sub["insidious"].fraction <= 0.12
    # rescues are a minority of insidious instances (54/415 in paper)
    all_sub = stats["all"]
    assert all_sub["rescued_by_other_configs"] <= \
        all_sub["never_rescued"] + all_sub["rescued_by_other_configs"]
    assert all_sub["never_rescued"] >= all_sub["rescued_by_other_configs"]
