"""E-S1: §V-B "Choice of architecture".

Paper targets: 96% (all) / 95% (janitor) of covered file instances
benefit from x86_64; arm is the next most frequently beneficial; a
small population (365 .c / 75 .h instances) benefits only from non-host
architectures; allyesconfig alone certifies 84% of patches and the
configs/ defconfigs add one more point (85%).
"""

from repro.evalsuite.experiments import (
    architecture_stats,
    render_architecture_stats,
)


def test_stats_architecture(benchmark, bench_result, record_artifact):
    stats = benchmark(architecture_stats, bench_result)
    record_artifact("stats_architecture",
                    render_architecture_stats(stats))

    for who in ("all", "janitor"):
        sub = stats[who]
        # the host architecture dominates, as in the paper (96%/95%)
        assert sub["x86_64_beneficial"].fraction >= 0.80
        # but a real minority population needs cross-compilation
        assert sub["non_host_only_c_instances"] > 0 or who == "janitor"
    # the non-host population is small relative to the total
    all_sub = stats["all"]
    assert all_sub["non_host_only_c_instances"] < \
        all_sub["instances_with_coverage"] * 0.2
    # some other architecture is beneficial for someone
    assert stats["all"]["other_arch_frequency"]
    # defconfigs contribute a small extra increment (the 84% -> 85%)
    assert 0 <= stats["certified_needing_defconfig"] < \
        stats["certified_patches"].count * 0.15
