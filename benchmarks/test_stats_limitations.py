"""E-S6: §V-D "Limitations" — bootstrap files JMake cannot treat.

Paper: 317 patches (2% of the total) touch the 411 file instances the
kernel Makefile compiles during its own setup; these cannot be mutated.
"""

from repro.core.report import FileStatus
from repro.evalsuite.experiments import (
    limitation_stats,
    render_limitation_stats,
)


def test_stats_limitations(benchmark, bench_result, record_artifact):
    stats = benchmark(limitation_stats, bench_result)
    record_artifact("stats_limitations", render_limitation_stats(stats))

    assert stats["untreatable_file_instances"] >= 1
    # about 2% of patches in the paper; allow 0.5%..8% at our scale
    fraction = stats["affected_patches"].fraction
    assert 0.002 <= fraction <= 0.08


def test_bootstrap_verdict_is_distinct(bench_result):
    statuses = {record.status
                for record in bench_result.file_instances()}
    assert FileStatus.BOOTSTRAP_UNTREATABLE in statuses
