"""E-F6: Figure 6 — overall running time on janitor patches.

Paper: "the curve has the same shape as Figure 5 ... but does not
contain the highest values"; over 90% of janitor patches take less than
a minute; the longest janitor run is ~1080 s vs >6000 s overall.
"""

from repro.evalsuite.figures import (
    describe_figure,
    figure5_overall,
    figure6_janitor_overall,
)


def test_fig6_janitor_runtime(benchmark, bench_result, record_artifact):
    cdf = benchmark(figure6_janitor_overall, bench_result)
    record_artifact("fig6_janitor_runtime", describe_figure(
        cdf, title="Fig 6: overall running time (janitor patches)",
        thresholds=[30.0, 60.0, 1080.0]))
    all_cdf = figure5_overall(bench_result)

    assert 0 < len(cdf) < len(all_cdf)
    # same shape: the sub-minute mass tracks the overall curve
    assert abs(cdf.fraction_at_most(60.0)
               - all_cdf.fraction_at_most(60.0)) < 0.12
    assert cdf.fraction_at_most(60.0) >= 0.85
    # janitor tail does not exceed the overall tail
    assert cdf.max <= all_cdf.max
