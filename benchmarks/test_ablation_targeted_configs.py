"""E-A5: the §VII targeted-configuration extension.

"JMake could be complemented with more sophisticated configuration
generation techniques, as presented in Section VI, to obtain better
results in such cases" — the cases being #ifndef/#else and choice-bound
code that allyesconfig can never reach. This ablation runs the same
window with and without the Vampyr/Troll-style generator and counts the
recovered Table IV rows.
"""

import pytest

from repro.core.jmake import JMakeOptions
from repro.core.report import FileStatus
from repro.evalsuite.runner import EvaluationRunner
from repro.kernel.layout import HazardKind

LIMIT = 160

#: hazard kinds a covering configuration can in principle reach
RESCUABLE = {HazardKind.CHOICE_UNSET, HazardKind.IFNDEF,
             HazardKind.IFDEF_AND_ELSE}
#: kinds no configuration can reach
HOPELESS = {HazardKind.NEVER_SET, HazardKind.IF_ZERO,
            HazardKind.UNUSED_MACRO}


def run(corpus, extended):
    runner = EvaluationRunner(
        corpus, options=JMakeOptions(use_targeted_configs=extended))
    return runner.run(limit=LIMIT)


def failures_by_kind(result, kinds):
    count = 0
    for record in result.file_instances():
        if record.status is not FileStatus.LINES_NOT_COMPILED:
            continue
        if set(record.hazard_kinds) & kinds:
            count += 1
    return count


def test_ablation_targeted_configs(benchmark, bench_corpus,
                                   record_artifact):
    baseline = run(bench_corpus, False)
    extended = benchmark.pedantic(run, args=(bench_corpus, True),
                                  iterations=1, rounds=1)

    base_rescuable = failures_by_kind(baseline, RESCUABLE)
    ext_rescuable = failures_by_kind(extended, RESCUABLE)
    base_hopeless = failures_by_kind(baseline, HOPELESS)
    ext_hopeless = failures_by_kind(extended, HOPELESS)
    base_certified = sum(1 for p in baseline.patches if p.certified)
    ext_certified = sum(1 for p in extended.patches if p.certified)

    text = "\n".join([
        "Ablation E-A5: targeted covering configurations",
        f"  rescuable failures (choice/ifndef/else), baseline : "
        f"{base_rescuable}",
        f"  rescuable failures, + targeted configs            : "
        f"{ext_rescuable}",
        f"  hopeless failures (never-set/#if 0/unused), before: "
        f"{base_hopeless}",
        f"  hopeless failures, after                          : "
        f"{ext_hopeless}",
        f"  certified patches: {base_certified} -> {ext_certified} "
        f"of {len(baseline.patches)}",
    ])
    record_artifact("ablation_targeted_configs", text)

    # the extension recovers the configuration-reachable categories...
    assert ext_rescuable <= base_rescuable
    if base_rescuable:
        assert ext_rescuable < base_rescuable
    # ...while the genuinely dead categories stay failed
    assert ext_hopeless == base_hopeless
    assert ext_certified >= base_certified
