"""E-T2: Table II — the identified janitors and their metrics."""

from repro.evalsuite.runner import scaled_criteria
from repro.evalsuite.tables import table2
from repro.janitors.identify import JanitorFinder
from repro.workload.corpus import Corpus
from repro.workload.personas import PersonaKind


def identify(corpus):
    finder = JanitorFinder(corpus.repository, corpus.tree.maintainers,
                           criteria=scaled_criteria(corpus))
    return finder.identify(
        history_since=None, history_until=Corpus.TAG_EVAL_END,
        eval_since=Corpus.TAG_EVAL_START,
        eval_until=Corpus.TAG_EVAL_END)


def test_table2_janitors(benchmark, bench_corpus, record_artifact):
    ranked = benchmark(identify, bench_corpus)
    tool_users = {p.name for p in bench_corpus.roster if p.tool_user}
    interns = {p.name for p in bench_corpus.roster if p.intern}
    data, text = table2(ranked, tool_users=tool_users, interns=interns)
    record_artifact("table2_janitors", text)

    assert ranked, "identification must produce rows"
    # ranking ascending by file cv, as in the paper's table
    cvs = [dev.file_cv for dev in ranked]
    assert cvs == sorted(cvs)
    # all rows respect the maintainer-share threshold
    assert all(dev.maintainer_share < 0.05 for dev in ranked)
    # the ranking recovers the ground-truth janitor personas
    truth = {p.name for p in bench_corpus.roster
             if p.kind is PersonaKind.JANITOR}
    recovered = sum(1 for dev in ranked if dev.name in truth)
    assert recovered >= len(ranked) * 0.8
