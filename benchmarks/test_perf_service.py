"""Wall-clock benchmark: cross-request batching vs per-request dispatch.

Per-request dispatch is how a naive bot would run JMake: every incoming
request gets its own session and its own private build cache, so each
of them re-solves the same Kconfig models and configurations. The
check service instead shares one cache across requests and coalesces
preprocess units, so at steady state a batch of concurrent requests
rides work its predecessors already paid for.

The acceptance bar (ISSUE 4): the steady-state service must clear
1.5x the per-request-dispatch throughput at 8 concurrent requests.
Simulated timings and verdicts are byte-identical either way — only
the real seconds change.
"""

import time

import pytest

from repro.buildcache.cache import BuildCache
from repro.core.changes import extract_changed_files
from repro.core.jmake import CheckSession
from repro.service import CheckService, ServiceConfig
from repro.workload.corpus import Corpus

CONCURRENT_REQUESTS = 8
SPEEDUP_FLOOR = 1.5


@pytest.fixture(scope="module")
def request_batch(bench_corpus):
    repository = bench_corpus.repository
    commits = repository.log(since=Corpus.TAG_EVAL_START,
                             until=Corpus.TAG_EVAL_END)
    checkable = [commit for commit in commits
                 if extract_changed_files(repository.show(commit))]
    return checkable[:CONCURRENT_REQUESTS]


def test_perf_service_batching_speedup(bench_corpus, request_batch,
                                       record_artifact):
    commit_ids = [commit.id for commit in request_batch]

    # per-request dispatch: a fresh session + private cache per request
    t0 = time.perf_counter()
    dispatch_reports = []
    for commit in request_batch:
        session = CheckSession.from_generated_tree(
            bench_corpus.tree, cache=BuildCache())
        dispatch_reports.append(
            session.check_commit(bench_corpus.repository, commit))
    t_dispatch = time.perf_counter() - t0

    # the service: shared cache + cross-request batching; one warmup
    # batch models the long-lived steady state, the second is timed
    service = CheckService(bench_corpus,
                           config=ServiceConfig(shards=2),
                           cache=BuildCache())
    service.check_commits(commit_ids)
    t0 = time.perf_counter()
    service_results = service.check_commits(commit_ids)
    t_service = time.perf_counter() - t0

    for report, result in zip(dispatch_reports, service_results):
        assert result.record == report.to_dict()

    speedup = t_dispatch / t_service
    record_artifact("perf_service", "\n".join([
        f"concurrent requests:     {CONCURRENT_REQUESTS}",
        f"per-request dispatch:    {t_dispatch:.3f}s",
        f"service (steady state):  {t_service:.3f}s",
        f"throughput speedup:      {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x)",
    ]))
    assert speedup >= SPEEDUP_FLOOR, (
        f"service throughput {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x acceptance floor")
