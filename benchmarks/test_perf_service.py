"""Wall-clock benchmark: cross-request batching vs per-request dispatch.

Per-request dispatch is how a naive bot would run JMake: every incoming
request gets its own session and its own private build cache, so each
of them re-solves the same Kconfig models and configurations. The
check service instead shares one cache across requests and coalesces
preprocess units, so at steady state a batch of concurrent requests
rides work its predecessors already paid for.

The acceptance bar (ISSUE 4): the steady-state service must clear
1.5x the per-request-dispatch throughput at 8 concurrent requests.
Simulated timings and verdicts are byte-identical either way — only
the real seconds change.
"""

import asyncio
import json
import os
import time

import pytest

from benchmarks.calibration import calibrate, stage
from repro.buildcache.cache import BuildCache
from repro.core.changes import extract_changed_files
from repro.core.jmake import CheckSession
from repro.service import (
    CheckRequest,
    CheckService,
    ServiceConfig,
)
from repro.workload.corpus import Corpus

CONCURRENT_REQUESTS = 8
SPEEDUP_FLOOR = 1.5

#: transport steady-state comparison (ISSUE 8): jobs per transport and
#: the mp-over-asyncio acceptance floor, which only binds on machines
#: with enough cores to actually run the workers in parallel
TRANSPORT_JOBS = 4
MP_SPEEDUP_FLOOR = 2.5
TRANSPORT_COMMITS = 24


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def request_batch(bench_corpus):
    repository = bench_corpus.repository
    commits = repository.log(since=Corpus.TAG_EVAL_START,
                             until=Corpus.TAG_EVAL_END)
    checkable = [commit for commit in commits
                 if extract_changed_files(repository.show(commit))]
    return checkable[:CONCURRENT_REQUESTS]


def test_perf_service_batching_speedup(bench_corpus, request_batch,
                                       record_artifact):
    commit_ids = [commit.id for commit in request_batch]

    # per-request dispatch: a fresh session + private cache per request
    t0 = time.perf_counter()
    dispatch_reports = []
    for commit in request_batch:
        session = CheckSession.from_generated_tree(
            bench_corpus.tree, cache=BuildCache())
        dispatch_reports.append(
            session.check_commit(bench_corpus.repository, commit))
    t_dispatch = time.perf_counter() - t0

    # the service: shared cache + cross-request batching; one warmup
    # batch models the long-lived steady state, the second is timed
    service = CheckService(bench_corpus,
                           config=ServiceConfig(shards=2),
                           cache=BuildCache())
    service.check_commits(commit_ids)
    t0 = time.perf_counter()
    service_results = service.check_commits(commit_ids)
    t_service = time.perf_counter() - t0

    for report, result in zip(dispatch_reports, service_results):
        assert result.record == report.to_dict()

    speedup = t_dispatch / t_service
    record_artifact("perf_service", "\n".join([
        f"concurrent requests:     {CONCURRENT_REQUESTS}",
        f"per-request dispatch:    {t_dispatch:.3f}s",
        f"service (steady state):  {t_service:.3f}s",
        f"throughput speedup:      {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x)",
    ]))
    assert speedup >= SPEEDUP_FLOOR, (
        f"service throughput {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x acceptance floor")


# -- transport steady-state throughput (BENCH_service.json) -----------------


@pytest.fixture(scope="module")
def transport_batch(bench_corpus):
    repository = bench_corpus.repository
    commits = repository.log(since=Corpus.TAG_EVAL_START,
                             until=Corpus.TAG_EVAL_END)
    checkable = [commit for commit in commits
                 if extract_changed_files(repository.show(commit))]
    return checkable[:TRANSPORT_COMMITS]


def _steady_state_run(corpus, commit_ids, transport):
    """Warm-up batch, then a timed batch on the same live workers.

    The service is started once and drained once, so the timed batch
    hits warm workers: mp children have primed their caches during the
    warm-up, matching the long-lived serve-mode steady state.
    """

    async def main():
        service = CheckService(
            corpus, config=ServiceConfig(transport=transport,
                                         jobs=TRANSPORT_JOBS))
        await service.start()
        try:
            async def batch():
                return await asyncio.gather(*[
                    service.submit(CheckRequest(commit_id=commit_id))
                    for commit_id in commit_ids])

            await batch()                      # warm-up
            t0 = time.perf_counter()
            results = await batch()            # steady state
            elapsed = time.perf_counter() - t0
        finally:
            await service.drain()
        return results, elapsed

    return asyncio.run(main())


def test_perf_transport_throughput(bench_corpus, transport_batch,
                                   artifacts_dir, record_artifact):
    """mp steady-state throughput vs asyncio; emits BENCH_service.json.

    The acceptance bar (ISSUE 8): at ``--jobs 4`` the warm
    multiprocessing pool must clear 2.5x the asyncio transport's
    steady-state throughput. That bar measures real parallelism, so it
    only binds where 4 workers can actually run concurrently; on
    smaller machines the benchmark still runs, records the artifact,
    and pins byte-identity, but skips the floor assertion.
    """
    commit_ids = [commit.id for commit in transport_batch]
    cores = _usable_cores()

    asyncio_results, t_asyncio = _steady_state_run(
        bench_corpus, commit_ids, "asyncio")
    mp_results, t_mp = _steady_state_run(
        bench_corpus, commit_ids, "mp")

    # substrate is pure scheduling: the records must not drift
    assert [result.record for result in mp_results] == \
        [result.record for result in asyncio_results]

    speedup = t_asyncio / t_mp
    calibration = calibrate()
    stages = [
        stage("service_asyncio_steady", len(commit_ids), t_asyncio,
              calibration),
        stage("service_mp_steady", len(commit_ids), t_mp, calibration),
    ]
    payload = {
        "suite": "service",
        "calibration_ops_per_sec": round(calibration, 2),
        "jobs": TRANSPORT_JOBS,
        "usable_cores": cores,
        "stages": stages,
        "speedup": {"mp_over_asyncio": round(speedup, 2)},
    }
    out = artifacts_dir / "BENCH_service.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    record_artifact("perf_transports", "\n".join([
        f"commits per batch:       {len(commit_ids)}",
        f"jobs per transport:      {TRANSPORT_JOBS}",
        f"usable cores:            {cores}",
        f"asyncio (steady state):  {t_asyncio:.3f}s",
        f"mp (steady state):       {t_mp:.3f}s",
        f"mp/asyncio speedup:      {speedup:.2f}x "
        f"(floor {MP_SPEEDUP_FLOOR}x on >= {TRANSPORT_JOBS} cores)",
        "records:                 byte-identical across transports",
    ]))

    if cores >= TRANSPORT_JOBS:
        assert speedup >= MP_SPEEDUP_FLOOR, (
            f"mp transport {speedup:.2f}x below the "
            f"{MP_SPEEDUP_FLOOR}x acceptance floor at "
            f"--jobs {TRANSPORT_JOBS}")
