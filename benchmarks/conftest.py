"""Shared benchmark fixtures: one corpus, one evaluation run per session.

Every benchmark regenerates a specific table/figure of the paper from
the same evaluation result (matching how the paper derives all of §V
from one run over the v4.3..v4.4 window) and records its artifact under
``benchmarks/artifacts/`` for EXPERIMENTS.md.

Corpus scale is controlled by the JMAKE_BENCH_COMMITS environment
variable (default 800 evaluation commits — a 16x scale-down from the
paper's 12,946, keeping the whole bench suite in tens of seconds).
"""

import os
import pathlib

import pytest

from repro.evalsuite.runner import EvaluationRunner
from repro.workload.corpus import CorpusSpec, build_corpus

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"

BENCH_COMMITS = int(os.environ.get("JMAKE_BENCH_COMMITS", "800"))
BENCH_SEED = os.environ.get("JMAKE_BENCH_SEED", "jmake-bench-v1")


@pytest.fixture(scope="session")
def bench_corpus():
    return build_corpus(CorpusSpec(
        seed=BENCH_SEED,
        history_commits=max(400, BENCH_COMMITS // 2),
        eval_commits=BENCH_COMMITS,
        regular_developers=30,
    ))


@pytest.fixture(scope="session")
def bench_result(bench_corpus):
    return EvaluationRunner(bench_corpus).run()


@pytest.fixture(scope="session")
def artifacts_dir():
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


@pytest.fixture
def record_artifact(artifacts_dir):
    def write(name: str, text: str) -> None:
        (artifacts_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n--- {name} ---\n{text}")
    return write
