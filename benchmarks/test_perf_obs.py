"""Wall-clock benchmark of the observability layer's overhead.

Two claims get measured on the same 200-commit window the cache
benchmark uses:

1. **Disabled instrumentation is free.** With observability off the
   pipeline holds the null tracer/registry, so every instrumentation
   site costs an attribute lookup plus a no-op ``with`` block. The
   benchmark runs the window instrumented-but-disabled against the
   acceptance bound (< 5% over the fastest pass) and records a
   per-null-span microbenchmark alongside.

2. **Enabling observability never changes the science.** The observed
   run's verdict surface (``canonical_records`` — every verdict, status
   and simulated duration) must be byte-identical to the unobserved
   run's.
"""

import time

import pytest

from repro.evalsuite.runner import EvaluationRunner
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.workload.corpus import CorpusSpec, build_corpus

OBS_BENCH_COMMITS = 200

#: acceptance bound: disabled instrumentation adds < 5% wall clock
MAX_NULL_OVERHEAD = 0.05

#: iterations for the per-null-span microbenchmark
_MICRO_SPANS = 200_000


@pytest.fixture(scope="module")
def obs_corpus():
    return build_corpus(CorpusSpec(
        seed="perf-obs-v1",
        history_commits=200,
        eval_commits=OBS_BENCH_COMMITS,
        regular_developers=20,
    ))


def _timed_run(corpus, observe):
    t0 = time.perf_counter()
    result = EvaluationRunner(corpus, cache=False, observe=observe).run()
    return result, time.perf_counter() - t0


def test_perf_null_tracer_overhead(obs_corpus, record_artifact):
    # interleave repetitions so drift hits both variants equally
    plain_times, observed_times = [], []
    baseline = None
    observed_records = None
    for _ in range(3):
        plain, t_plain = _timed_run(obs_corpus, observe=False)
        observed, t_observed = _timed_run(obs_corpus, observe=True)
        plain_times.append(t_plain)
        observed_times.append(t_observed)
        if baseline is None:
            baseline = plain.canonical_records()
            observed_records = observed.canonical_records()
        assert plain.span_trees is None

    # byte-identical verdicts whether or not the run was observed
    assert observed_records == baseline

    t_plain = min(plain_times)
    t_observed = min(observed_times)

    # the plain run IS the instrumented pipeline holding null objects;
    # its overhead vs a hypothetical uninstrumented build is bounded by
    # span volume x per-null-span cost, measured directly:
    t0 = time.perf_counter()
    for _ in range(_MICRO_SPANS):
        with NULL_TRACER.span("bench.noop", path="x"):
            pass
    per_null_span = (time.perf_counter() - t0) / _MICRO_SPANS

    spans_per_commit = _spans_per_commit(observed)
    total_spans = int(spans_per_commit * len(plain.patches))
    modeled_overhead = total_spans * per_null_span
    overhead_fraction = modeled_overhead / t_plain

    lines = [
        f"commits evaluated         : {len(plain.patches)} "
        f"(window of {OBS_BENCH_COMMITS})",
        f"unobserved wall clock     : {t_plain:8.2f} s (best of 3)",
        f"observed wall clock       : {t_observed:8.2f} s (best of 3)",
        f"observed/unobserved ratio : {t_observed / t_plain:8.2f}x",
        f"spans per commit (mean)   : {spans_per_commit:8.1f}",
        f"null span cost            : {per_null_span * 1e9:8.1f} ns",
        f"modeled null overhead     : {overhead_fraction:8.2%} "
        f"(bound {MAX_NULL_OVERHEAD:.0%})",
        "verdict surface           : byte-identical observed vs not",
    ]
    record_artifact("perf_obs", "\n".join(lines))

    assert overhead_fraction < MAX_NULL_OVERHEAD, \
        f"null instrumentation overhead {overhead_fraction:.2%} " \
        f"exceeds the {MAX_NULL_OVERHEAD:.0%} bound"


def _spans_per_commit(observed) -> float:
    from repro.obs.export import span_count
    trees = observed.span_trees
    return sum(span_count(tree) for tree in trees) / len(trees)


def test_perf_null_span_faster_than_real_span():
    """Sanity anchor: the null path must beat the recording path."""
    def cost(tracer, n=50_000):
        t0 = time.perf_counter()
        for _ in range(n):
            with tracer.span("bench.noop", path="x"):
                pass
        return (time.perf_counter() - t0) / n

    null_cost = cost(NULL_TRACER)
    real_cost = cost(Tracer())
    assert null_cost < real_cost
