"""Wall-clock benchmark of the observability layer's overhead.

Two claims get measured on the same 200-commit window the cache
benchmark uses:

1. **Disabled instrumentation is free.** With observability off the
   pipeline holds the null tracer/registry, so every instrumentation
   site costs an attribute lookup plus a no-op ``with`` block. The
   benchmark runs the window instrumented-but-disabled against the
   acceptance bound (< 5% over the fastest pass) and records a
   per-null-span microbenchmark alongside.

2. **Enabling observability never changes the science.** The observed
   run's verdict surface (``canonical_records`` — every verdict, status
   and simulated duration) must be byte-identical to the unobserved
   run's.
"""

import json
import time

import pytest

from benchmarks.calibration import calibrate, stage, time_best
from repro.evalsuite.runner import EvaluationRunner
from repro.obs.events import NULL_EVENTS, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import (
    JsonlSink,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.timeseries import Snapshotter
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.workload.corpus import CorpusSpec, build_corpus

OBS_BENCH_COMMITS = 200

#: acceptance bound: disabled instrumentation adds < 5% wall clock
MAX_NULL_OVERHEAD = 0.05

#: iterations for the per-null-span microbenchmark
_MICRO_SPANS = 200_000


@pytest.fixture(scope="module")
def obs_corpus():
    return build_corpus(CorpusSpec(
        seed="perf-obs-v1",
        history_commits=200,
        eval_commits=OBS_BENCH_COMMITS,
        regular_developers=20,
    ))


def _timed_run(corpus, observe):
    t0 = time.perf_counter()
    result = EvaluationRunner(corpus, cache=False, observe=observe).run()
    return result, time.perf_counter() - t0


def test_perf_null_tracer_overhead(obs_corpus, record_artifact):
    # interleave repetitions so drift hits both variants equally
    plain_times, observed_times = [], []
    baseline = None
    observed_records = None
    for _ in range(3):
        plain, t_plain = _timed_run(obs_corpus, observe=False)
        observed, t_observed = _timed_run(obs_corpus, observe=True)
        plain_times.append(t_plain)
        observed_times.append(t_observed)
        if baseline is None:
            baseline = plain.canonical_records()
            observed_records = observed.canonical_records()
        assert plain.span_trees is None

    # byte-identical verdicts whether or not the run was observed
    assert observed_records == baseline

    t_plain = min(plain_times)
    t_observed = min(observed_times)

    # the plain run IS the instrumented pipeline holding null objects;
    # its overhead vs a hypothetical uninstrumented build is bounded by
    # span volume x per-null-span cost, measured directly:
    t0 = time.perf_counter()
    for _ in range(_MICRO_SPANS):
        with NULL_TRACER.span("bench.noop", path="x"):
            pass
    per_null_span = (time.perf_counter() - t0) / _MICRO_SPANS

    spans_per_commit = _spans_per_commit(observed)
    total_spans = int(spans_per_commit * len(plain.patches))
    modeled_overhead = total_spans * per_null_span
    overhead_fraction = modeled_overhead / t_plain

    lines = [
        f"commits evaluated         : {len(plain.patches)} "
        f"(window of {OBS_BENCH_COMMITS})",
        f"unobserved wall clock     : {t_plain:8.2f} s (best of 3)",
        f"observed wall clock       : {t_observed:8.2f} s (best of 3)",
        f"observed/unobserved ratio : {t_observed / t_plain:8.2f}x",
        f"spans per commit (mean)   : {spans_per_commit:8.1f}",
        f"null span cost            : {per_null_span * 1e9:8.1f} ns",
        f"modeled null overhead     : {overhead_fraction:8.2%} "
        f"(bound {MAX_NULL_OVERHEAD:.0%})",
        "verdict surface           : byte-identical observed vs not",
    ]
    record_artifact("perf_obs", "\n".join(lines))

    assert overhead_fraction < MAX_NULL_OVERHEAD, \
        f"null instrumentation overhead {overhead_fraction:.2%} " \
        f"exceeds the {MAX_NULL_OVERHEAD:.0%} bound"


def _spans_per_commit(observed) -> float:
    from repro.obs.export import span_count
    trees = observed.span_trees
    return sum(span_count(tree) for tree in trees) / len(trees)


# -- the telemetry-plane throughput benchmark (BENCH_obs.json) --------------

_EVENT_OPS = 20_000
_SNAPSHOT_OPS = 200
_CODEC_OPS = 200
_JSONL_OPS = 5_000


def _service_like_registry() -> MetricsRegistry:
    """A registry shaped like a warm service's (the snapshot workload)."""
    registry = MetricsRegistry()
    for index in range(40):
        registry.counter(f"service.stage.{index % 8}.metric_{index}") \
            .inc(index)
    for index in range(10):
        registry.gauge(f"service.shard.{index % 4}.gauge_{index}") \
            .set(index)
    for index in range(5):
        histogram = registry.histogram(f"service.latency_{index}")
        for value in range(100):
            histogram.observe(value * 0.9)
    return registry


def test_perf_obs_throughput(tmp_path, artifacts_dir):
    """Telemetry hot paths, normalized; emits BENCH_obs.json.

    Guarded by ``perf_guard.py --baseline benchmarks/BENCH_obs.json``
    exactly like the substrate stages: a change that makes event
    emission, snapshot sampling, the OpenMetrics codec, or JSONL
    appends drastically slower trips CI.
    """
    calibration = calibrate()
    registry = _service_like_registry()
    stages = []

    def emit_events():
        log = EventLog(capacity=1024, clock=lambda: 0.0)
        for index in range(_EVENT_OPS):
            log.emit("shard.restart", request_id="req-1",
                     shard=index % 4, restart=index)

    def emit_null_events():
        for index in range(_EVENT_OPS):
            NULL_EVENTS.emit("shard.restart", request_id="req-1",
                             shard=index % 4, restart=index)

    def take_snapshots():
        snapshotter = Snapshotter(registry, clock=lambda: 0.0,
                                  clock_kind="sim", ring_capacity=64)
        for _ in range(_SNAPSHOT_OPS):
            snapshotter.sample()

    record = Snapshotter(registry, clock=lambda: 0.0,
                         clock_kind="sim").sample().to_dict()
    exposition = render_openmetrics(record)

    def render_all():
        for _ in range(_CODEC_OPS):
            render_openmetrics(record)

    def parse_all():
        for _ in range(_CODEC_OPS):
            parse_openmetrics(exposition)

    def jsonl_appends():
        path = tmp_path / "bench_events.jsonl"
        sink = JsonlSink(str(path))
        try:
            for seq in range(1, _JSONL_OPS + 1):
                sink.emit({"schema": 1, "seq": seq, "ts": 0.0,
                           "kind": "shard.restart"})
        finally:
            sink.close()
            path.unlink()

    stages.append(stage("event_emit", _EVENT_OPS,
                        time_best(emit_events), calibration))
    null_seconds = time_best(emit_null_events)
    stages.append(stage("event_emit_null", _EVENT_OPS, null_seconds,
                        calibration))
    stages.append(stage("snapshot_sample", _SNAPSHOT_OPS,
                        time_best(take_snapshots), calibration))
    stages.append(stage("render_openmetrics", _CODEC_OPS,
                        time_best(render_all), calibration))
    stages.append(stage("parse_openmetrics", _CODEC_OPS,
                        time_best(parse_all), calibration))
    stages.append(stage("jsonl_emit", _JSONL_OPS,
                        time_best(jsonl_appends, repeats=3), calibration))

    payload = {
        "suite": "obs",
        "calibration_ops_per_sec": round(calibration, 2),
        "stages": stages,
        "null_event_ns": round(null_seconds / _EVENT_OPS * 1e9, 1),
    }
    out = artifacts_dir / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n--- BENCH_obs ---\n"
          f"{json.dumps({s['stage']: s['ops_per_sec'] for s in stages})}")

    # the disabled path must stay orders of magnitude under the real
    # one — the PR-2 invariant this whole plane inherits
    by_name = {s["stage"]: s for s in stages}
    assert by_name["event_emit_null"]["ops_per_sec"] > \
        by_name["event_emit"]["ops_per_sec"]


def test_perf_null_span_faster_than_real_span():
    """Sanity anchor: the null path must beat the recording path."""
    def cost(tracer, n=50_000):
        t0 = time.perf_counter()
        for _ in range(n):
            with tracer.span("bench.noop", path="x"):
                pass
        return (time.perf_counter() - t0) / n

    null_cost = cost(NULL_TRACER)
    real_cost = cost(Tracer())
    assert null_cost < real_cost
