"""E-S5: §V-B "Summary" — the headline result.

Paper targets: JMake certifies that every changed line was subjected to
the compiler for 85% of all patches and 88% of janitor patches; for 79%
of the overall set a single successful compilation suffices.
"""

from repro.evalsuite.experiments import render_summary_stats, summary_stats


def test_stats_summary(benchmark, bench_result, record_artifact):
    stats = benchmark(summary_stats, bench_result)
    record_artifact("stats_summary", render_summary_stats(stats))

    # the headline rates: most patches certify, but clearly not all
    assert 0.75 <= stats["all"].fraction <= 0.95
    assert 0.75 <= stats["janitor"].fraction <= 0.97
    # janitors do at least as well as the general population
    assert stats["janitor"].fraction >= stats["all"].fraction - 0.06
    # a single configuration usually suffices (79% in the paper)
    assert stats["single_config_sufficient"].fraction >= 0.55
