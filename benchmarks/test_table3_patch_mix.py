"""E-T3: Table III — characteristics of all patches vs janitor patches.

Paper targets: all patches 70% .c-only / 5% .h-only / 23% both;
janitor patches 87% / 2% / 10%. Shape assertions: .c-only dominates,
.h-only is the smallest class, and janitors skew further toward
.c-only.
"""

from repro.evalsuite.tables import table3


def test_table3_patch_mix(benchmark, bench_result, record_artifact):
    rows, text = benchmark(table3, bench_result)
    record_artifact("table3_patch_mix", text)
    by_label = {row.label: row for row in rows}
    c_only = by_label[".c files only"]
    h_only = by_label[".h files only"]
    both = by_label["both .c and .h files"]

    # who wins and by what factor
    assert c_only.all_patches.fraction > 0.55
    assert c_only.all_patches.fraction > 2 * both.all_patches.fraction
    assert h_only.all_patches.fraction < both.all_patches.fraction

    # janitors skew to .c-only and away from .h
    assert c_only.janitor_patches.fraction >= \
        c_only.all_patches.fraction
    assert h_only.janitor_patches.fraction <= \
        h_only.all_patches.fraction + 0.03

    # totals consistent
    assert sum(row.all_patches.count for row in rows) == \
        c_only.all_patches.total
