"""E-F4a/b/c: Figure 4 — CDFs of the per-step running times.

Paper targets:
- 4a: configuration creation 5 s or less for all invocations;
- 4b: .i generation 15 s or less for 98%, up to ~22 s;
- 4c: .o generation 7 s or less for 97%, ~15 s for almost all, with
  >6000 s whole-kernel-rebuild outliers.
"""

from repro.evalsuite.figures import (
    describe_figure,
    figure4a_config_times,
    figure4b_i_times,
    figure4c_o_times,
)


def test_fig4a_config_times(benchmark, bench_result, record_artifact):
    cdf = benchmark(figure4a_config_times, bench_result)
    record_artifact("fig4a_config_times", describe_figure(
        cdf, title="Fig 4a: configuration creation time",
        thresholds=[5.0]))
    assert len(cdf) > 100
    assert cdf.fraction_at_most(5.0) == 1.0


def test_fig4b_i_times(benchmark, bench_result, record_artifact):
    cdf = benchmark(figure4b_i_times, bench_result)
    record_artifact("fig4b_i_times", describe_figure(
        cdf, title="Fig 4b: .i generation time",
        thresholds=[15.0, 22.0]))
    assert cdf.fraction_at_most(15.0) >= 0.95
    assert cdf.max <= 25.0


def test_fig4c_o_times(benchmark, bench_result, record_artifact):
    cdf = benchmark(figure4c_o_times, bench_result)
    record_artifact("fig4c_o_times", describe_figure(
        cdf, title="Fig 4c: .o generation time",
        thresholds=[7.0, 15.0]))
    assert cdf.fraction_at_most(7.0) >= 0.9
    assert cdf.fraction_at_most(15.0) >= 0.95
    # the prom_init.c analogue: over 6000 seconds
    assert cdf.max > 6000.0
