"""E-A1: the §VII allmodconfig extension.

The paper notes JMake "could cause these lines to be compiled by
additionally using make allmodconfig, at the cost of nearly doubling
the set of configurations considered". This ablation runs the same
window with and without the extension and measures both the recovered
``#ifdef MODULE`` instances and the configuration-count cost.
"""

import pytest

from repro.core.jmake import JMakeOptions
from repro.core.report import FileStatus
from repro.evalsuite.runner import EvaluationRunner
from repro.kernel.layout import HazardKind

LIMIT = 160


@pytest.fixture(scope="module")
def baseline(bench_corpus):
    return EvaluationRunner(bench_corpus).run(limit=LIMIT)


def run_with_allmod(corpus):
    runner = EvaluationRunner(
        corpus, options=JMakeOptions(use_allmodconfig=True))
    return runner.run(limit=LIMIT)


def module_failures(result):
    return [record for record in result.file_instances()
            if record.status is FileStatus.LINES_NOT_COMPILED
            and HazardKind.MODULE_ONLY in record.hazard_kinds]


def test_ablation_allmodconfig(benchmark, bench_corpus, baseline,
                               record_artifact):
    extended = benchmark.pedantic(run_with_allmod, args=(bench_corpus,),
                                  iterations=1, rounds=1)

    base_failures = module_failures(baseline)
    ext_failures = module_failures(extended)
    base_configs = sum(p.invocation_counts.get("config", 0)
                      for p in baseline.patches)
    ext_configs = sum(p.invocation_counts.get("config", 0)
                      for p in extended.patches)
    text = "\n".join([
        "Ablation E-A1: allmodconfig extension",
        f"  MODULE-only failures, allyesconfig only : "
        f"{len(base_failures)}",
        f"  MODULE-only failures, + allmodconfig    : "
        f"{len(ext_failures)}",
        f"  configuration creations, baseline        : {base_configs}",
        f"  configuration creations, extended        : {ext_configs}",
    ])
    record_artifact("ablation_allmodconfig", text)

    # the extension recovers module-only instances ...
    assert len(ext_failures) <= len(base_failures)
    if base_failures:
        assert len(ext_failures) < len(base_failures)
    # ... at a clear configuration-count cost ("nearly doubling")
    assert ext_configs > base_configs
