"""E-T4: Table IV — reasons why changed lines escape the compiler.

Paper (janitor file instances): 5 / 5 / 3 / 2 / 1 / 1 / 5 across the
seven categories. Shape target: every category can occur, counts stay
small (a handful of file instances), and the union is nonempty.
"""

from repro.evalsuite.tables import table4
from repro.kernel.layout import HazardKind


def test_table4_reasons(benchmark, bench_result, record_artifact):
    counts, text = benchmark(table4, bench_result, janitor_only=False)
    record_artifact("table4_reasons_all", text)
    janitor_counts, janitor_text = table4(bench_result, janitor_only=True)
    record_artifact("table4_reasons_janitor", janitor_text)

    assert sum(counts.values()) > 0
    # counts are per-category small, as in the paper (1..5 per row for
    # janitors over 3 months; our smaller window scales similarly)
    assert all(count <= 60 for count in counts.values())
    # the dominant categories are the ifdef-based ones
    ifdef_based = (counts[HazardKind.CHOICE_UNSET]
                   + counts[HazardKind.NEVER_SET]
                   + counts[HazardKind.MODULE_ONLY])
    assert ifdef_based >= counts[HazardKind.UNUSED_MACRO]
    # janitor rows are a subset of the overall rows
    for kind, count in janitor_counts.items():
        assert count <= counts[kind]
