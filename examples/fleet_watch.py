#!/usr/bin/env python3
"""Fleet mode: watch a commit stream into a store, then query it.

The paper's closing pitch is JMake as a *service* for kernel janitors:
a daemon that follows the commit stream, checks every new patch, and
keeps an always-on, queryable record of the verdicts. This example runs
that loop end to end against the synthetic corpus:

1. ``watch`` drains the evaluation window into a SQLite verdict store,
   journaling every verdict first (the journal is the store's
   write-ahead log, so a crash between batches loses nothing);
2. ``query_verdicts`` answers typed filters straight from the store —
   no preprocessing, no compilation, no corpus needed;
3. ``janitor_report`` reads the §IV Table-II ranking from the
   materialized view the ingest loop keeps fresh.

Run:  python examples/fleet_watch.py [--commits 40] [--seed fleet]
"""

import argparse
import tempfile
from pathlib import Path

from repro.api import (
    CorpusSpec,
    JanitorViewCriteria,
    WatchConfig,
    build_corpus,
    janitor_report,
    query_verdicts,
    watch,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--commits", type=int, default=40)
    parser.add_argument("--seed", default="fleet-example")
    args = parser.parse_args()

    corpus = build_corpus(CorpusSpec(
        seed=args.seed,
        history_commits=max(200, args.commits // 2),
        eval_commits=args.commits))

    with tempfile.TemporaryDirectory() as scratch:
        store_path = str(Path(scratch) / "verdicts.sqlite")
        journal_path = str(Path(scratch) / "run.jnl")

        # 1. The daemon: pull, check, journal, ingest -- batch by batch.
        result = watch(corpus, store=store_path, journal=journal_path,
                       config=WatchConfig(batch_size=4, limit=12,
                                          fsync=False))
        print(f"watch drained: {result.commits_seen} commit(s), "
              f"{result.batches} batch(es), "
              f"{result.ingested} verdict(s) ingested")

        # 2. The read surface: typed queries against the stored fleet.
        partial = query_verdicts(store_path, verdict="PARTIAL")
        print(f"quarantined (PARTIAL) verdicts: {len(partial)}")
        for verdict in query_verdicts(store_path, limit=5):
            paths = {row.path for row in verdict.files}
            print(f"  {verdict.commit[:12]} {verdict.verdict} "
                  f"author={verdict.author_email or '-'} "
                  f"files={len(paths)}")

        # 3. The janitor ranking (ascending file_cv: most focused
        #    contributors first), straight from the materialized view.
        rows = janitor_report(store_path, JanitorViewCriteria(
            min_patches=1, min_files=1, top_n=5))
        print(f"\njanitor view ({len(rows)} ranked):")
        for row in rows:
            print(f"  {row.email} patches={row.patches} "
                  f"certified={row.certified} partial={row.partial} "
                  f"file_cv={row.file_cv:.3f}")


if __name__ == "__main__":
    main()
