#!/usr/bin/env python3
"""Quickstart: check one patch with JMake.

Builds the synthetic kernel tree, makes a small driver change the way a
janitor would, and asks JMake whether every changed line is actually
subjected to the compiler — and for which architecture.

Run:  python examples/quickstart.py
"""

from repro.api import CheckSession, Patch, diff_texts, generate_tree


def main() -> None:
    # 1. The source tree. In the paper this is a Linux kernel checkout;
    #    here it is the structurally equivalent generated substrate.
    tree = generate_tree()
    jmake = CheckSession.from_generated_tree(tree)

    # 2. A janitor-style change: add a bounds check to a staging driver.
    path = "drivers/staging/comedi/comedi1.c"
    original = tree.files[path]
    edited = original.replace(
        "\tint status = 0;",
        "\tint status = 0;\n\tint bound = 255;")
    assert edited != original

    # 3. Wrap the change as a patch plus the post-patch worktree
    #    (JMake checks the snapshot that results from applying it).
    files = dict(tree.files)
    files[path] = edited
    worktree = CheckSession.worktree_for_files(files)
    patch = Patch(files=[diff_texts(path, original, edited)])

    # 4. Run the check.
    report = jmake.check_patch(worktree, patch)
    print(report.render())
    print()
    if report.certified:
        print("All changed lines were subjected to the compiler -- safe "
              "to post the patch.")
    else:
        for file_report in report.file_reports.values():
            for lineno in file_report.missing_changed_lines():
                print(f"NOT compiled: {file_report.path}:{lineno}")


if __name__ == "__main__":
    main()
