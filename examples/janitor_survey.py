#!/usr/bin/env python3
"""Janitor survey: reproduce the §IV identification pipeline.

Builds a corpus with a long history window, computes each developer's
activity metrics against MAINTAINERS, applies the Table I thresholds,
ranks by per-file coefficient of variation, and prints Table II —
then compares against the ground-truth personas.

Run:  python examples/janitor_survey.py
"""

from repro.api import (
    ActivityAnalyzer,
    Corpus,
    CorpusSpec,
    JanitorFinder,
    PersonaKind,
    build_corpus,
    scaled_criteria,
    table1,
    table2,
)


def main() -> None:
    corpus = build_corpus(CorpusSpec(seed="janitor-survey",
                                     history_commits=900,
                                     eval_commits=300))
    criteria = scaled_criteria(corpus)

    _, text = table1(criteria)
    print("Table I — thresholds on janitor activity\n")
    print(text + "\n")

    finder = JanitorFinder(corpus.repository, corpus.tree.maintainers,
                           criteria=criteria)
    ranked = finder.identify(
        history_since=None, history_until=Corpus.TAG_EVAL_END,
        eval_since=Corpus.TAG_EVAL_START,
        eval_until=Corpus.TAG_EVAL_END)

    tool_users = {p.name for p in corpus.roster if p.tool_user}
    interns = {p.name for p in corpus.roster if p.intern}
    _, text = table2(ranked, tool_users=tool_users, interns=interns)
    print("Table II — janitors identified using the criteria\n")
    print(text + "\n")

    truth = {p.name for p in corpus.roster
             if p.kind is PersonaKind.JANITOR}
    recovered = [dev.name for dev in ranked if dev.name in truth]
    print(f"ground-truth janitor personas recovered: "
          f"{len(recovered)}/{len(ranked)}")

    # Contrast with a maintainer: depth-first work shows a high cv and
    # a high maintainer share, which is what keeps them out of Table II.
    analyzer = ActivityAnalyzer(corpus.repository, corpus.tree.maintainers)
    activities = analyzer.analyze()
    maintainers = [activity for activity in activities.values()
                   if activity.maintainer_share > 0.5
                   and activity.patches >= 5]
    if maintainers:
        sample = max(maintainers, key=lambda a: a.patches)
        print(f"\ncounter-example ({sample.name}): "
              f"{sample.patches} patches, "
              f"{len(sample.subsystems)} subsystems, "
              f"maintainer share {sample.maintainer_share:.0%}, "
              f"file cv {sample.file_cv:.2f}")


if __name__ == "__main__":
    main()
