#!/usr/bin/env python3
"""Evaluation replay: regenerate every table and figure of §V, scaled.

The paper runs JMake over the 12,946 commits between Linux v4.3 and
v4.4; this replay runs the same pipeline over a synthetic window (set
``--commits`` higher for closer-to-paper sample sizes; the default keeps
the script under a minute).

Run:  python examples/evaluation_replay.py [--commits N]
"""

import argparse

from repro.api import (
    EXPERIMENTS,
    CorpusSpec,
    EvaluationSession,
    build_corpus,
    figure5_overall,
    table3,
    table4,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--commits", type=int, default=500)
    parser.add_argument("--seed", default="replay")
    args = parser.parse_args()

    print(f"building corpus ({args.commits} evaluation commits) ...")
    corpus = build_corpus(CorpusSpec(
        seed=args.seed,
        history_commits=max(300, args.commits // 2),
        eval_commits=args.commits))

    print("running JMake over the evaluation window ...\n")
    result = EvaluationSession(corpus).run()

    print(f"{result.total_commits} commits; "
          f"{result.ignored_commits} ignored (merges, whitespace-only, "
          f"docs-only, non-.c/.h); {len(result.patches)} checked\n")

    _, text = table3(result)
    print("Table III — characteristics of all/janitor patches")
    print(text + "\n")

    _, text = table4(result)
    print("Table IV — reasons changed lines escape the compiler")
    print(text + "\n")

    for experiment_id in ("E-F4a", "E-F4b", "E-F4c", "E-F5", "E-F6",
                          "E-S1", "E-S2", "E-S3", "E-S4", "E-S5",
                          "E-S6"):
        _, text = EXPERIMENTS[experiment_id].run(result)
        print(text + "\n")

    print("Figure 5 as ASCII (simulated seconds on the x axis):")
    print(figure5_overall(result).render_ascii(
        title="CDF of the overall running time of JMake"))


if __name__ == "__main__":
    main()
