#!/usr/bin/env python3
"""Zero-day bot: random-configuration testing vs CheckSession.

§I and §VI of the paper contrast JMake with Intel's 0-day build-testing
service, which compiles every patch for a number of randomly selected
configurations: thorough but "not exhaustive", and the feedback arrives
whenever the farm gets around to it. This example quantifies the
difference on the synthetic corpus:

- the *bot* compiles each patch under N random configurations and
  counts a patch covered when the union of those builds subjects every
  changed line to the compiler;
- *JMake* runs its targeted mutation + architecture-heuristic pipeline.

Run:  python examples/zero_day_bot.py [--configs N] [--commits N]
"""

import argparse

from repro.api import (
    BuildSystem,
    CheckSession,
    Config,
    Corpus,
    CorpusSpec,
    DeterministicRng,
    MutationEngine,
    MutationOverlay,
    Tristate,
    build_corpus,
    extract_changed_files,
)


def random_config(model, rng: DeterministicRng, index: int) -> Config:
    """A dependency-respecting random configuration (the bot's draw)."""
    config = Config(name=f"randconfig-{index}")
    assignment = config.values
    for symbol in model.symbols():
        if symbol.is_boolean_like:
            assignment[symbol.name] = Tristate.N
        elif symbol.default_value is not None:
            config.scalar_values[symbol.name] = symbol.default_value
    for _ in range(3):  # a few passes so dependent symbols get a chance
        for symbol in model.boolean_symbols():
            if assignment[symbol.name] != Tristate.N:
                continue
            if symbol.dependencies_met(assignment) and rng.bernoulli(0.5):
                assignment[symbol.name] = Tristate.Y
    return config


def bot_covers_patch(corpus, commit, configs_per_patch, rng) -> bool:
    """Does the union of N random builds see every changed line?"""
    repository = corpus.repository
    worktree = repository.checkout(commit)
    patch = repository.show(commit)
    changed = extract_changed_files(
        patch, new_texts={p: worktree.read(p) for p in patch.paths()
                          if worktree.exists(p)})
    engine = MutationEngine()
    plans = [engine.plan(record.path, worktree.read(record.path),
                         record.changed_lines)
             for record in changed if worktree.exists(record.path)]
    tokens = {token for plan in plans for token in plan.tokens}
    if not tokens:
        return True  # comment-only: nothing for a compiler to miss
    overlay = MutationOverlay(worktree, plans)
    overlay.apply_all()

    build = BuildSystem(worktree.as_file_provider(),
                        path_lister=worktree.paths)
    model = build.config_model("x86_64")
    found: set[str] = set()
    c_paths = [plan.path for plan in plans if plan.path.endswith(".c")]
    for index in range(configs_per_patch):
        config = random_config(model, rng, index)
        for result in build.make_i(c_paths, "x86_64", config):
            if result.ok and result.i_text:
                found |= {t for t in tokens if t in result.i_text}
        if tokens <= found:
            break
    worktree.reset_hard()
    return tokens <= found


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--configs", type=int, default=4,
                        help="random configurations per patch")
    parser.add_argument("--commits", type=int, default=120)
    args = parser.parse_args()

    corpus = build_corpus(CorpusSpec(seed="zero-day",
                                     history_commits=200,
                                     eval_commits=args.commits))
    repository = corpus.repository
    commits = repository.log(since=Corpus.TAG_EVAL_START,
                             until=Corpus.TAG_EVAL_END)
    commits = [c for c in commits
               if extract_changed_files(repository.show(c))]

    rng = DeterministicRng("zero-day-bot")
    jmake = CheckSession.from_generated_tree(corpus.tree)

    bot_covered = jmake_certified = 0
    for commit in commits:
        if bot_covers_patch(corpus, commit, args.configs, rng):
            bot_covered += 1
        if jmake.check_commit(repository, commit).certified:
            jmake_certified += 1

    total = len(commits)
    print(f"patches checked: {total}")
    print(f"0-day bot, {args.configs} random x86_64 configs/patch: "
          f"{bot_covered}/{total} covered "
          f"({bot_covered / total:.0%})")
    print(f"JMake (targeted heuristics, cross-arch):        "
          f"{jmake_certified}/{total} certified "
          f"({jmake_certified / total:.0%})")
    print()
    print("The bot needs many blind builds per patch and still misses "
          "arch-specific code;")
    print("JMake reports, per line, *which* changed lines no build ever "
          "saw — immediately.")


if __name__ == "__main__":
    main()
