#!/usr/bin/env python3
"""Undertaker scan: static dead-block detection vs JMake's dynamic view.

§VI of the paper positions JMake against the Undertaker, which finds
*dead* and *undead* conditional blocks by analyzing the configuration
model statically. This example runs our Undertaker reimplementation over
the whole synthetic tree, then shows where the two tools' strengths
differ:

- a **dead** block (never-set symbol, #if 0, contradiction) is caught
  statically, before any patch exists;
- code under ``#ifdef MODULE`` or a non-default choice member is *not*
  dead — only JMake's per-patch check notices that a concrete change
  there was never compiled under the configurations actually tried.

Run:  python examples/undertaker_scan.py
"""

from collections import Counter

from repro.api import (
    BlockVerdict,
    BuildSystem,
    DeadBlockAnalyzer,
    HazardKind,
    generate_tree,
)


def main() -> None:
    tree = generate_tree()
    build = BuildSystem(tree.provider(),
                        path_lister=lambda: sorted(tree.files))
    # The Undertaker unions the variability models of every
    # architecture; blocks reachable only under another arch's Kconfig
    # are arch-dependent, not dead.
    extra_models = {spec.name: build.config_model(spec.name)
                    for spec in tree.spec.arches
                    if spec.name != "x86_64"}
    analyzer = DeadBlockAnalyzer(build.config_model("x86_64"),
                                 extra_models=extra_models)

    verdict_counter: Counter = Counter()
    dead_report: list[tuple[str, int, str]] = []
    files = 0
    for path in sorted(tree.files):
        if not (path.endswith(".c") or path.endswith(".h")):
            continue
        if path.startswith(("Documentation/", "scripts/", "tools/")):
            continue
        files += 1
        for analyzed in analyzer.analyze_file(path, tree.files[path]):
            verdict_counter[analyzed.verdict] += 1
            if analyzed.verdict is BlockVerdict.DEAD:
                dead_report.append((path, analyzed.block.start,
                                    analyzed.reason))

    print(f"scanned {files} source files")
    for verdict in BlockVerdict:
        print(f"  {verdict.value:>13}: {verdict_counter[verdict]} blocks")
    print()
    print("dead blocks (would be flagged before any patch exists):")
    for path, line, reason in dead_report[:10]:
        print(f"  {path}:{line}  -- {reason}")
    if len(dead_report) > 10:
        print(f"  ... and {len(dead_report) - 10} more")

    # Cross-check against the generator's ground truth.
    never_set_files = {path for path, info in tree.info.items()
                       if HazardKind.NEVER_SET in info.hazards}
    flagged_files = {path for path, _, _ in dead_report}
    caught = never_set_files & flagged_files
    print()
    print(f"ground truth: {len(never_set_files)} files carry a "
          f"never-set #ifdef; the static scan flagged "
          f"{len(caught)} of them")

    module_files = {path for path, info in tree.info.items()
                    if HazardKind.MODULE_ONLY in info.hazards}
    print(f"but {len(module_files)} files have #ifdef MODULE blocks the "
          f"static scan can only call 'environment' —")
    print("those are exactly the insidious cases where JMake's dynamic "
          "mutation check is needed.")


if __name__ == "__main__":
    main()
