#!/usr/bin/env python3
"""Patch audit: the insidious case, and how JMake exposes it.

Walks through the exact situation §I of the paper warns about: a file
that *compiles without errors* under allyesconfig while some changed
lines were silently excluded by conditional compilation. Then shows two
rescues: another architecture's configuration, and the allmodconfig
extension for ``#ifdef MODULE`` code.

Run:  python examples/patch_audit.py
"""

from repro.api import (
    CheckSession,
    HazardKind,
    JMakeOptions,
    Patch,
    diff_texts,
    generate_tree,
)


def check(tree, path, old, new, **options):
    original = tree.files[path]
    edited = original.replace(old, new)
    assert edited != original, f"edit failed in {path}"
    files = dict(tree.files)
    files[path] = edited
    worktree = CheckSession.worktree_for_files(files)
    patch = Patch(files=[diff_texts(path, original, edited)])
    jmake = CheckSession.from_generated_tree(
        tree, options=JMakeOptions(**options) if options else None)
    return jmake.check_patch(worktree, patch)


def first_file_with(tree, kind):
    for path in sorted(tree.info):
        info = tree.info[path]
        if info.kind == "driver_c" and kind in info.hazards:
            return path
    raise SystemExit(f"tree has no driver with hazard {kind}")


def main() -> None:
    tree = generate_tree()

    # --- 1. A change under a never-set CONFIG variable ----------------
    path = first_file_with(tree, HazardKind.NEVER_SET)
    print(f"== change under a dead #ifdef in {path}")
    report = check(tree, path, "\treturn dev->id - 1;",
                   "\treturn dev->id - 2;")
    file_report = report.file_reports[path]
    print(f"verdict: {file_report.status.value}")
    print(f"lines never compiled: {file_report.missing_changed_lines()}")
    print("-> the file compiled cleanly, yet the compiler never saw the "
          "change.\n")

    # --- 2. A change under #ifdef MODULE, rescued by allmodconfig -----
    path = first_file_with(tree, HazardKind.MODULE_ONLY)
    print(f"== change under #ifdef MODULE in {path}")
    report = check(tree, path, "_module_cleanup(void)",
                   "_module_cleanup_verbose(void)")
    print(f"allyesconfig only : "
          f"{report.file_reports[path].status.value}")
    report = check(tree, path, "_module_cleanup(void)",
                   "_module_cleanup_verbose(void)",
                   use_allmodconfig=True)
    print(f"+ allmodconfig    : "
          f"{report.file_reports[path].status.value}")
    print("-> the paper's §VII extension: allmodconfig nearly doubles "
          "the configurations but covers module-only code.\n")

    # --- 3. An arch-conditional change rescued by a cross-compiler ----
    candidates = [p for p, info in tree.info.items()
                  if HazardKind.ARCH_CONDITIONAL in info.hazards]
    if candidates:
        path = sorted(candidates)[0]
        print(f"== change under an arch-only bus #ifdef in {path}")
        report = check(tree, path, "\treturn dev->id + lanes;",
                       "\treturn dev->id + lanes + 1;")
        file_report = report.file_reports[path]
        print(f"verdict: {file_report.status.value}")
        print(f"architectures that helped: {file_report.useful_archs}")
        print("-> no developer compiles for this architecture by hand; "
              "JMake found it via the Makefile heuristics (§III-C).")


if __name__ == "__main__":
    main()
