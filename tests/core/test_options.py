"""Tests for JMakeOptions edge cases and report serialization."""

import json

import pytest

from repro.core.jmake import JMake, JMakeOptions
from repro.core.report import FileStatus
from repro.kernel.generator import KernelTreeGenerator, generate_tree
from repro.kernel.layout import default_tree_spec
from repro.vcs.diff import Patch, diff_texts


@pytest.fixture(scope="module")
def tree():
    return generate_tree()


def run_check(tree, path, old, new, options=None):
    original = tree.files[path]
    edited = original.replace(old, new)
    assert edited != original
    files = dict(tree.files)
    files[path] = edited
    worktree = JMake.worktree_for_files(files)
    patch = Patch(files=[diff_texts(path, original, edited)])
    jmake = JMake.from_generated_tree(tree, options=options)
    return jmake.check_patch(worktree, patch)


class TestBatchLimit:
    def test_batch_limit_one_still_works(self, tree):
        report = run_check(tree, "fs/ext4/ext40.c",
                           "int status = 0;", "int status = 1;",
                           JMakeOptions(batch_limit=1))
        assert report.certified

    def test_batch_limit_floor(self, tree):
        """Nonsensical limits are clamped, not crashes."""
        report = run_check(tree, "fs/ext4/ext40.c",
                           "int status = 0;", "int status = 1;",
                           JMakeOptions(batch_limit=0))
        assert report.certified


class TestHostOption:
    def test_alternate_selection_seed_still_deterministic(self, tree):
        a = run_check(tree, "fs/ext4/ext40.c",
                      "int status = 0;", "int status = 1;",
                      JMakeOptions(selection_seed="other"))
        b = run_check(tree, "fs/ext4/ext40.c",
                      "int status = 0;", "int status = 1;",
                      JMakeOptions(selection_seed="other"))
        assert a.invocation_counts == b.invocation_counts


class TestJsonExport:
    def test_to_dict_round_trips_through_json(self, tree):
        report = run_check(tree, "fs/ext4/ext40.c",
                           "int status = 0;", "int status = 1;")
        payload = report.to_dict()
        text = json.dumps(payload)
        restored = json.loads(text)
        assert restored["certified"] is True
        file_entry = restored["files"]["fs/ext4/ext40.c"]
        assert file_entry["status"] == "ok"
        assert "x86_64" in file_entry["useful_archs"]

    def test_to_dict_reports_missing_lines(self, tree):
        from repro.kernel.layout import HazardKind
        path = next(p for p, info in sorted(tree.info.items())
                    if HazardKind.NEVER_SET in info.hazards
                    and info.kind == "driver_c")
        report = run_check(tree, path,
                           "\treturn dev->id - 1;", "\treturn dev->id - 7;")
        payload = report.to_dict()
        entry = payload["files"][path]
        assert entry["status"] == FileStatus.LINES_NOT_COMPILED.value
        assert entry["missing_lines"]


class TestTreeScaling:
    def test_driver_scale_multiplies_tree(self):
        small = generate_tree()
        big = KernelTreeGenerator(
            default_tree_spec(driver_scale=2)).generate()
        assert len(big.driver_files()) > 1.5 * len(small.driver_files())

    def test_scaled_tree_still_checks(self):
        big = KernelTreeGenerator(
            default_tree_spec(driver_scale=2)).generate()
        report = run_check(big, "fs/ext4/ext40.c",
                           "int status = 0;", "int status = 1;")
        assert report.certified
