"""Property-based tests on the mutation engine's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.mutation import MUTATION_CHAR, MutationEngine
from repro.core.sourcemap import LineClass, SourceMap
from repro.cpp.preprocessor import Preprocessor
from repro.util.text import split_lines_keepends

# Source-shaped line pool: mixes code, macros, comments, conditionals.
LINE_POOL = [
    "int a;",
    "int b = 3;",
    "\tfoo(a, b);",
    "#define M1 7",
    "#define M2(x) ((x) + 1)",
    "/* a comment line */",
    "// another comment",
    "#ifdef CONFIG_X",
    "#endif",
    "",
    "\treturn a;",
]


def balanced_source(line_choices):
    """Build a file where every #ifdef has a matching #endif."""
    lines = []
    depth = 0
    for choice in line_choices:
        if choice == "#ifdef CONFIG_X":
            depth += 1
            lines.append(choice)
        elif choice == "#endif":
            if depth > 0:
                depth -= 1
                lines.append(choice)
        else:
            lines.append(choice)
    lines.extend(["#endif"] * depth)
    return "\n".join(lines) + "\n"


source_strategy = st.lists(st.sampled_from(LINE_POOL),
                           min_size=3, max_size=30).map(balanced_source)


class TestEngineInvariants:
    @given(source_strategy, st.data())
    @settings(max_examples=80)
    def test_revert_tokens_recovers_original(self, text, data):
        line_count = len(split_lines_keepends(text))
        changed = data.draw(st.lists(
            st.integers(min_value=1, max_value=line_count),
            min_size=1, max_size=6, unique=True))
        plan = MutationEngine().plan("f.c", text, changed)
        restored = plan.mutated_text
        for mutation in plan.mutations:
            # undo each placement form, most specific first
            restored = restored.replace("\t" + mutation.token + " \\\n", "")
            restored = restored.replace(" " + mutation.token + " \\", " \\")
            restored = restored.replace(" " + mutation.token + "\n", "\n")
            restored = restored.replace(mutation.token + "\n", "")
            restored = restored.replace(" " + mutation.token + " ", "")
            restored = restored.replace(mutation.token, "")
        # modulo trailing whitespace differences on mutated lines
        normalize = lambda s: "\n".join(line.rstrip()
                                        for line in s.split("\n"))
        assert normalize(restored) == normalize(text)

    @given(source_strategy, st.data())
    @settings(max_examples=80)
    def test_mutation_count_bounded_by_changes(self, text, data):
        line_count = len(split_lines_keepends(text))
        changed = data.draw(st.lists(
            st.integers(min_value=1, max_value=line_count),
            min_size=1, max_size=8, unique=True))
        plan = MutationEngine().plan("f.c", text, changed)
        assert len(plan.mutations) <= len(changed)

    @given(source_strategy, st.data())
    @settings(max_examples=80)
    def test_tokens_unique(self, text, data):
        line_count = len(split_lines_keepends(text))
        changed = data.draw(st.lists(
            st.integers(min_value=1, max_value=line_count),
            min_size=1, max_size=8, unique=True))
        plan = MutationEngine().plan("f.c", text, changed)
        assert len(set(plan.tokens)) == len(plan.tokens)

    @given(source_strategy, st.data())
    @settings(max_examples=60)
    def test_mutated_text_always_preprocesses(self, text, data):
        """Mutations must never break .i generation (§III-A)."""
        line_count = len(split_lines_keepends(text))
        changed = data.draw(st.lists(
            st.integers(min_value=1, max_value=line_count),
            min_size=1, max_size=6, unique=True))
        plan = MutationEngine().plan("f.c", text, changed)
        files = {"f.c": plan.mutated_text}
        result = Preprocessor(files.get).preprocess("f.c")
        assert result.text is not None

    @given(source_strategy, st.data())
    @settings(max_examples=60)
    def test_active_code_tokens_surface(self, text, data):
        """A token for a change in always-active, non-macro code must
        appear in the .i output."""
        source_map = SourceMap("f.c", text)
        active_code = [
            info.lineno for info in source_map.lines
            if info.line_class is LineClass.CODE and info.text.strip()
            and source_map.last_conditional_before(info.lineno) == 0]
        if not active_code:
            return
        lineno = data.draw(st.sampled_from(active_code))
        plan = MutationEngine().plan("f.c", text, [lineno])
        if not plan.mutations:
            return
        files = {"f.c": plan.mutated_text}
        result = Preprocessor(files.get).preprocess("f.c")
        assert plan.tokens_found_in(result.text) == set(plan.tokens)

    @given(source_strategy)
    @settings(max_examples=40)
    def test_no_changes_no_mutations(self, text):
        plan = MutationEngine().plan("f.c", text, [])
        assert plan.mutated_text == text
        assert plan.mutations == []

    @given(source_strategy, st.data())
    @settings(max_examples=60)
    def test_mutation_char_present_exactly_once_per_token(self, text,
                                                          data):
        line_count = len(split_lines_keepends(text))
        changed = data.draw(st.lists(
            st.integers(min_value=1, max_value=line_count),
            min_size=1, max_size=6, unique=True))
        plan = MutationEngine().plan("f.c", text, changed)
        assert plan.mutated_text.count(MUTATION_CHAR) == \
            len(plan.mutations)
