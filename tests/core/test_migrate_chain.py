"""Property tests for chained record migration.

``migrate_record`` upgrades any historical schema version to the
current one in a single call by chaining per-version hops. These
properties pin the chain algebra: migrating a v1 record in one hop
is byte-identical to hand-stepping it through every intermediate
form, the result is a fixed point, the input is never mutated, and
the rejection surface (truncation, poisoned numbers, inconsistent
verdicts, impossible versions) fires at *every* version on the way
up, not just the entry point.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.report import SCHEMA_VERSION, migrate_record
from repro.errors import SchemaError

ARCHES = ("x86_64", "arm", "arm64", "mips", "powerpc", "s390")

_commit_ids = st.text(alphabet="0123456789abcdef", min_size=6,
                      max_size=40)
_paths = st.from_regex(r"[a-z][a-z0-9_]{0,8}\.[ch]", fullmatch=True)

_file_entries = st.fixed_dictionaries({
    "status": st.sampled_from(["ok", "skipped", "failed"]),
    "useful_archs": st.lists(st.sampled_from(ARCHES), max_size=3,
                             unique=True),
})


@st.composite
def v1_records(draw):
    """A coherent PR-3-era record (no version, no fully_checked).

    Coherent means the verdict already agrees with the quarantine
    set, because the v1 hop *derives* ``fully_checked`` from
    ``quarantined_archs`` and the final consistency guard compares it
    against the ``PARTIAL:`` verdict prefix.
    """
    quarantined = draw(st.lists(st.sampled_from(ARCHES), max_size=3,
                                unique=True))
    if quarantined:
        verdict = "PARTIAL:" + ",".join(quarantined)
        certified = False
    else:
        verdict = draw(st.sampled_from(
            ["CERTIFIED", "ATTENTION REQUIRED"]))
        certified = verdict == "CERTIFIED"
    record = {
        "commit": draw(_commit_ids),
        "certified": certified,
        "verdict": verdict,
        "quarantined_archs": quarantined,
        "faults": draw(st.lists(st.sampled_from(
            ["config_fail", "io_error"]), max_size=2)),
        "invocations": {"config": draw(st.integers(0, 5))},
        "files": draw(st.dictionaries(_paths, _file_entries,
                                      max_size=4)),
    }
    if draw(st.booleans()):
        record["elapsed_seconds"] = draw(st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False,
            allow_infinity=False))
    return record


def step_to_v2(record):
    """Hand-apply exactly the v1 -> v2 hop."""
    out = dict(record)
    out["schema_version"] = 2
    out["fully_checked"] = not out["quarantined_archs"]
    return out


def step_to_v3(record):
    """Hand-apply exactly the v2 -> v3 hop."""
    out = dict(record)
    out["schema_version"] = 3
    out["journal"] = {"dedup_key": out["commit"]}
    return out


def step_to_v4(record):
    """Hand-apply exactly the v3 -> v4 hop."""
    out = dict(record)
    out["schema_version"] = 4
    out["author"] = None
    out["files"] = {path: {**entry, "attempts": []}
                    for path, entry in out["files"].items()}
    return out


class TestChainAlgebra:
    @given(v1_records())
    @settings(max_examples=80)
    def test_one_hop_equals_stepwise(self, record):
        """migrate(v1) == migrate(step(v1)) == ... == hand-built v4:
        the chain commutes with manual stepping at every rung."""
        expected = step_to_v4(step_to_v3(step_to_v2(record)))
        assert migrate_record(record) == expected
        assert migrate_record(step_to_v2(record)) == expected
        assert migrate_record(step_to_v3(step_to_v2(record))) == \
            expected

    @given(v1_records())
    @settings(max_examples=80)
    def test_migration_is_a_fixed_point(self, record):
        once = migrate_record(record)
        assert once["schema_version"] == SCHEMA_VERSION
        assert migrate_record(once) == once

    @given(v1_records())
    @settings(max_examples=60)
    def test_input_is_never_mutated(self, record):
        import copy
        snapshot = copy.deepcopy(record)
        migrate_record(record)
        assert record == snapshot
        stepped = step_to_v3(step_to_v2(record))
        snapshot = copy.deepcopy(stepped)
        migrate_record(stepped)
        assert stepped == snapshot

    @given(v1_records())
    @settings(max_examples=60)
    def test_entry_version_leaves_no_trace(self, record):
        """Which version a record *entered* at is unrecoverable from
        the migrated output — the chain normalizes completely."""
        from_v1 = migrate_record(record)
        from_v3 = migrate_record(step_to_v3(step_to_v2(record)))
        assert from_v1 == from_v3


class TestRejectionsAtEveryVersion:
    @given(v1_records(), st.sampled_from(["commit", "certified",
                                          "verdict", "files"]),
           st.sampled_from([1, 2, 3]))
    @settings(max_examples=60)
    def test_truncation_is_refused_at_every_entry_version(
            self, record, missing, entry_version):
        if entry_version >= 2:
            record = step_to_v2(record)
        if entry_version >= 3:
            record = step_to_v3(record)
        del record[missing]
        with pytest.raises(SchemaError, match="truncated"):
            migrate_record(record)

    @given(v1_records(),
           st.one_of(st.integers(max_value=0),
                     st.integers(min_value=SCHEMA_VERSION + 1),
                     st.booleans(),
                     st.sampled_from(["1", "two", 2.0, None])))
    @settings(max_examples=60)
    def test_impossible_versions_are_refused(self, record, version):
        record["schema_version"] = version
        with pytest.raises(SchemaError):
            migrate_record(record)

    @given(v1_records(),
           st.sampled_from([float("nan"), float("inf"),
                            float("-inf")]),
           st.sampled_from([1, 2, 3]))
    @settings(max_examples=30)
    def test_poisoned_elapsed_is_refused_at_every_version(
            self, record, poison, entry_version):
        if entry_version >= 2:
            record = step_to_v2(record)
        if entry_version >= 3:
            record = step_to_v3(record)
        record["elapsed_seconds"] = poison
        with pytest.raises(SchemaError, match="non-finite"):
            migrate_record(record)

    @given(v1_records())
    @settings(max_examples=60)
    def test_verdict_consistency_guard_fires_both_ways(self, record):
        lying = step_to_v2(record)
        lying["fully_checked"] = not lying["fully_checked"]
        with pytest.raises(SchemaError):
            migrate_record(lying)

    @given(v1_records())
    @settings(max_examples=30)
    def test_mangled_files_are_refused(self, record):
        record["files"] = ["a.c"]
        with pytest.raises(SchemaError, match="mapping"):
            migrate_record(record)


class TestFinitePayloadsSurvive:
    @given(v1_records())
    @settings(max_examples=60)
    def test_pre_existing_facts_survive_the_chain(self, record):
        migrated = migrate_record(record)
        assert migrated["commit"] == record["commit"]
        assert migrated["verdict"] == record["verdict"]
        assert migrated["quarantined_archs"] == \
            record["quarantined_archs"]
        assert set(migrated["files"]) == set(record["files"])
        for path, entry in record["files"].items():
            assert migrated["files"][path]["useful_archs"] == \
                entry["useful_archs"]
            assert migrated["files"][path]["attempts"] == []
        if "elapsed_seconds" in record:
            assert math.isfinite(migrated["elapsed_seconds"])
