"""Tests for changed-line extraction."""

from repro.core.changes import (
    ChangedFile,
    changed_lines_of_file_diff,
    extract_changed_files,
)
from repro.vcs.diff import Patch, diff_texts

OLD = """\
int a;
int b;
int c;
int d;
int e;
int f;
int g;
"""


class TestChangedLines:
    def test_modification(self):
        new = OLD.replace("int c;", "long c;")
        file_diff = diff_texts("f.c", OLD, new)
        assert changed_lines_of_file_diff(file_diff) == [3]

    def test_pure_addition(self):
        new = OLD.replace("int c;\n", "int c;\nint c2;\nint c3;\n")
        file_diff = diff_texts("f.c", OLD, new)
        assert changed_lines_of_file_diff(file_diff) == [4, 5]

    def test_pure_removal_takes_following_line(self):
        """§III-B: 'the changed line is considered to be the first line
        remaining after the removed code'."""
        new = OLD.replace("int c;\n", "")
        file_diff = diff_texts("f.c", OLD, new)
        # In the new file, "int d;" is now line 3.
        assert changed_lines_of_file_diff(file_diff) == [3]

    def test_removal_at_end_takes_eof(self):
        new = OLD.replace("int f;\nint g;\n", "")
        file_diff = diff_texts("f.c", OLD, new)
        new_count = new.count("\n") + 1
        lines = changed_lines_of_file_diff(file_diff, new_count)
        assert len(lines) == 1
        assert lines[0] >= 5

    def test_distant_hunks_report_both(self):
        old = "\n".join(f"int v{i};" for i in range(30)) + "\n"
        new = old.replace("int v2;", "long v2;").replace("int v25;\n", "")
        file_diff = diff_texts("f.c", old, new)
        lines = changed_lines_of_file_diff(file_diff)
        assert 3 in lines          # modification
        assert len(lines) == 2     # plus the line after the removal

    def test_mixed_hunk_uses_added_lines(self):
        """A hunk with both + and - counts its added lines (§III-B
        distinguishes only pure-addition and pure-removal hunks)."""
        new = OLD.replace("int c;\nint d;\n", "long c2;\n")
        file_diff = diff_texts("f.c", OLD, new)
        lines = changed_lines_of_file_diff(file_diff)
        assert lines == [3]


class TestExtraction:
    def make_patch(self, *paths):
        patch = Patch()
        for path in paths:
            new = OLD.replace("int c;", "long c;")
            patch.files.append(diff_texts(path, OLD, new))
        return patch

    def test_c_and_h_kept(self):
        patch = self.make_patch("drivers/a.c", "include/linux/b.h")
        changed = extract_changed_files(patch)
        assert [record.path for record in changed] == \
            ["drivers/a.c", "include/linux/b.h"]

    def test_other_extensions_dropped(self):
        patch = self.make_patch("drivers/a.c", "drivers/Makefile",
                                "drivers/notes.txt")
        changed = extract_changed_files(patch)
        assert [record.path for record in changed] == ["drivers/a.c"]

    def test_ignored_directories_dropped(self):
        """§V-A: Documentation, scripts, tools are ignored."""
        patch = self.make_patch("Documentation/doc.c", "scripts/gen.c",
                                "tools/perf/x.c", "drivers/a.c")
        changed = extract_changed_files(patch)
        assert [record.path for record in changed] == ["drivers/a.c"]

    def test_relevance_flags(self):
        assert ChangedFile("a/b.c").is_relevant
        assert ChangedFile("a/b.h").is_relevant
        assert not ChangedFile("a/b.S").is_relevant
        assert not ChangedFile("tools/b.c").is_relevant

    def test_relevant_only_false_keeps_all(self):
        patch = self.make_patch("scripts/gen.c")
        changed = extract_changed_files(patch, relevant_only=False)
        assert [record.path for record in changed] == ["scripts/gen.c"]

    def test_new_texts_improve_eof_rule(self):
        old = "int a;\nint b;\n"
        new = "int a;\n"
        file_diff = diff_texts("f.c", old, new)
        patch = Patch(files=[file_diff])
        changed = extract_changed_files(patch, new_texts={"f.c": new})
        assert changed[0].changed_lines == [1]
