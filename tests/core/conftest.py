"""Shared fixtures: a generated tree and JMake bound to it."""

import pytest

from repro.core.jmake import JMake, JMakeOptions
from repro.kernel.generator import generate_tree


@pytest.fixture(scope="session")
def tree():
    return generate_tree()


@pytest.fixture
def jmake(tree):
    return JMake.from_generated_tree(tree)


@pytest.fixture
def worktree(tree):
    return JMake.worktree_for_files(tree.files)


def edit_file(tree, worktree, path, old, new):
    """Produce (patch, post-edit worktree) for a one-string edit."""
    from repro.vcs.diff import Patch, diff_texts

    original = tree.files[path]
    assert old in original, f"{old!r} not found in {path}"
    edited = original.replace(old, new)
    files = dict(tree.files)
    files[path] = edited
    new_worktree = JMake.worktree_for_files(files)
    file_diff = diff_texts(path, original, edited)
    assert file_diff is not None
    return Patch(files=[file_diff]), new_worktree
