"""Tests for the report layer (FileReport / PatchReport)."""

from repro.core.mutation import Mutation
from repro.core.report import (
    ArchAttempt,
    FileReport,
    FileStatus,
    PatchReport,
)


def mutation(line, path="drivers/a.c", kind="code"):
    token = Mutation.make_token(kind, path, line)
    return Mutation(token=token, kind=kind, path=path, line=line,
                    insert_at=line)


class TestFileStatus:
    def test_success_statuses(self):
        assert FileStatus.OK.is_success
        assert FileStatus.COMMENT_ONLY.is_success

    def test_failure_statuses(self):
        for status in (FileStatus.LINES_NOT_COMPILED,
                       FileStatus.NO_MAKEFILE,
                       FileStatus.UNSUPPORTED_ARCH,
                       FileStatus.I_FAILED, FileStatus.O_FAILED,
                       FileStatus.BOOTSTRAP_UNTREATABLE):
            assert not status.is_success


class TestFileReport:
    def test_missing_changed_lines(self):
        m1, m2 = mutation(10), mutation(20)
        report = FileReport(path="drivers/a.c",
                            status=FileStatus.LINES_NOT_COMPILED,
                            mutations=[m1, m2],
                            missing_tokens={m2.token})
        assert report.missing_changed_lines() == [20]

    def test_render_lists_missing_lines(self):
        m = mutation(42)
        report = FileReport(path="drivers/a.c",
                            status=FileStatus.LINES_NOT_COMPILED,
                            mutations=[m], missing_tokens={m.token})
        text = report.render()
        assert "drivers/a.c:42" in text
        assert "lines-not-compiled" in text

    def test_render_attempts(self):
        report = FileReport(
            path="a.c", status=FileStatus.OK,
            useful_archs=["x86_64", "arm"],
            attempts=[ArchAttempt(arch="x86_64",
                                  config_target="allyesconfig",
                                  i_ok=True, o_ok=True),
                      ArchAttempt(arch="arm",
                                  config_target="allyesconfig",
                                  i_ok=True)])
        text = report.render()
        assert "x86_64/allyesconfig: ok" in text
        assert "arm/allyesconfig: i-only" in text
        assert "x86_64, arm" in text

    def test_certified_property(self):
        assert FileReport(path="a.c", status=FileStatus.OK).certified
        assert not FileReport(path="a.c",
                              status=FileStatus.I_FAILED).certified


class TestPatchReport:
    def make(self):
        report = PatchReport(commit_id="abc123def")
        report.file_reports["a.c"] = FileReport(
            path="a.c", status=FileStatus.OK)
        report.file_reports["b.h"] = FileReport(
            path="b.h", status=FileStatus.COMMENT_ONLY)
        report.elapsed_seconds = 12.5
        report.invocation_counts = {"config": 1, "make_i": 2, "make_o": 1}
        return report

    def test_certified_requires_all_files(self):
        report = self.make()
        assert report.certified
        report.file_reports["c.c"] = FileReport(
            path="c.c", status=FileStatus.LINES_NOT_COMPILED)
        assert not report.certified

    def test_empty_report_not_certified(self):
        assert not PatchReport(commit_id=None).certified

    def test_c_h_partition(self):
        report = self.make()
        assert list(report.c_reports) == ["a.c"]
        assert list(report.h_reports) == ["b.h"]

    def test_configs_tried(self):
        assert self.make().configs_tried() == 1

    def test_render_header(self):
        text = self.make().render()
        assert "CERTIFIED" in text
        assert "abc123def" in text
        assert "12.5s" in text

    def test_render_attention_required(self):
        report = self.make()
        report.file_reports["c.c"] = FileReport(
            path="c.c", status=FileStatus.O_FAILED)
        assert "ATTENTION REQUIRED" in report.render()
