"""Tests for source-line classification."""

import pytest

from repro.core.sourcemap import LineClass, SourceMap

SAMPLE = """\
/*
 * Header comment block.
 */
#include <linux/kernel.h>

#define REG_BASE 0x100
#define MUX(x) \\
\t(((x) & 0xf) << 4) | \\
\t(((x) & 0xf) << 0)

#ifdef CONFIG_PCI
static int with_pci;
#else
static int without_pci;
#endif

static int probe(void)
{
\t/* multi
\t   line */ int after_comment = 1;
\treturn after_comment;
}
"""


@pytest.fixture
def source_map():
    return SourceMap("f.c", SAMPLE)


class TestClassification:
    def test_comment_block(self, source_map):
        for lineno in (1, 2, 3):
            assert source_map.classify(lineno) is LineClass.COMMENT

    def test_include_is_directive(self, source_map):
        assert source_map.classify(4) is LineClass.DIRECTIVE

    def test_blank_is_code(self, source_map):
        assert source_map.classify(5) is LineClass.CODE

    def test_single_line_define(self, source_map):
        assert source_map.classify(6) is LineClass.MACRO_DEF
        region = source_map.macro_at(6)
        assert region.name == "REG_BASE"
        assert (region.start, region.end) == (6, 6)

    def test_multiline_define(self, source_map):
        for lineno in (7, 8, 9):
            assert source_map.classify(lineno) is LineClass.MACRO_DEF
        region = source_map.macro_at(8)
        assert region.name == "MUX"
        assert (region.start, region.end) == (7, 9)

    def test_conditionals(self, source_map):
        assert source_map.classify(11) is LineClass.CONDITIONAL  # ifdef
        assert source_map.classify(13) is LineClass.CONDITIONAL  # else
        # #endif is NOT a mutation boundary: §III-B lists only #if
        # (incl. #ifdef/#ifndef), #else, and #elif.
        assert source_map.classify(15) is LineClass.DIRECTIVE

    def test_ordinary_code(self, source_map):
        assert source_map.classify(12) is LineClass.CODE
        assert source_map.classify(17) is LineClass.CODE

    def test_comment_interior_line(self, source_map):
        assert source_map.classify(19) is LineClass.COMMENT  # "/* multi"

    def test_mid_comment_code_line(self, source_map):
        info = source_map.info(20)
        assert info.line_class is LineClass.CODE
        assert info.starts_mid_comment
        assert SAMPLE.split("\n")[19][:info.comment_end_column] \
            .endswith("*/")

    def test_out_of_range_raises(self, source_map):
        with pytest.raises(IndexError):
            source_map.classify(999)


class TestConditionalAnchors:
    def test_before_any_conditional(self, source_map):
        assert source_map.last_conditional_before(6) == 0

    def test_inside_ifdef(self, source_map):
        assert source_map.last_conditional_before(12) == 11

    def test_inside_else(self, source_map):
        assert source_map.last_conditional_before(14) == 13

    def test_after_endif_sees_else(self, source_map):
        # endif is not a boundary per §III-B's list (only #if*, #else,
        # #elif), so line 17's nearest boundary is the #else at 13.
        assert source_map.last_conditional_before(17) == 13


class TestEdgeCases:
    def test_line_comment_only(self):
        source_map = SourceMap("f.c", "// just a note\nint x;\n")
        assert source_map.classify(1) is LineClass.COMMENT
        assert source_map.classify(2) is LineClass.CODE

    def test_star_continuation_comment(self):
        source_map = SourceMap("f.c", "/*\n * note\n */\n")
        assert source_map.classify(2) is LineClass.COMMENT

    def test_define_inside_comment_not_macro(self):
        source_map = SourceMap("f.c", "/*\n#define GONE 1\n*/\nint x;\n")
        assert source_map.classify(2) is LineClass.COMMENT
        assert source_map.macros == []

    def test_code_then_comment_same_line(self):
        source_map = SourceMap("f.c", "int x; /* trailing */\n")
        assert source_map.classify(1) is LineClass.CODE

    def test_ifndef_is_conditional(self):
        source_map = SourceMap("f.c", "#ifndef A\nint x;\n#endif\n")
        assert source_map.classify(1) is LineClass.CONDITIONAL

    def test_elif_is_conditional(self):
        text = "#if A\nint x;\n#elif B\nint y;\n#endif\n"
        source_map = SourceMap("f.c", text)
        assert source_map.classify(3) is LineClass.CONDITIONAL

    def test_macro_at_non_macro_line(self):
        source_map = SourceMap("f.c", "int x;\n")
        assert source_map.macro_at(1) is None

    def test_empty_file(self):
        source_map = SourceMap("f.c", "")
        assert source_map.line_count() == 0

    def test_define_at_last_line_without_newline(self):
        source_map = SourceMap("f.c", "#define X 1")
        assert source_map.classify(1) is LineClass.MACRO_DEF

    def test_continuation_at_eof(self):
        source_map = SourceMap("f.c", "#define X \\")
        region = source_map.macro_at(1)
        assert region is not None
        assert region.end == 1
