"""Tests for architecture-selection heuristics over the generated tree."""

import pytest

from repro.core.archselect import ArchSelector, Candidate
from repro.kbuild.build import BuildSystem
from repro.util.rng import DeterministicRng


@pytest.fixture
def selector(tree):
    build = BuildSystem(tree.provider(),
                        path_lister=lambda: sorted(tree.files))
    return ArchSelector(build, lambda: sorted(tree.files), tree.provider(),
                        rng=DeterministicRng(7))


class TestArchFiles:
    def test_arch_file_maps_to_owning_toolchains(self, selector):
        selection = selector.select("arch/arm/kernel/arm_setup0.c")
        assert [c.arch for c in selection.candidates] == ["arm"]

    def test_x86_file_offers_both_variants(self, selector):
        selection = selector.select("arch/x86/kernel/x86_setup0.c")
        assert {c.arch for c in selection.candidates} == {"i386", "x86_64"}

    def test_unsupported_arch_dir_reported(self, tree):
        files = dict(tree.files)
        files["arch/hexagon/kernel/h.c"] = "int x;\n"
        build = BuildSystem(files.get, path_lister=lambda: sorted(files))
        selector = ArchSelector(build, lambda: sorted(files), files.get)
        selection = selector.select("arch/hexagon/kernel/h.c")
        assert selection.candidates == []
        assert "hexagon" in selection.unsupported


class TestDriverFiles:
    def test_host_tried_first(self, selector, tree):
        driver = tree.driver_files()[0]
        selection = selector.select(driver)
        assert selection.candidates[0] == Candidate("x86_64")

    def test_arch_gated_driver_adds_owner_arch(self, selector, tree):
        gated = [info for info in tree.info.values()
                 if info.arch_gate is not None]
        assert gated
        info = gated[0]
        selection = selector.select(info.path)
        arch_prefix = info.arch_gate.split("_SPECIAL_BUS")[0].lower()
        archs = {c.arch for c in selection.candidates}
        assert any(arch.startswith(arch_prefix) for arch in archs), \
            (info.arch_gate, archs)

    def test_defconfig_candidates_when_variable_in_configs(self, selector,
                                                           tree):
        # find a driver whose symbol appears in some defconfig
        for info in tree.info.values():
            if info.kind != "driver_c" or not info.config_symbol:
                continue
            needle = f"CONFIG_{info.config_symbol}="
            in_configs = any(
                needle in text
                for path, text in tree.files.items()
                if "/configs/" in path)
            if in_configs:
                selection = selector.select(info.path)
                targets = {c.config_target for c in selection.candidates}
                assert targets != {"allyesconfig"}, info.path
                return
        pytest.fail("no driver symbol found in any defconfig")

    def test_use_configs_false_suppresses_defconfigs(self, tree):
        build = BuildSystem(tree.provider(),
                            path_lister=lambda: sorted(tree.files))
        selector = ArchSelector(build, lambda: sorted(tree.files),
                                tree.provider(), use_configs=False)
        for info in tree.info.values():
            if info.kind == "driver_c":
                selection = selector.select(info.path)
                assert all(c.config_target == "allyesconfig"
                           for c in selection.candidates)
                return

    def test_no_makefile_flag(self, tree):
        files = dict(tree.files)
        files["orphan/widget.c"] = "int x;\n"
        build = BuildSystem(files.get, path_lister=lambda: sorted(files))
        selector = ArchSelector(build, lambda: sorted(files), files.get)
        selection = selector.select("orphan/widget.c")
        assert selection.no_makefile

    def test_candidates_deduplicated(self, selector, tree):
        driver = tree.driver_files()[0]
        selection = selector.select(driver)
        assert len(selection.candidates) == len(set(selection.candidates))

    def test_deterministic_selection(self, tree):
        def fresh():
            build = BuildSystem(tree.provider(),
                                path_lister=lambda: sorted(tree.files))
            return ArchSelector(build, lambda: sorted(tree.files),
                                tree.provider(),
                                rng=DeterministicRng(7))
        driver = tree.driver_files()[3]
        assert fresh().select(driver).candidates == \
            fresh().select(driver).candidates
