"""Failure injection: JMake must degrade gracefully, never crash.

Each test corrupts the tree or the patch in a way real kernel work
produces (missing Makefiles, broken headers, unsupported architectures,
preprocessor-hostile source) and asserts a structured verdict.
"""

import pytest

from repro.core.jmake import JMake, JMakeOptions
from repro.core.report import FileStatus
from repro.kernel.generator import generate_tree
from repro.vcs.diff import Patch, diff_texts


@pytest.fixture(scope="module")
def tree():
    return generate_tree()


def check_edited(tree, files, path, old, new, **options):
    original = files[path]
    edited = original.replace(old, new)
    assert edited != original
    files = dict(files)
    files[path] = edited
    worktree = JMake.worktree_for_files(files)
    patch = Patch(files=[diff_texts(path, original, edited)])
    jmake = JMake.from_generated_tree(
        tree, options=JMakeOptions(**options) if options else None)
    return jmake.check_patch(worktree, patch)


class TestTreeCorruption:
    def test_missing_makefile(self, tree):
        files = dict(tree.files)
        files["orphan/widget.c"] = "int widget = 1;\n"
        report = check_edited(tree, files, "orphan/widget.c",
                              "int widget = 1;", "int widget = 2;")
        assert report.file_reports["orphan/widget.c"].status is \
            FileStatus.NO_MAKEFILE

    def test_unsupported_architecture(self, tree):
        files = dict(tree.files)
        files["arch/hexagon/kernel/init.c"] = "int hexagon_init = 3;\n"
        files["arch/hexagon/kernel/Makefile"] = "obj-y += init.o\n"
        report = check_edited(tree, files, "arch/hexagon/kernel/init.c",
                              "= 3;", "= 4;")
        assert report.file_reports["arch/hexagon/kernel/init.c"].status \
            is FileStatus.UNSUPPORTED_ARCH

    def test_broken_include_everywhere(self, tree):
        """A file whose include can never resolve: .i fails on every
        candidate."""
        files = dict(tree.files)
        target = "fs/ext4/ext40.c"
        files[target] = '#include <linux/nonexistent.h>\n' + files[target]
        report = check_edited(tree, files, target,
                              "int status = 0;", "int status = 1;")
        assert report.file_reports[target].status is FileStatus.I_FAILED

    def test_deleted_shared_header_breaks_i(self, tree):
        files = dict(tree.files)
        del files["include/linux/device.h"]
        target = "fs/ext4/ext40.c"
        report = check_edited(tree, files, target,
                              "int status = 0;", "int status = 1;")
        assert report.file_reports[target].status is FileStatus.I_FAILED

    def test_pre_existing_syntax_error_fails_o(self, tree):
        """The tree already has a broken file (unbalanced brace): the
        mutants surface in the .i but the clean .o can never build."""
        files = dict(tree.files)
        target = "fs/ext4/ext40.c"
        files[target] = files[target] + "\nint broken(void) {\n"
        report = check_edited(tree, files, target,
                              "int status = 0;", "int status = 1;")
        assert report.file_reports[target].status is FileStatus.O_FAILED


class TestPatchShapes:
    def test_patch_touching_missing_file_skipped(self, tree):
        """A diff for a path the worktree lacks must not crash."""
        original = "int ghost = 1;\n"
        edited = "int ghost = 2;\n"
        patch = Patch(files=[diff_texts("drivers/ghost.c",
                                        original, edited)])
        worktree = JMake.worktree_for_files(dict(tree.files))
        report = JMake.from_generated_tree(tree) \
            .check_patch(worktree, patch)
        assert "drivers/ghost.c" not in report.file_reports

    def test_empty_patch(self, tree):
        worktree = JMake.worktree_for_files(dict(tree.files))
        report = JMake.from_generated_tree(tree) \
            .check_patch(worktree, Patch())
        assert report.file_reports == {}
        assert not report.certified

    def test_change_past_end_of_file(self, tree):
        """Changed line numbers beyond EOF are tolerated (the removal
        rule can point one past the last line)."""
        from repro.core.mutation import MutationEngine
        plan = MutationEngine().plan("f.c", "int a;\n", [99])
        assert plan.mutations == []

    def test_whole_file_rewrite(self, tree):
        """Replacing most of a driver still produces a verdict."""
        target = "fs/ext4/ext41.c"
        files = dict(tree.files)
        original = files[target]
        edited = ("#include <linux/kernel.h>\n\n"
                  "int rewritten(void)\n{\n\treturn 7;\n}\n")
        files[target] = edited
        worktree = JMake.worktree_for_files(files)
        patch = Patch(files=[diff_texts(target, original, edited)])
        report = JMake.from_generated_tree(tree) \
            .check_patch(worktree, patch)
        assert report.file_reports[target].status in (
            FileStatus.OK, FileStatus.LINES_NOT_COMPILED)


class TestWorktreeHygiene:
    def test_overlay_clean_after_check(self, tree):
        """check_patch must leave the worktree pristine (reset --hard)."""
        target = "fs/ext4/ext40.c"
        files = dict(tree.files)
        original = files[target]
        edited = original.replace("int status = 0;", "int status = 9;")
        files[target] = edited
        worktree = JMake.worktree_for_files(files)
        patch = Patch(files=[diff_texts(target, original, edited)])
        JMake.from_generated_tree(tree).check_patch(worktree, patch)
        assert worktree.overlay == {}
        assert worktree.read(target) == edited  # committed state intact

    def test_repeated_checks_are_deterministic(self, tree):
        target = "fs/ext4/ext40.c"
        files = dict(tree.files)
        original = files[target]
        edited = original.replace("int status = 0;", "int status = 9;")
        files[target] = edited
        patch = Patch(files=[diff_texts(target, original, edited)])

        def run():
            worktree = JMake.worktree_for_files(files)
            report = JMake.from_generated_tree(tree) \
                .check_patch(worktree, patch)
            file_report = report.file_reports[target]
            return (file_report.status, tuple(file_report.useful_archs),
                    report.invocation_counts)

        assert run() == run()


class TestAdvisories:
    def test_ifndef_change_flagged_before_builds(self, tree):
        """The §VII user-assistance extension: changes under #ifndef are
        flagged as unpromising in the report."""
        from repro.kernel.layout import HazardKind
        target = next(path for path, info in sorted(tree.info.items())
                      if HazardKind.IFNDEF in info.hazards)
        report = check_edited(tree, dict(tree.files), target,
                              "_fallback(void)", "_fallback_next(void)")
        file_report = report.file_reports[target]
        assert file_report.advisories
        assert "ifndef" in file_report.advisories[0]
        assert "advisory" in file_report.render()

    def test_plain_change_not_flagged(self, tree):
        report = check_edited(tree, dict(tree.files), "fs/ext4/ext40.c",
                              "int status = 0;", "int status = 4;")
        assert not report.file_reports["fs/ext4/ext40.c"].advisories
