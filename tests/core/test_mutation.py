"""Tests for mutation placement — the §III-B rules."""

from repro.core.mutation import MUTATION_CHAR, Mutation, MutationEngine
from repro.cpp.preprocessor import Preprocessor


def plan_for(text, changed, path="drivers/x/f.c"):
    return MutationEngine().plan(path, text, changed)


class TestTokenFormat:
    def test_shape(self):
        token = Mutation.make_token("define", "drivers/a.c", 49)
        assert token == '`"define:drivers/a.c:49"'

    def test_invalid_char_outside_string(self):
        token = Mutation.make_token("code", "f.c", 1)
        assert token.startswith(MUTATION_CHAR)
        assert token[1] == '"'


class TestCommentChanges:
    def test_comment_only_change_needs_no_mutation(self):
        text = "/*\n * old text\n */\nint x;\n"
        plan = plan_for(text, [2])
        assert plan.mutations == []
        assert plan.comment_lines == [2]
        assert plan.mutated_text == text

    def test_mixed_comment_and_code(self):
        text = "/* note */\nint x;\n"
        plan = plan_for(text, [1, 2])
        assert plan.comment_lines == [1]
        assert len(plan.mutations) == 1


class TestMacroPlacement:
    def test_change_on_define_line_appends(self):
        """Paper Fig. 2, first example: mutation at end of the line."""
        text = "#define HI(x) (((x) & 0xf) << 4)\nint v = HI(1);\n"
        plan = plan_for(text, [1])
        first_line = plan.mutated_text.split("\n")[0]
        assert first_line.startswith("#define HI(x) (((x) & 0xf) << 4)")
        assert plan.mutations[0].token in first_line

    def test_change_on_define_line_with_continuation(self):
        """Fig. 2, third example: token goes before the backslash."""
        text = ("#define SINGLE(x) (HI(x) | \\\n"
                "\tLO(x))\n")
        plan = plan_for(text, [1])
        first_line = plan.mutated_text.split("\n")[0]
        assert first_line.endswith("\\")
        assert plan.mutations[0].token in first_line
        # still a valid continuation: the second line is unchanged
        assert plan.mutated_text.split("\n")[1] == "\tLO(x))"

    def test_change_in_macro_body_inserts_continuation_line(self):
        """Fig. 2, last example: a new '<token> \\' line before the
        first modified line."""
        text = ("#define M(x) \\\n"
                "\tfirst(x) \\\n"
                "\tsecond(x)\n")
        plan = plan_for(text, [3])
        lines = plan.mutated_text.split("\n")
        assert lines[2].strip().startswith(MUTATION_CHAR)
        assert lines[2].rstrip().endswith("\\")
        assert lines[3] == "\tsecond(x)"

    def test_one_mutation_per_macro(self):
        text = ("#define M(x) \\\n"
                "\ta(x) \\\n"
                "\tb(x) \\\n"
                "\tc(x)\n")
        plan = plan_for(text, [2, 3, 4])
        assert len(plan.mutations) == 1
        assert plan.mutations[0].kind == "define"

    def test_two_macros_two_mutations(self):
        text = ("#define A(x) (x)\n"
                "#define B(x) (x)\n")
        plan = plan_for(text, [1, 2])
        assert len(plan.mutations) == 2

    def test_macro_hints_recorded(self):
        text = "#define DAS16CS_AI_MUX(x) ((x) & 0xf)\n"
        plan = plan_for(text, [1])
        assert plan.macro_hints == ["DAS16CS_AI_MUX"]

    def test_define_token_type(self):
        text = "#define A 1\n"
        plan = plan_for(text, [1])
        assert plan.mutations[0].token.startswith('`"define:')


class TestCodePlacement:
    def test_line_before_changed_code(self):
        """Paper Fig. 3: token on its own line before the change."""
        text = "int a;\nint b;\nint c;\n"
        plan = plan_for(text, [2])
        lines = plan.mutated_text.split("\n")
        assert lines[1] == plan.mutations[0].token
        assert lines[2] == "int b;"

    def test_one_mutation_per_conditional_group(self):
        """One mutation since file start or the last conditional."""
        text = "int a;\nint b;\nint c;\n"
        plan = plan_for(text, [1, 2, 3])
        assert len(plan.mutations) == 1

    def test_conditional_splits_groups(self):
        text = ("int a;\n"
                "#ifdef CONFIG_X\n"
                "int b;\n"
                "#else\n"
                "int c;\n"
                "#endif\n")
        plan = plan_for(text, [1, 3, 5])
        # three groups: before #ifdef, after #ifdef, after #else
        assert len(plan.mutations) == 3

    def test_changes_same_group_after_conditional(self):
        text = ("#ifdef CONFIG_X\n"
                "int a;\n"
                "int b;\n"
                "#endif\n")
        plan = plan_for(text, [2, 3])
        assert len(plan.mutations) == 1

    def test_mid_comment_change_placed_after_comment_end(self):
        """§III-B: 'if the changed line begins in the middle of a comment
        that ends in the current line, the mutation is placed after the
        end of the comment'."""
        text = ("int a; /* spans\n"
                "   over */ int changed = 1;\n")
        plan = plan_for(text, [2])
        lines = plan.mutated_text.split("\n")
        token = plan.mutations[0].token
        assert token in lines[1]
        before, after = lines[1].split(token, 1)
        assert before.rstrip().endswith("*/")
        assert "int changed = 1;" in after

    def test_code_token_type(self):
        plan = plan_for("int a;\n", [1])
        assert plan.mutations[0].token.startswith('`"code:')

    def test_out_of_range_lines_ignored(self):
        plan = plan_for("int a;\n", [1, 999])
        assert len(plan.mutations) == 1


class TestMutatedTextIntegrity:
    def test_original_preserved(self):
        text = "int a;\nint b;\n"
        plan = plan_for(text, [2])
        assert plan.original_text == text
        restored = plan.mutated_text.replace(
            plan.mutations[0].token + "\n", "")
        assert restored == text

    def test_empty_change_list(self):
        plan = plan_for("int a;\n", [])
        assert plan.mutations == []
        assert plan.mutated_text == "int a;\n"

    def test_token_search_helpers(self):
        plan = plan_for("int a;\n", [1])
        token = plan.mutations[0].token
        assert plan.tokens_found_in(f"xx {token} yy") == {token}
        assert plan.tokens_missing_in("nothing here") == {token}


class TestPreprocessorInteraction:
    """End-to-end: mutated text through the real preprocessor."""

    def pp(self, files, main):
        return Preprocessor(files.get).preprocess(main)

    def test_macro_mutation_surfaces_at_use(self):
        text = ("#define MUX(x) (((x) & 0xf) << 4)\n"
                "int v = MUX(3);\n")
        plan = plan_for(text, [1], path="f.c")
        result = self.pp({"f.c": plan.mutated_text}, "f.c")
        assert plan.tokens_found_in(result.text) == set(plan.tokens)

    def test_multiline_macro_mutation_surfaces(self):
        text = ("#define SINGLE(x) \\\n"
                "\t(HI(x) | \\\n"
                "\t LO(x))\n"
                "#define HI(x) ((x) << 4)\n"
                "#define LO(x) ((x) << 0)\n"
                "int v = SINGLE(2);\n")
        plan = plan_for(text, [3], path="f.c")
        result = self.pp({"f.c": plan.mutated_text}, "f.c")
        assert plan.tokens_found_in(result.text) == set(plan.tokens)

    def test_unused_macro_mutation_never_surfaces(self):
        text = "#define ORPHAN(x) ((x) + 1)\nint v = 2;\n"
        plan = plan_for(text, [1], path="f.c")
        result = self.pp({"f.c": plan.mutated_text}, "f.c")
        assert plan.tokens_found_in(result.text) == set()

    def test_code_mutation_under_unset_ifdef_vanishes(self):
        text = ("#ifdef CONFIG_NOPE\n"
                "int rare;\n"
                "#endif\n"
                "int common;\n")
        plan = plan_for(text, [2], path="f.c")
        result = self.pp({"f.c": plan.mutated_text}, "f.c")
        assert plan.tokens_found_in(result.text) == set()

    def test_code_mutation_in_active_code_surfaces(self):
        text = "int a;\nint changed;\n"
        plan = plan_for(text, [2], path="f.c")
        result = self.pp({"f.c": plan.mutated_text}, "f.c")
        assert plan.tokens_found_in(result.text) == set(plan.tokens)

    def test_mutated_text_still_preprocesses_cleanly(self):
        """Mutations must never break .i generation."""
        text = ("#define A(x) (x)\n"
                "#ifdef CONFIG_X\n"
                "int a = A(1);\n"
                "#endif\n"
                "int b = A(2);\n")
        plan = plan_for(text, [1, 3, 5], path="f.c")
        result = self.pp({"f.c": plan.mutated_text}, "f.c")
        assert "int b" in result.text
