"""Property-based tests over the patch → mutate → token-grep pipeline.

Random patches are pushed through the same chain the evaluation uses:
``diff_texts`` → ``render``/``parse_patch`` → ``changed_new_linenos``
→ ``MutationEngine.plan`` → preprocess/compile. The invariants:

- a changed ordinary-code line yields exactly one ```"type:file:line"``
  token; lines sharing a conditional-anchored group share that group's
  single token (the engine's §III-A grouping);
- mutated sources always preprocess — a mutation must never break
  ``make file.i``;
- whenever a token survives preprocessing, the unit never compiles
  clean: the backtick is a guaranteed stray-character diagnostic.
"""

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.cc.compiler import Compiler
from repro.cc.toolchain import ToolchainRegistry
from repro.core.mutation import Mutation, MutationEngine
from repro.core.sourcemap import LineClass, SourceMap
from repro.errors import CompileError
from repro.util.text import split_lines_keepends
from repro.vcs.diff import diff_texts, parse_patch

from tests.core.test_mutation_properties import (
    LINE_POOL,
    source_strategy,
)

TOKEN_SHAPE = re.compile(r'^`"(code|define):f\.c:(\d+)"$')

# Conditional-free pool: every code line is always active, so every
# placed "code" token is guaranteed to surface in the .i output.
FLAT_POOL = [line for line in LINE_POOL
             if line not in ("#ifdef CONFIG_X", "#endif")]

flat_source = st.lists(st.sampled_from(FLAT_POOL),
                       min_size=3, max_size=20).map(
    lambda lines: "\n".join(lines) + "\n")

X86 = ToolchainRegistry().get("x86_64")


def compiler_for(text):
    return Compiler(X86, {"f.c": text}.get)


def expected_groups(text, changed):
    """Mirror the engine's grouping: (macro regions, code anchors)."""
    source_map = SourceMap("f.c", text)
    macro_starts, anchors = set(), set()
    for lineno in changed:
        if not 1 <= lineno <= source_map.line_count():
            continue
        line_class = source_map.classify(lineno)
        if line_class is LineClass.COMMENT:
            continue
        if line_class is LineClass.MACRO_DEF:
            macro_starts.add(source_map.macro_at(lineno).start)
        else:
            anchors.add(source_map.last_conditional_before(lineno))
    return macro_starts, anchors


def changed_via_diff(old, new):
    """The evaluation's own changed-line extraction, round-tripped."""
    file_diff = diff_texts("f.c", old, new)
    if file_diff is None:
        return None
    return parse_patch(file_diff.render()).file("f.c").changed_new_linenos()


class TestTokenPlacement:
    @given(flat_source, st.data())
    @settings(max_examples=80)
    def test_single_code_line_yields_exactly_one_token(self, text, data):
        source_map = SourceMap("f.c", text)
        code_lines = [info.lineno for info in source_map.lines
                      if info.line_class is LineClass.CODE
                      and info.text.strip()]
        if not code_lines:
            return
        lineno = data.draw(st.sampled_from(code_lines))
        plan = MutationEngine().plan("f.c", text, [lineno])
        assert len(plan.mutations) == 1
        mutation = plan.mutations[0]
        assert mutation.kind == "code"
        assert mutation.line == lineno
        assert mutation.token == Mutation.make_token("code", "f.c", lineno)
        assert plan.mutated_text.count(mutation.token) == 1

    @given(source_strategy, st.data())
    @settings(max_examples=80)
    def test_one_token_per_changed_group(self, text, data):
        line_count = len(split_lines_keepends(text))
        changed = data.draw(st.lists(
            st.integers(min_value=1, max_value=line_count),
            min_size=1, max_size=8, unique=True))
        plan = MutationEngine().plan("f.c", text, changed)
        macro_starts, anchors = expected_groups(text, changed)
        assert len(plan.mutations) == len(macro_starts) + len(anchors)
        # each code group's token certifies the group's first change
        code_lines = {m.line for m in plan.mutations if m.kind == "code"}
        for anchor in anchors:
            group = [lineno for lineno in changed
                     if 1 <= lineno <= line_count
                     and SourceMap("f.c", text).classify(lineno)
                     not in (LineClass.COMMENT, LineClass.MACRO_DEF)
                     and SourceMap("f.c", text)
                     .last_conditional_before(lineno) == anchor]
            assert min(group) in code_lines

    @given(source_strategy, st.data())
    @settings(max_examples=80)
    def test_tokens_have_the_documented_shape(self, text, data):
        line_count = len(split_lines_keepends(text))
        changed = data.draw(st.lists(
            st.integers(min_value=1, max_value=line_count),
            min_size=1, max_size=8, unique=True))
        plan = MutationEngine().plan("f.c", text, changed)
        for mutation in plan.mutations:
            match = TOKEN_SHAPE.match(mutation.token)
            assert match is not None
            assert match.group(1) == mutation.kind
            assert int(match.group(2)) == mutation.line


class TestDiffDrivenPipeline:
    @given(source_strategy, source_strategy)
    @settings(max_examples=60)
    def test_diffed_changes_group_like_direct_changes(self, old, new):
        changed = changed_via_diff(old, new)
        if changed is None:
            return
        plan = MutationEngine().plan("f.c", new, changed)
        macro_starts, anchors = expected_groups(new, changed)
        assert len(plan.mutations) == len(macro_starts) + len(anchors)

    @given(source_strategy, source_strategy)
    @settings(max_examples=60)
    def test_mutated_sources_always_preprocess(self, old, new):
        changed = changed_via_diff(old, new)
        if changed is None:
            return
        plan = MutationEngine().plan("f.c", new, changed)
        result = compiler_for(plan.mutated_text).preprocess("f.c")
        assert result.text is not None


class TestNeverCompilesClean:
    @given(flat_source, st.data())
    @settings(max_examples=60)
    def test_surfaced_tokens_fail_compilation(self, text, data):
        line_count = len(split_lines_keepends(text))
        changed = data.draw(st.lists(
            st.integers(min_value=1, max_value=line_count),
            min_size=1, max_size=6, unique=True))
        plan = MutationEngine().plan("f.c", text, changed)
        compiler = compiler_for(plan.mutated_text)
        i_text = compiler.preprocess("f.c").text
        surfaced = plan.tokens_found_in(i_text)
        code_tokens = [m.token for m in plan.mutations if m.kind == "code"]
        # conditional-free source: every code token is active
        assert surfaced >= set(code_tokens)
        if not surfaced:
            return
        # the backtick lexes as a stray character, one per token
        strays = compiler.lex("f.c").stray_characters
        assert len(strays) >= len(surfaced)
        with pytest.raises(CompileError) as excinfo:
            compiler.compile_object("f.c")
        assert "stray" in str(excinfo.value)

    @given(flat_source, st.data())
    @settings(max_examples=40)
    def test_comment_only_changes_leave_source_untouched(self, text, data):
        source_map = SourceMap("f.c", text)
        comments = [info.lineno for info in source_map.lines
                    if info.line_class is LineClass.COMMENT]
        if not comments:
            return
        lineno = data.draw(st.sampled_from(comments))
        plan = MutationEngine().plan("f.c", text, [lineno])
        assert plan.mutations == []
        assert plan.mutated_text == text
        assert plan.comment_lines == [lineno]
