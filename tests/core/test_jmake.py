"""End-to-end JMake tests over the generated tree.

Each test crafts a patch touching a specific kind of line and asserts the
verdict the paper's design demands.
"""

import pytest

from repro.core.jmake import JMake, JMakeOptions
from repro.core.report import FileStatus
from repro.kernel.layout import HazardKind

from tests.core.conftest import edit_file


def first_with_hazard(tree, kind, *, file_kind="driver_c"):
    for path in sorted(tree.info):
        info = tree.info[path]
        if info.kind == file_kind and kind in info.hazards:
            return info
    pytest.skip(f"no {file_kind} with hazard {kind}")


def run(jmake, tree, path, old, new):
    patch, worktree = edit_file(tree, None, path, old, new)
    return jmake.check_patch(worktree, patch)


class TestPlainChanges:
    def test_ordinary_code_change_certified(self, jmake, tree):
        # fs/ext4 drivers are plain bools with no affinity
        path = "fs/ext4/ext40.c"
        report = run(jmake, tree, path,
                     "int status = 0;", "int status = 0;\tint extra = 1;")
        file_report = report.file_reports[path]
        assert file_report.status is FileStatus.OK
        assert report.certified
        assert "x86_64" in file_report.useful_archs

    def test_macro_change_certified(self, jmake, tree):
        path = "fs/ext4/ext40.c"
        report = run(jmake, tree, path,
                     "_MUX_HI(x) (((x) & 0xf) << 4)",
                     "_MUX_HI(x) (((x) & 0x1f) << 4)")
        assert report.file_reports[path].status is FileStatus.OK

    def test_comment_only_change(self, jmake, tree):
        path = "fs/ext4/ext40.c"
        report = run(jmake, tree, path,
                     " * Generated substrate source",
                     " * Regenerated substrate source")
        file_report = report.file_reports[path]
        assert file_report.status is FileStatus.COMMENT_ONLY
        assert report.certified
        # no compilation should even be attempted
        assert report.invocation_counts.get("make_i", 0) == 0

    def test_elapsed_time_recorded(self, jmake, tree):
        path = "fs/ext4/ext40.c"
        report = run(jmake, tree, path, "int status = 0;",
                     "int status = 0; int t = 2;")
        assert report.elapsed_seconds > 0
        assert report.invocation_counts["config"] >= 1
        assert report.invocation_counts["make_i"] >= 1
        assert report.invocation_counts["make_o"] >= 1


class TestHazardVerdicts:
    def test_choice_unset_lines_not_compiled(self, jmake, tree):
        info = first_with_hazard(tree, HazardKind.CHOICE_UNSET)
        name = info.path.rsplit("/", 1)[1][:-2]
        report = run(jmake, tree, info.path,
                     "\treturn dev->id + 2;", "\treturn dev->id + 3;")
        file_report = report.file_reports[info.path]
        assert file_report.status is FileStatus.LINES_NOT_COMPILED
        assert file_report.missing_tokens
        assert not report.certified

    def test_never_set_lines_not_compiled(self, jmake, tree):
        info = first_with_hazard(tree, HazardKind.NEVER_SET)
        report = run(jmake, tree, info.path,
                     "\treturn dev->id - 1;", "\treturn dev->id - 9;")
        assert report.file_reports[info.path].status is \
            FileStatus.LINES_NOT_COMPILED

    def test_module_only_lines_not_compiled_without_allmod(self, jmake,
                                                           tree):
        info = first_with_hazard(tree, HazardKind.MODULE_ONLY)
        report = run(jmake, tree, info.path,
                     "_module_cleanup(void)", "_module_cleanup_v2(void)")
        assert report.file_reports[info.path].status is \
            FileStatus.LINES_NOT_COMPILED

    def test_module_only_rescued_by_allmodconfig(self, tree):
        """The E-A1 ablation: the §VII allmodconfig extension."""
        info = first_with_hazard(tree, HazardKind.MODULE_ONLY)
        if tree.info[info.path].subsystem in ("fs/ext4", "net/core", "mm"):
            pytest.skip("bool subsystem cannot build as module")
        jmake = JMake.from_generated_tree(
            tree, options=JMakeOptions(use_allmodconfig=True))
        report = run(jmake, tree, info.path,
                     "_module_cleanup(void)", "_module_cleanup_v2(void)")
        assert report.file_reports[info.path].status is FileStatus.OK

    def test_if_zero_lines_not_compiled(self, jmake, tree):
        info = first_with_hazard(tree, HazardKind.IF_ZERO)
        report = run(jmake, tree, info.path,
                     "\treturn 1;", "\treturn 2;")
        assert report.file_reports[info.path].status is \
            FileStatus.LINES_NOT_COMPILED

    def test_unused_macro_lines_not_compiled(self, jmake, tree):
        info = first_with_hazard(tree, HazardKind.UNUSED_MACRO)
        report = run(jmake, tree, info.path,
                     "_UNUSED_SHIFT(x) ((x) << 2)",
                     "_UNUSED_SHIFT(x) ((x) << 3)")
        assert report.file_reports[info.path].status is \
            FileStatus.LINES_NOT_COMPILED

    def test_ifndef_lines_not_compiled(self, jmake, tree):
        info = first_with_hazard(tree, HazardKind.IFNDEF)
        report = run(jmake, tree, info.path,
                     "_fallback(void)", "_fallback_v2(void)")
        assert report.file_reports[info.path].status is \
            FileStatus.LINES_NOT_COMPILED

    def test_ifdef_and_else_partial(self, jmake, tree):
        """Changes under both branches can never fully compile with one
        configuration set (§VII)."""
        import re
        from repro.vcs.diff import Patch, diff_texts
        info = first_with_hazard(tree, HazardKind.IFDEF_AND_ELSE)
        original = tree.files[info.path]
        fast = re.search(r"\treturn v << (\d);", original)
        slow = re.search(r"\treturn v \+ (\d);", original)
        assert fast and slow, "generator block shape changed"
        edited = original.replace(fast.group(0), "\treturn v << 9;") \
                         .replace(slow.group(0), "\treturn v + 99;")
        files = dict(tree.files)
        files[info.path] = edited
        worktree = JMake.worktree_for_files(files)
        combined = Patch(files=[diff_texts(info.path, original, edited)])
        report = jmake.check_patch(worktree, combined)
        file_report = report.file_reports[info.path]
        assert file_report.status is FileStatus.LINES_NOT_COMPILED
        # exactly one of the two branches compiled
        assert len(file_report.missing_tokens) == 1


class TestArchitectureHandling:
    def test_affine_driver_certified_via_other_arch(self, jmake, tree):
        affine = [info for info in tree.info.values()
                  if info.affine_arch and info.kind == "driver_c"]
        assert affine
        info = sorted(affine, key=lambda i: i.path)[0]
        report = run(jmake, tree, info.path,
                     "int status = 0;", "int status = 0; int n = 4;")
        file_report = report.file_reports[info.path]
        assert file_report.status is FileStatus.OK
        assert info.affine_arch in file_report.useful_archs
        assert "x86_64" not in file_report.useful_archs

    def test_arch_file_checked_on_owner(self, jmake, tree):
        path = "arch/arm/kernel/arm_setup0.c"
        old = tree.files[path]
        assert "_init(void)" in old
        report = run(jmake, tree, path, "_init(void)", "_probe(void)")
        file_report = report.file_reports[path]
        assert file_report.status is FileStatus.OK
        assert file_report.useful_archs == ["arm"]


class TestHeaderHandling:
    def test_header_change_covered_by_including_c(self, jmake, tree):
        """§III-E ideal case: compiling the patch's .c files covers the
        .h changes — here via the hfile pipeline with include+hints."""
        header = "fs/ext4/ext4_local0.h"
        report = run(jmake, tree, header,
                     "_HELPER(x) ((x) *", "_HELPER(x) (2 * (x) *")
        file_report = report.file_reports[header]
        assert file_report.status is FileStatus.OK

    def test_header_and_c_together(self, jmake, tree):
        """Patch touching both .h and .c: the .c compilation covers the
        header tokens (the 66%/76% population)."""
        from repro.vcs.diff import Patch, diff_texts
        header = "fs/ext4/ext4_local0.h"
        c_path = "fs/ext4/ext40.c"
        header_new = tree.files[header].replace(
            "_HELPER(x) ((x) *", "_HELPER(x) (2 * (x) *")
        c_new = tree.files[c_path].replace(
            "int status = 0;", "int status = 0; int k = 5;")
        files = dict(tree.files)
        files[header] = header_new
        files[c_path] = c_new
        worktree = JMake.worktree_for_files(files)
        patch = Patch(files=[
            diff_texts(header, tree.files[header], header_new),
            diff_texts(c_path, tree.files[c_path], c_new),
        ])
        report = jmake.check_patch(worktree, patch)
        assert report.file_reports[header].status is FileStatus.OK
        assert report.file_reports[c_path].status is FileStatus.OK
        # The header needed no extra candidate compilations.
        assert report.file_reports[header].candidate_compilations == 0

    def test_orphan_macro_header_change_not_compiled(self, jmake, tree):
        """Changing a macro no .c file uses: tokens can never surface."""
        header = "fs/ext4/ext4_local0.h"
        report = run(jmake, tree, header,
                     "_ORPHAN(x) ((x) -", "_ORPHAN(x) ((x) +")
        file_report = report.file_reports[header]
        assert file_report.status is FileStatus.LINES_NOT_COMPILED

    def test_shared_header_fanout(self, jmake, tree):
        """include/linux header: candidates found via include scans."""
        header = "include/linux/device.h"
        report = run(jmake, tree, header,
                     "\tint id;", "\tint id;\tint bus;")
        file_report = report.file_reports[header]
        assert file_report.status is FileStatus.OK


class TestSpecialCases:
    def test_bootstrap_file_untreatable(self, jmake, tree):
        path = "kernel/bounds.c"
        report = run(jmake, tree, path,
                     "int kernel_bounds = 64;", "int kernel_bounds = 128;")
        assert report.file_reports[path].status is \
            FileStatus.BOOTSTRAP_UNTREATABLE
        assert not report.certified

    def test_ignored_directory_file_skipped(self, jmake, tree):
        path = "tools/perf/builtin-top.c"
        report = run(jmake, tree, path,
                     "return 0;", "return 1;")
        assert path not in report.file_reports

    def test_check_commit_protocol(self, tree, jmake):
        """check_commit: diff vs parent, checkout, verify."""
        from repro.vcs.objects import Signature, Tree
        from repro.vcs.repository import Repository
        repo = Repository()
        base = repo.commit(Tree(tree.files), Signature(
            "Base", "base@x.org", "2015-11-01T00:00:00"), "v4.3")
        edited = dict(tree.files)
        edited["fs/ext4/ext40.c"] = edited["fs/ext4/ext40.c"].replace(
            "int status = 0;", "int status = 0; int c = 3;")
        change = repo.commit(Tree(edited), Signature(
            "Dev", "dev@x.org", "2015-11-02T00:00:00"), "ext4: add c")
        report = jmake.check_commit(repo, change.id)
        assert report.certified
        assert report.commit_id == change.id

    def test_rebuild_trigger_costs_heavily(self, tree):
        jmake = JMake.from_generated_tree(tree)
        path = "arch/powerpc/kernel/prom_init.c"
        patch, worktree = edit_file(tree, None, path,
                                    "int delay = 300;",
                                    "int delay = 400;")
        report = jmake.check_patch(worktree, patch)
        assert report.file_reports[path].status is FileStatus.OK
        assert report.elapsed_seconds > 6000
