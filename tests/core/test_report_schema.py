"""Record schema versioning: ``schema_version`` and migration."""

import pytest

from repro.core.report import (
    SCHEMA_VERSION,
    FileReport,
    FileStatus,
    PatchReport,
    migrate_record,
)
from repro.errors import SchemaError


def v1_record(**overrides):
    """A PR-3-era record: no schema_version, no fully_checked."""
    record = {
        "commit": "abc123",
        "certified": True,
        "verdict": "CERTIFIED",
        "elapsed_seconds": 12.5,
        "invocations": {"config": 1},
        "quarantined_archs": [],
        "faults": [],
        "files": {},
    }
    record.update(overrides)
    return record


def v2_record(**overrides):
    """A PR-4-era record: versioned, no journal block."""
    record = v1_record(schema_version=2, fully_checked=True)
    record.update(overrides)
    return record


def v3_record(**overrides):
    """A PR-5-era record: journal block, no attempts/author."""
    record = v2_record(schema_version=3,
                       journal={"dedup_key": "abc123"},
                       files={"a.c": {"status": "ok",
                                      "useful_archs": ["x86_64"]}})
    record.update(overrides)
    return record


class TestToDict:
    def test_records_carry_current_version(self):
        report = PatchReport(commit_id="abc")
        record = report.to_dict()
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["fully_checked"] is True

    def test_partial_reports_are_not_fully_checked(self):
        report = PatchReport(commit_id="abc",
                             quarantined_archs=["arm"])
        record = report.to_dict()
        assert record["fully_checked"] is False
        assert record["verdict"] == "PARTIAL:arm"

    def test_migrating_current_record_is_identity(self):
        report = PatchReport(commit_id="abc", file_reports={
            "a.c": FileReport(path="a.c", status=FileStatus.OK)})
        record = report.to_dict()
        assert migrate_record(record) == record

    def test_records_carry_the_journal_dedup_key(self):
        record = PatchReport(commit_id="abc").to_dict()
        assert record["journal"] == {"dedup_key": "abc"}


class TestMigration:
    def test_v1_upgrades_to_current(self):
        migrated = migrate_record(v1_record())
        assert migrated["schema_version"] == SCHEMA_VERSION
        assert migrated["fully_checked"] is True
        # the original is not mutated
        assert "schema_version" not in v1_record()

    def test_v1_quarantined_record_is_not_fully_checked(self):
        migrated = migrate_record(
            v1_record(quarantined_archs=["arm", "mips"],
                      verdict="PARTIAL:arm,mips"))
        assert migrated["fully_checked"] is False

    def test_pre_fault_layer_records_get_empty_defaults(self):
        ancient = v1_record()
        del ancient["quarantined_archs"]
        del ancient["faults"]
        migrated = migrate_record(ancient)
        assert migrated["quarantined_archs"] == []
        assert migrated["faults"] == []
        assert migrated["fully_checked"] is True

    def test_migration_does_not_mutate_input(self):
        original = v1_record()
        snapshot = dict(original)
        migrate_record(original)
        assert original == snapshot

    def test_v1_gains_the_journal_block(self):
        migrated = migrate_record(v1_record())
        assert migrated["journal"] == {"dedup_key": "abc123"}

    def test_v2_upgrades_to_current(self):
        migrated = migrate_record(v2_record())
        assert migrated["schema_version"] == SCHEMA_VERSION
        assert migrated["journal"] == {"dedup_key": "abc123"}
        # v2's own fields survive untouched
        assert migrated["fully_checked"] is True

    def test_v3_gains_the_v4_store_keys(self):
        migrated = migrate_record(v3_record())
        assert migrated["schema_version"] == SCHEMA_VERSION
        assert migrated["author"] is None
        assert migrated["files"]["a.c"]["attempts"] == []
        # pre-v4 facts survive for the store's arch fallback rows
        assert migrated["files"]["a.c"]["useful_archs"] == ["x86_64"]

    def test_v3_migration_does_not_share_file_entries(self):
        original = v3_record()
        migrated = migrate_record(original)
        migrated["files"]["a.c"]["attempts"].append({"arch": "x"})
        assert "attempts" not in original["files"]["a.c"]

    def test_future_version_raises(self):
        with pytest.raises(SchemaError, match="schema_version=99"):
            migrate_record(v1_record(schema_version=99))

    def test_garbage_version_raises(self):
        with pytest.raises(SchemaError):
            migrate_record(v1_record(schema_version="two"))

    def test_bool_version_raises(self):
        # True == 1 in Python; a bool is still not a version number
        with pytest.raises(SchemaError):
            migrate_record(v1_record(schema_version=True))

    def test_non_dict_record_raises(self):
        with pytest.raises(SchemaError):
            migrate_record(["not", "a", "record"])


class TestHardening:
    """Truncated and numerically-poisoned records are refused."""

    @pytest.mark.parametrize("missing", [
        "commit", "certified", "verdict", "files"])
    def test_truncated_record_raises(self, missing):
        record = v1_record()
        del record[missing]
        with pytest.raises(SchemaError, match="truncated"):
            migrate_record(record)

    @pytest.mark.parametrize("version_fixture", [v1_record, v2_record])
    def test_truncation_is_checked_at_every_version(self,
                                                    version_fixture):
        record = version_fixture()
        del record["verdict"]
        with pytest.raises(SchemaError):
            migrate_record(record)

    @pytest.mark.parametrize("poison", [
        float("nan"), float("inf"), float("-inf")])
    def test_non_finite_elapsed_raises(self, poison):
        with pytest.raises(SchemaError, match="non-finite"):
            migrate_record(v1_record(elapsed_seconds=poison))

    def test_current_version_records_are_validated_too(self):
        record = PatchReport(commit_id="abc").to_dict()
        record["elapsed_seconds"] = float("nan")
        with pytest.raises(SchemaError):
            migrate_record(record)

    def test_missing_elapsed_is_tolerated(self):
        # pre-timing records simply have no elapsed_seconds; absence
        # is not poisoning
        record = v1_record()
        del record["elapsed_seconds"]
        assert migrate_record(record)["schema_version"] == \
            SCHEMA_VERSION

    def test_non_mapping_files_raises(self):
        with pytest.raises(SchemaError, match="mapping"):
            migrate_record(v1_record(files=["a.c"]))
        with pytest.raises(SchemaError, match="mapping"):
            migrate_record(v1_record(files={"a.c": "ok"}))


class TestVerdictConsistency:
    """``fully_checked`` and ``PARTIAL:`` must agree — both ways."""

    def test_partial_verdict_claiming_fully_checked_raises(self):
        record = v2_record(verdict="PARTIAL:arm",
                           quarantined_archs=["arm"],
                           fully_checked=True)
        with pytest.raises(SchemaError, match="fully_checked is true"):
            migrate_record(record)

    def test_full_verdict_claiming_partial_raises(self):
        record = v2_record(verdict="CERTIFIED", fully_checked=False)
        with pytest.raises(SchemaError,
                           match="carries no PARTIAL quarantine"):
            migrate_record(record)

    def test_consistent_records_pass_both_ways(self):
        ok = v2_record(verdict="CERTIFIED", fully_checked=True)
        partial = v2_record(verdict="PARTIAL:arm",
                            quarantined_archs=["arm"],
                            fully_checked=False)
        assert migrate_record(ok)["fully_checked"] is True
        assert migrate_record(partial)["fully_checked"] is False

    def test_checked_at_current_version_too(self):
        record = PatchReport(commit_id="abc").to_dict()
        record["fully_checked"] = False
        with pytest.raises(SchemaError, match="inconsistent"):
            migrate_record(record)

    def test_v1_derivation_never_trips_the_guard(self):
        # v1 has no fully_checked: migration derives a consistent one
        migrated = migrate_record(
            v1_record(verdict="PARTIAL:arm",
                      quarantined_archs=["arm"]))
        assert migrated["fully_checked"] is False


class TestV4Fields:
    def test_records_carry_attempts_per_file(self):
        from repro.core.report import ArchAttempt
        report = PatchReport(commit_id="abc", file_reports={
            "a.c": FileReport(path="a.c", status=FileStatus.OK,
                              attempts=[ArchAttempt(
                                  arch="x86_64",
                                  config_target="allyesconfig",
                                  i_ok=True, o_ok=True)])})
        entry = report.to_dict()["files"]["a.c"]
        assert entry["attempts"] == [
            {"arch": "x86_64", "config": "allyesconfig",
             "i_ok": True, "o_ok": True}]

    def test_unstamped_author_is_null(self):
        assert PatchReport(commit_id="abc").to_dict()["author"] is None

    def test_stamped_author_block(self):
        report = PatchReport(commit_id="abc")
        report.author_name = "Dan Carpenter"
        report.author_email = "dan@example.org"
        assert report.to_dict()["author"] == {
            "name": "Dan Carpenter", "email": "dan@example.org"}

    def test_check_commit_stamps_the_author(self, small_corpus):
        from repro.core.jmake import CheckSession
        from repro.core.changes import extract_changed_files
        from repro.workload.corpus import Corpus
        repository = small_corpus.repository
        commit = next(
            c for c in repository.log(since=Corpus.TAG_EVAL_START,
                                      until=Corpus.TAG_EVAL_END)
            if extract_changed_files(repository.show(c)))
        session = CheckSession.from_generated_tree(small_corpus.tree)
        record = session.check_commit(repository, commit).to_dict()
        assert record["author"] == {"name": commit.author.name,
                                    "email": commit.author.email}
