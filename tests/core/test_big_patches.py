"""Integration tests for wide patches: batching and mixed file sets."""

import pytest

from repro.core.jmake import JMake, JMakeOptions
from repro.kernel.generator import KernelTreeGenerator, generate_tree
from repro.kernel.layout import default_tree_spec
from repro.vcs.diff import Patch, diff_texts


@pytest.fixture(scope="module")
def big_tree():
    # driver_scale=6 yields ~400 driver files: enough to overflow a
    # single 50-file make invocation.
    return KernelTreeGenerator(
        default_tree_spec(driver_scale=6, seed="big-tree")).generate()


def edit_many(tree, paths):
    files = dict(tree.files)
    file_diffs = []
    for path in paths:
        original = files[path]
        edited = original.replace("int status = 0;",
                                  "int status = 0; int wide = 1;")
        assert edited != original, path
        files[path] = edited
        file_diffs.append(diff_texts(path, original, edited))
    worktree = JMake.worktree_for_files(files)
    return worktree, Patch(files=file_diffs)


class TestWidePatch:
    def test_patch_wider_than_batch_limit(self, big_tree):
        """§III-D: compilations are limited to 50 files at a time, but
        a wider patch must still be fully processed."""
        drivers = [path for path in big_tree.driver_files()
                   if path.startswith("fs/ext4/")
                   or path.startswith("net/core/")
                   or path.startswith("mm/")]
        # extend with more plain drivers until we exceed the limit
        extra = [path for path in big_tree.driver_files()
                 if path.startswith("drivers/char/")]
        targets = []
        for path in drivers + extra:
            if "int status = 0;" in big_tree.files[path]:
                targets.append(path)
        assert len(targets) > 55, f"only {len(targets)} editable drivers"
        worktree, patch = edit_many(big_tree, targets)
        jmake = JMake.from_generated_tree(
            big_tree, options=JMakeOptions(batch_limit=50))
        report = jmake.check_patch(worktree, patch)

        assert len(report.file_reports) == len(targets)
        # the host pass needed at least two make invocations
        assert report.invocation_counts["make_i"] >= 2
        certified = sum(1 for fr in report.file_reports.values()
                        if fr.certified)
        assert certified >= len(targets) * 0.8

    def test_header_candidate_cap_triggers_on_fanout(self, big_tree):
        """§III-E: more than 100 candidate .c files switches the .h
        pipeline to allyesconfig-only — exercised by a shared header
        every driver includes."""
        from repro.core.archselect import ArchSelector
        from repro.core.hfile import HFileProcessor
        from repro.core.mutation import MutationEngine
        from repro.kbuild.build import BuildSystem

        header = "include/linux/kernel.h"
        text = big_tree.files[header]
        # change the max() macro: every driver uses it
        lineno = text.split("\n").index(
            "#define max(a, b) ((a) > (b) ? (a) : (b))") + 1
        plan = MutationEngine().plan(header, text, [lineno])
        assert plan.mutations

        from repro.core.jmake import JMake
        worktree = JMake.worktree_for_files(big_tree.files)
        build = BuildSystem(worktree.as_file_provider(),
                            path_lister=worktree.paths)
        selector = ArchSelector(build, worktree.paths,
                                worktree.as_file_provider())
        processor = HFileProcessor(build, selector, worktree.paths,
                                   worktree.as_file_provider(),
                                   candidate_cap=100)
        candidates = processor.candidates_for(plan)
        assert len(candidates) > 100

        worktree.write(header, plan.mutated_text)
        report = processor.process(worktree, plan, set())
        assert report.status.value == "ok"
        # allyes-only mode: no defconfig targets were attempted
        assert all(attempt.config_target == "allyesconfig"
                   for attempt in report.attempts)

    def test_mixed_c_and_h_wide_patch(self, big_tree):
        headers = [path for path in big_tree.header_files()
                   if path.startswith("fs/ext4/")][:1]
        c_files = [path for path in big_tree.driver_files()
                   if path.startswith("fs/ext4/")
                   and "int status = 0;" in big_tree.files[path]][:3]
        files = dict(big_tree.files)
        file_diffs = []
        for path in c_files:
            original = files[path]
            edited = original.replace("int status = 0;",
                                      "int status = 0; int mixed = 2;")
            files[path] = edited
            file_diffs.append(diff_texts(path, original, edited))
        header = headers[0]
        original = files[header]
        edited = original.replace("_LIMIT ", "_LIMIT  ")
        if edited == original:
            pytest.skip("header has no LIMIT macro")
        # whitespace change would vanish under -w; bump a digit instead
        import re
        match = re.search(r"_LIMIT (\d+)", original)
        edited = original.replace(match.group(0),
                                  f"_LIMIT {int(match.group(1)) + 1}")
        files[header] = edited
        file_diffs.append(diff_texts(header, original, edited))

        worktree = JMake.worktree_for_files(files)
        report = JMake.from_generated_tree(big_tree).check_patch(
            worktree, Patch(files=file_diffs))
        assert header in report.file_reports
        assert all(path in report.file_reports for path in c_files)
