"""PARTIAL verdict plumbing, and the keep_going silent-abort regression.

``make_vmlinux(keep_going=True)`` records per-unit failures instead of
raising; callers that only looked at the returned image silently
absorbed them, counting a partially built kernel as fully checked. The
explicit :attr:`VmlinuxBuild.verdict` (and, at the evaluation level,
:attr:`PatchRecord.fully_checked`) is the regression surface.
"""

import pytest

from repro.evalsuite.runner import EvaluationRunner
from repro.faults.plan import FaultPlan, FaultSpec
from repro.kbuild.build import BuildError, VmlinuxBuild

from tests.faults.conftest import make_build_system, plan_of

WIFI_FAULT = {"kind": "io_error", "site": "compile",
              "path": "drivers/net/wifi.c", "times": 10}


class TestVmlinuxVerdict:
    def test_clean_build_is_clean(self):
        build = VmlinuxBuild(image=object(), arch="x86_64")
        assert build.clean
        assert build.verdict == "CLEAN"

    def test_failures_degrade_the_verdict(self):
        build = VmlinuxBuild(image=object(), arch="x86_64",
                             failed={"a.c": "boom"})
        assert not build.clean
        assert build.verdict == "PARTIAL:x86_64"

    def test_verdict_without_arch_still_partial(self):
        build = VmlinuxBuild(image=object(), failed={"a.c": "boom"})
        assert build.verdict == "PARTIAL"


class TestKeepGoingRegression:
    def test_unfaulted_tree_builds_clean(self, tree):
        build = make_build_system(tree)
        config = build.make_config("x86_64", "allyesconfig")
        result = build.make_vmlinux("x86_64", config)
        assert result.verdict == "CLEAN"
        assert result.failed == {}

    def test_keep_going_failure_is_not_silent(self, tree):
        """The image links, but the verdict must still say PARTIAL."""
        build = make_build_system(tree, plan=plan_of(WIFI_FAULT))
        config = build.make_config("x86_64", "allyesconfig")
        result = build.make_vmlinux("x86_64", config, keep_going=True)
        assert result.image is not None       # truthiness is the trap
        assert list(result.failed) == ["drivers/net/wifi.c"]
        assert result.verdict == "PARTIAL:x86_64"

    def test_keep_going_false_raises(self, tree):
        build = make_build_system(tree, plan=plan_of(WIFI_FAULT))
        config = build.make_config("x86_64", "allyesconfig")
        with pytest.raises(BuildError) as excinfo:
            build.make_vmlinux("x86_64", config, keep_going=False)
        assert excinfo.value.kind == "io_error"


@pytest.fixture(scope="module")
def arm_benched(small_corpus):
    """A run whose every arm configuration fails persistently."""
    plan = FaultPlan(seed="bench-arm", specs=[
        FaultSpec(kind="config_fail", arch="arm", times=10)])
    return EvaluationRunner(small_corpus, fault_plan=plan).run(limit=10)


class TestRunnerPartial:
    def test_arm_commits_degrade_to_partial(self, arm_benched):
        partial = [patch for patch in arm_benched.patches
                   if patch.verdict.startswith("PARTIAL")]
        assert partial, "no commit exercised the arm toolchain"
        for patch in partial:
            assert patch.verdict == "PARTIAL:arm"
            assert patch.quarantined_archs == ["arm"]

    def test_partial_commits_are_not_fully_checked(self, arm_benched):
        for patch in arm_benched.patches:
            assert patch.fully_checked == (not patch.quarantined_archs)
        assert any(not patch.fully_checked
                   for patch in arm_benched.patches)

    def test_partial_verdict_in_canonical_records(self, arm_benched):
        assert "verdict=PARTIAL:arm" in arm_benched.canonical_records()

    def test_unbenched_commits_keep_normal_verdicts(self, arm_benched):
        whole = [patch for patch in arm_benched.patches
                 if patch.fully_checked]
        assert whole, "every commit was benched — plan too aggressive"
        for patch in whole:
            assert patch.verdict in ("CERTIFIED", "ATTENTION REQUIRED")
