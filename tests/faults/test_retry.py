"""Bounded retry, exponential backoff, and deterministic step timeouts."""

import pytest

from repro.faults.plan import FaultSpec
from repro.faults.resilience import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.kbuild.build import BuildError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

from tests.faults.conftest import make_build_system, plan_of


class TestRetryPolicy:
    def test_defaults(self):
        assert DEFAULT_RETRY_POLICY.max_retries == 2
        assert DEFAULT_RETRY_POLICY.max_attempts == 3
        assert DEFAULT_RETRY_POLICY.step_timeout_seconds is None

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base_seconds=1.0, backoff_factor=2.0)
        assert [policy.backoff_seconds(i) for i in range(3)] == \
            [1.0, 2.0, 4.0]

    def test_clamp_without_timeout_is_identity(self):
        assert RetryPolicy().clamp_attempt_seconds(30.0) == 30.0

    def test_clamp_with_timeout(self):
        policy = RetryPolicy(step_timeout_seconds=0.5)
        assert policy.clamp_attempt_seconds(30.0) == 0.5
        assert policy.clamp_attempt_seconds(0.1) == 0.1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_base"):
            RetryPolicy(backoff_base_seconds=-0.5)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="step_timeout"):
            RetryPolicy(step_timeout_seconds=0)


class TestTransientRecovery:
    def test_config_flake_recovers_on_retry(self, tree):
        build = make_build_system(
            tree, plan=plan_of({"kind": "config_fail", "times": 1}),
            metrics=MetricsRegistry())
        config = build.make_config("x86_64", "allyesconfig")
        assert config.enabled("PCI")
        # one doomed attempt charged its cost, one backoff slept
        assert build.clock.durations("fault") == [2.0]
        assert build.clock.durations("retry_backoff") == [1.0]
        counters = build.metrics.to_dict()["counters"]
        assert counters["build.retries"] == 1
        assert counters["build.faults.injected"] == 1
        assert counters["build.faults.config_fail"] == 1

    def test_preprocess_flake_recovers(self, tree):
        build = make_build_system(
            tree, plan=plan_of({"kind": "preprocess_flake", "times": 1}))
        config = build.make_config("x86_64", "allyesconfig")
        results = build.make_i(["kernel/sched.c"], "x86_64", config)
        assert results[0].ok
        assert "schedule" in results[0].i_text
        assert build.clock.durations("fault") == [3.0]

    def test_retry_emits_spans(self, tree):
        tracer = Tracer()
        build = make_build_system(
            tree, plan=plan_of({"kind": "config_fail", "times": 1}),
            tracer=tracer)
        build.make_config("x86_64", "allyesconfig")
        spans = [span for root in tracer.drain() for span in root.walk()]
        retries = [span for span in spans if span.name == "retry"]
        assert len(retries) == 1
        assert retries[0].attributes["fault_kind"] == "config_fail"
        assert retries[0].attributes["backoff"] == 1.0

    def test_custom_attempt_cost(self, tree):
        build = make_build_system(
            tree, plan=plan_of({"kind": "io_error", "site": "preprocess",
                                "times": 1, "cost_seconds": 7.5}))
        config = build.make_config("x86_64", "allyesconfig")
        build.make_i(["kernel/sched.c"], "x86_64", config)
        assert build.clock.durations("fault") == [7.5]


class TestPersistentFailure:
    def test_preprocess_exhausts_budget(self, tree):
        build = make_build_system(
            tree, plan=plan_of({"kind": "preprocess_flake", "times": 5}),
            metrics=MetricsRegistry())
        config = build.make_config("x86_64", "allyesconfig")
        results = build.make_i(["kernel/sched.c"], "x86_64", config)
        assert not results[0].ok
        assert results[0].error_kind == "preprocess_flake"
        # 3 doomed attempts, 2 backoffs (1s then 2s)
        assert build.clock.durations("fault") == [3.0, 3.0, 3.0]
        assert build.clock.durations("retry_backoff") == [1.0, 2.0]
        assert build.metrics.to_dict()["counters"]["build.retries"] == 2

    def test_compile_fault_surfaces_as_build_error(self, tree):
        build = make_build_system(
            tree, plan=plan_of({"kind": "compile_timeout", "times": 5}))
        config = build.make_config("x86_64", "allyesconfig")
        with pytest.raises(BuildError) as excinfo:
            build.make_o("kernel/sched.c", "x86_64", config)
        assert excinfo.value.kind == "timeout"

    def test_io_error_surfaces_with_its_own_kind(self, tree):
        build = make_build_system(
            tree, plan=plan_of({"kind": "io_error", "site": "config",
                                "times": 5}))
        with pytest.raises(BuildError) as excinfo:
            build.make_config("x86_64", "allyesconfig")
        assert excinfo.value.kind == "io_error"

    def test_zero_retries_fails_on_first_fault(self, tree):
        build = make_build_system(
            tree, plan=plan_of({"kind": "config_fail", "times": 1}),
            retry_policy=RetryPolicy(max_retries=0))
        with pytest.raises(BuildError) as excinfo:
            build.make_config("x86_64", "allyesconfig")
        assert excinfo.value.kind == "config_failed"
        assert build.clock.durations("retry_backoff") == []


class TestStepTimeout:
    def test_config_timeout(self, tree):
        build = make_build_system(
            tree, retry_policy=RetryPolicy(step_timeout_seconds=1e-6),
            metrics=MetricsRegistry())
        with pytest.raises(BuildError) as excinfo:
            build.make_config("x86_64", "allyesconfig")
        assert excinfo.value.kind == "timeout"
        assert build.metrics.to_dict()["counters"]["build.timeouts"] == 1
        # the step burned exactly the timeout budget before failing
        assert build.clock.durations("config") == [1e-6]

    def test_config_timeout_quarantines_the_arch(self, tree):
        build = make_build_system(
            tree, retry_policy=RetryPolicy(step_timeout_seconds=1e-6))
        with pytest.raises(BuildError):
            build.make_config("x86_64", "allyesconfig")
        with pytest.raises(BuildError) as excinfo:
            build.make_config("x86_64", "allyesconfig")
        assert excinfo.value.kind == "quarantined"

    def test_compile_timeout(self, tree):
        config = make_build_system(tree).make_config("x86_64",
                                                     "allyesconfig")
        build = make_build_system(
            tree, retry_policy=RetryPolicy(step_timeout_seconds=1e-6))
        with pytest.raises(BuildError) as excinfo:
            build.make_o("kernel/sched.c", "x86_64", config)
        assert excinfo.value.kind == "timeout"

    def test_generous_timeout_changes_nothing(self, tree):
        build = make_build_system(
            tree, retry_policy=RetryPolicy(step_timeout_seconds=1e9))
        config = build.make_config("x86_64", "allyesconfig")
        assert build.make_o("kernel/sched.c", "x86_64", config) is not None

    def test_fault_cost_clamped_by_timeout(self, tree):
        # config built without the tiny timeout (it would trip on it);
        # make_i itself has no cost-model timeout check, so only the
        # clamp on the injected fault's charge is exercised
        config = make_build_system(tree).make_config("x86_64",
                                                     "allyesconfig")
        build = make_build_system(
            tree, plan=plan_of({"kind": "preprocess_flake", "times": 1}),
            retry_policy=RetryPolicy(step_timeout_seconds=0.25))
        results = build.make_i(["kernel/sched.c"], "x86_64", config)
        assert results[0].ok
        # the flake's 3s default cost is capped at the step timeout
        assert build.clock.durations("fault") == [0.25]
