"""Graceful degradation across the whole fault matrix.

For every legal (kind, site) combination, a plan that fires that fault
on every eligible attempt is run over the shared corpus. The contract:

- the pipeline always completes — no fault ever escapes to the caller;
- faults only ever *degrade* verdicts: a file the faulted run calls OK
  was OK in the fault-free baseline too (no false COMPILED);
- every injected fault leaves exactly one structured FaultReport.
"""

import pytest

from repro.evalsuite.runner import EvaluationRunner
from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    PROCESS_SITES,
    SITE_CACHE_LOAD,
    SITE_CACHE_STORE,
    valid_kind_sites,
)

LIMIT = 4

STEP_SITES = ("config", "preprocess", "compile")

#: the sequential pipeline's matrix; process-level kinds (worker
#: crash/hang, torn journal writes) have their own chaos suites in
#: tests/faults/test_chaos.py and tests/service/test_supervisor.py
PIPELINE_MATRIX = [combo for combo in valid_kind_sites()
                   if combo[1] not in PROCESS_SITES]


@pytest.fixture(scope="module")
def baseline(small_corpus):
    return EvaluationRunner(small_corpus).run(limit=LIMIT)


@pytest.fixture(scope="module", params=PIPELINE_MATRIX,
                ids=lambda combo: "@".join(combo))
def faulted_combo(request, small_corpus):
    """(kind, site, result) for one always-firing single-rule plan."""
    kind, site = request.param
    plan = FaultPlan(seed="matrix", specs=[
        FaultSpec(kind=kind, site=site, times=10)])
    result = EvaluationRunner(small_corpus, fault_plan=plan,
                              observe=True).run(limit=LIMIT)
    return kind, site, result


def ok_instances(result):
    """(commit, path) pairs whose file verdict was a success."""
    return {(record.commit_id, record.path)
            for patch in result.patches for record in patch.files
            if record.status.is_success}


class TestFaultMatrix:
    def test_pipeline_completes(self, faulted_combo, baseline):
        _, _, result = faulted_combo
        # same commit population: no fault ever raised to the caller
        assert [patch.commit_id for patch in result.patches] == \
            [patch.commit_id for patch in baseline.patches]

    def test_faults_only_degrade_verdicts(self, faulted_combo, baseline):
        _, _, result = faulted_combo
        # no false COMPILED: success claims are a subset of baseline's
        assert ok_instances(result) <= ok_instances(baseline)

    def test_verdicts_stay_well_formed(self, faulted_combo):
        _, _, result = faulted_combo
        for patch in result.patches:
            assert patch.verdict in ("CERTIFIED", "ATTENTION REQUIRED") \
                or patch.verdict.startswith("PARTIAL:")

    def test_every_injected_fault_is_reported(self, faulted_combo):
        kind, site, result = faulted_combo
        reports = [report for patch in result.patches
                   for report in patch.fault_reports]
        assert reports, f"{kind}@{site} never fired in {LIMIT} commits"
        for report in reports:
            assert report.kind == kind
            assert report.site == site
            assert report.attempt >= 1
        if site in STEP_SITES:
            # step-site firings are also counted by the build system;
            # the structured reports must match one-for-one
            counters = result.metrics.to_dict()["counters"]
            assert counters["build.faults.injected"] == len(reports)
            assert counters[f"build.faults.{kind}"] == len(reports)


class TestCacheSiteFaultsAreHarmless:
    """Corruption costs time, never correctness (load/store sites)."""

    @pytest.mark.parametrize("kind,site", [
        ("cache_corrupt", SITE_CACHE_LOAD),
        ("io_error", SITE_CACHE_STORE),
    ])
    def test_verdicts_identical_to_baseline(self, small_corpus, baseline,
                                            kind, site):
        plan = FaultPlan(seed="matrix", specs=[
            FaultSpec(kind=kind, site=site, times=10)])
        result = EvaluationRunner(small_corpus,
                                  fault_plan=plan).run(limit=LIMIT)
        assert result.canonical_records() == baseline.canonical_records()
