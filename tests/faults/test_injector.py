"""Unit tests for the deterministic fault injector."""

from repro.faults.inject import NULL_INJECTOR, FaultInjector, FaultReport
from repro.faults.plan import FaultPlan, FaultSpec


def injector_of(*specs, seed="inj-test"):
    return FaultInjector(FaultPlan(seed=seed, specs=list(specs)))


class TestFiring:
    def test_fires_at_most_times_per_key(self):
        injector = injector_of(FaultSpec(kind="preprocess_flake", times=2))
        fired = [injector.fire("preprocess", arch="arm", path="a.c")
                 for _ in range(5)]
        assert [spec is not None for spec in fired] == \
            [True, True, False, False, False]

    def test_distinct_keys_have_independent_budgets(self):
        injector = injector_of(FaultSpec(kind="preprocess_flake", times=1))
        assert injector.fire("preprocess", arch="arm", path="a.c")
        assert injector.fire("preprocess", arch="arm", path="b.c")
        assert injector.fire("preprocess", arch="x86_64", path="a.c")
        assert not injector.fire("preprocess", arch="arm", path="a.c")

    def test_scope_reset_restores_budget(self):
        injector = injector_of(FaultSpec(kind="preprocess_flake", times=1))
        injector.begin_scope("commit-1")
        assert injector.fire("preprocess", arch="arm", path="a.c")
        assert not injector.fire("preprocess", arch="arm", path="a.c")
        injector.begin_scope("commit-2")
        assert injector.fire("preprocess", arch="arm", path="a.c")

    def test_unmatched_site_never_fires(self):
        injector = injector_of(FaultSpec(kind="config_fail"))
        assert injector.fire("preprocess", arch="arm", path="a.c") is None

    def test_arch_and_path_filters(self):
        injector = injector_of(
            FaultSpec(kind="compile_timeout", arch="arm", path="drivers/"))
        assert injector.fire("compile", arch="x86_64",
                             path="drivers/net/wifi.c") is None
        assert injector.fire("compile", arch="arm",
                             path="kernel/sched.c") is None
        assert injector.fire("compile", arch="arm",
                             path="drivers/net/wifi.c") is not None

    def test_first_matching_rule_wins(self):
        injector = injector_of(
            FaultSpec(kind="preprocess_flake"),
            FaultSpec(kind="truncate_i"))
        spec = injector.fire("preprocess", arch="arm", path="a.c")
        assert spec.kind == "preprocess_flake"

    def test_rate_one_always_fires(self):
        injector = injector_of(FaultSpec(kind="io_error", rate=1.0,
                                         times=50))
        assert all(injector.fire("config", arch="arm") is not None
                   for _ in range(50))

    def test_rate_zero_never_fires(self):
        injector = injector_of(FaultSpec(kind="io_error", rate=0.0,
                                         times=50))
        assert all(injector.fire("config", arch="arm") is None
                   for _ in range(50))

    def test_fractional_rate_is_deterministic(self):
        def pattern(scope):
            injector = injector_of(
                FaultSpec(kind="preprocess_flake", rate=0.5, times=100))
            injector.begin_scope(scope)
            return [injector.fire("preprocess", arch="arm",
                                  path="a.c") is not None
                    for _ in range(100)]

        first, second = pattern("commit-1"), pattern("commit-1")
        assert first == second
        assert any(first)          # ~50 firings out of 100
        assert not all(first)
        assert pattern("commit-2") != first  # scope enters the draw


class TestReports:
    def test_one_report_per_firing(self):
        injector = injector_of(FaultSpec(kind="preprocess_flake", times=2))
        injector.begin_scope("c1")
        injector.fire("preprocess", arch="arm", path="a.c")
        injector.fire("preprocess", arch="arm", path="a.c")
        injector.fire("preprocess", arch="arm", path="a.c")  # over budget
        reports = injector.drain_reports()
        assert len(reports) == 2
        assert reports[0] == FaultReport(
            kind="preprocess_flake", site="preprocess", arch="arm",
            path="a.c", scope="c1", attempt=1)
        assert reports[1].attempt == 2

    def test_drain_clears(self):
        injector = injector_of(FaultSpec(kind="io_error"))
        injector.fire("config", arch="arm")
        assert injector.drain_reports()
        assert injector.drain_reports() == []

    def test_begin_scope_discards_pending_reports(self):
        injector = injector_of(FaultSpec(kind="io_error"))
        injector.fire("config", arch="arm")
        injector.begin_scope("next")
        assert injector.drain_reports() == []

    def test_fired_total_spans_scopes(self):
        injector = injector_of(FaultSpec(kind="io_error"))
        injector.begin_scope("c1")
        injector.fire("config", arch="arm")
        injector.begin_scope("c2")
        injector.fire("config", arch="arm")
        assert injector.fired_total == 2

    def test_report_render_and_dict(self):
        report = FaultReport(kind="io_error", site="compile", arch="arm",
                             path="a.c", scope="c1", attempt=3)
        assert report.render() == \
            "fault io_error at compile (arm/a.c) attempt 3"
        assert report.to_dict()["scope"] == "c1"


class TestNullInjector:
    def test_disabled_and_inert(self):
        assert not NULL_INJECTOR.enabled
        assert NULL_INJECTOR.fire("config", arch="arm") is None
        NULL_INJECTOR.begin_scope("c1")
        assert NULL_INJECTOR.drain_reports() == []
        assert NULL_INJECTOR.fired_total == 0

    def test_empty_plan_injector_is_disabled(self):
        assert not FaultInjector(FaultPlan()).enabled
        assert FaultInjector(None).fire("config", arch="arm") is None
