"""Fixtures for the fault-injection suite.

Build-system level tests reuse the small hand-written kernel-like tree
from the kbuild tests; pipeline-level tests run over the shared session
corpora from ``tests/conftest.py``.
"""

import pytest

from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.kbuild.build import BuildSystem

from tests.kbuild.conftest import TREE


@pytest.fixture
def tree():
    return dict(TREE)


def make_build_system(tree, *, plan=None, cache=None, **kwargs):
    """A TREE-backed BuildSystem wired to an injector for ``plan``."""
    injector = FaultInjector(plan) if plan is not None else None
    build = BuildSystem(
        tree.get,
        bootstrap_paths={"kernel/bounds.c"},
        rebuild_trigger_paths=set(),
        path_lister=lambda: sorted(tree),
        cache=cache,
        injector=injector,
        **kwargs,
    )
    if cache is not None and injector is not None:
        cache.injector = injector
    return build


def plan_of(*specs, seed="faults-test"):
    """A FaultPlan from inline (kind, **fields) rule tuples."""
    return FaultPlan(seed=seed,
                     specs=[FaultSpec(**spec) for spec in specs])


@pytest.fixture(scope="session")
def storm_plan():
    """A mixed plan touching every site — the determinism workhorse."""
    return FaultPlan(seed="storm", specs=[
        FaultSpec(kind="preprocess_flake", rate=0.3),
        FaultSpec(kind="compile_timeout", rate=0.15),
        FaultSpec(kind="config_fail", arch="arm", rate=0.5, times=5),
        FaultSpec(kind="truncate_i", rate=0.2),
        FaultSpec(kind="cache_corrupt", rate=0.1),
        FaultSpec(kind="io_error", site="cache_store", rate=0.1),
    ])
