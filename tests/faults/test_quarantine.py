"""The per-architecture circuit breaker and its PARTIAL verdicts."""

import pytest

from repro.core.report import PatchReport
from repro.faults.resilience import Quarantine
from repro.kbuild.build import BuildError
from repro.obs.metrics import MetricsRegistry

from tests.faults.conftest import make_build_system, plan_of


class TestQuarantineUnit:
    def test_config_failure_trips_immediately(self):
        quarantine = Quarantine()
        assert quarantine.record("arm", "config")
        assert quarantine.is_quarantined("arm")
        assert quarantine.reason("arm") == "config"

    def test_compile_failures_accrue_strikes(self):
        quarantine = Quarantine(threshold=3)
        assert not quarantine.record("arm", "compile")
        assert not quarantine.record("arm", "compile")
        assert quarantine.record("arm", "compile")
        assert quarantine.is_quarantined("arm")
        assert quarantine.reason("arm") == "compile"

    def test_strikes_are_per_arch(self):
        quarantine = Quarantine(threshold=2)
        quarantine.record("arm", "compile")
        quarantine.record("x86_64", "compile")
        assert not quarantine.is_quarantined("arm")
        assert not quarantine.is_quarantined("x86_64")

    def test_already_benched_arch_records_nothing_new(self):
        quarantine = Quarantine()
        assert quarantine.record("arm", "config")
        assert not quarantine.record("arm", "compile")
        assert quarantine.reason("arm") == "config"

    def test_archs_sorted(self):
        quarantine = Quarantine()
        quarantine.record("x86_64", "config")
        quarantine.record("arm", "config")
        assert quarantine.archs() == ["arm", "x86_64"]

    def test_reset(self):
        quarantine = Quarantine(threshold=2)
        quarantine.record("arm", "config")
        quarantine.record("mips", "compile")
        quarantine.reset()
        assert quarantine.archs() == []
        assert not quarantine.record("mips", "compile")  # strikes cleared

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            Quarantine(threshold=0)


class TestBuildSystemQuarantine:
    def test_persistent_config_failure_benches_the_arch(self, tree):
        build = make_build_system(
            tree, plan=plan_of({"kind": "config_fail", "times": 10}))
        with pytest.raises(BuildError) as excinfo:
            build.make_config("x86_64", "allyesconfig")
        assert excinfo.value.kind == "config_failed"
        assert build.quarantine.is_quarantined("x86_64")
        with pytest.raises(BuildError) as excinfo:
            build.make_config("x86_64", "allyesconfig")
        assert excinfo.value.kind == "quarantined"

    def test_other_archs_keep_working(self, tree):
        build = make_build_system(
            tree, plan=plan_of({"kind": "config_fail", "arch": "arm",
                                "times": 10}))
        with pytest.raises(BuildError):
            build.make_config("arm", "allyesconfig")
        config = build.make_config("x86_64", "allyesconfig")
        assert config.enabled("PCI")

    def test_compile_failures_take_threshold_strikes(self, tree):
        build = make_build_system(
            tree, plan=plan_of({"kind": "io_error", "site": "compile",
                                "times": 10}),
            metrics=MetricsRegistry())
        config = build.make_config("x86_64", "allyesconfig")
        for path in ("kernel/sched.c", "drivers/net/wifi.c"):
            with pytest.raises(BuildError) as excinfo:
                build.make_o(path, "x86_64", config)
            assert excinfo.value.kind == "io_error"
            assert not build.quarantine.is_quarantined("x86_64")
        with pytest.raises(BuildError):
            build.make_o("drivers/net/e1000.c", "x86_64", config)
        assert build.quarantine.is_quarantined("x86_64")
        with pytest.raises(BuildError) as excinfo:
            build.make_o("kernel/sched.c", "x86_64", config)
        assert excinfo.value.kind == "quarantined"

    def test_quarantined_arch_fails_fast(self, tree):
        """Fail-fast steps charge no fault cost and fire no new faults."""
        build = make_build_system(
            tree, plan=plan_of({"kind": "config_fail", "times": 10}))
        with pytest.raises(BuildError):
            build.make_config("x86_64", "allyesconfig")
        charged = len(build.clock.spans)
        with pytest.raises(BuildError, match="quarantined"):
            build.make_config("x86_64", "allyesconfig")
        assert len(build.clock.spans) == charged


class TestPartialVerdict:
    def test_patch_report_degrades_to_partial(self):
        report = PatchReport(commit_id="c1")
        report.quarantined_archs = ["arm"]
        assert report.verdict == "PARTIAL:arm"

    def test_partial_lists_every_benched_arch(self):
        report = PatchReport(commit_id="c1")
        report.quarantined_archs = ["arm", "mips"]
        assert report.verdict == "PARTIAL:arm,mips"

    def test_unquarantined_verdicts(self):
        report = PatchReport(commit_id="c1")
        assert report.verdict == "ATTENTION REQUIRED"  # no file reports

    def test_verdict_in_render_and_dict(self):
        report = PatchReport(commit_id="c1")
        report.quarantined_archs = ["arm"]
        assert "PARTIAL:arm" in report.render()
        payload = report.to_dict()
        assert payload["verdict"] == "PARTIAL:arm"
        assert payload["quarantined_archs"] == ["arm"]
