"""Process-level chaos primitives: CrashPoint and crash_offsets."""

import pytest

from repro.errors import SimulatedCrashError
from repro.faults.chaos import CrashPoint, crash_offsets


class TestCrashPoint:
    def test_fires_at_the_threshold(self):
        point = CrashPoint(3)
        point(1)
        point(2)
        with pytest.raises(SimulatedCrashError):
            point(3)

    def test_counts_its_own_observations(self):
        # the observer counts calls, not the sequence argument: a
        # resumed process that emits verdicts 5..8 with CrashPoint(2)
        # dies after its *second* fresh verdict
        point = CrashPoint(2)
        point(5)
        with pytest.raises(SimulatedCrashError):
            point(6)
        assert point.observed == 2

    def test_disarmed_point_never_fires(self):
        point = CrashPoint(1)
        point.armed = False
        for sequence in range(1, 10):
            point(sequence)
        assert point.observed == 9

    def test_keeps_firing_past_the_threshold(self):
        point = CrashPoint(2)
        point(1)
        with pytest.raises(SimulatedCrashError):
            point(2)
        with pytest.raises(SimulatedCrashError):
            point(3)

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_nonpositive_threshold_is_rejected(self, bad):
        with pytest.raises(ValueError):
            CrashPoint(bad)


class TestCrashOffsets:
    def test_deterministic(self):
        assert crash_offsets("s", 30, 3) == crash_offsets("s", 30, 3)

    def test_seed_sensitivity(self):
        assert crash_offsets("a", 30, 5) != crash_offsets("b", 30, 5)

    def test_distinct_sorted_in_range(self):
        offsets = crash_offsets("prop", 30, 5)
        assert len(offsets) == 5
        assert len(set(offsets)) == 5
        assert offsets == sorted(offsets)
        assert all(1 <= offset <= 29 for offset in offsets)

    def test_count_clamped_to_available_span(self):
        # total=3 leaves offsets {1, 2}: asking for 10 yields both
        assert sorted(crash_offsets("s", 3, 10)) == [1, 2]

    def test_offsets_leave_work_on_both_sides(self):
        # every offset kills after >=1 record with >=1 record left
        for total in (2, 5, 17):
            for offset in crash_offsets("edge", total, 4):
                assert 1 <= offset < total

    def test_too_short_run_is_rejected(self):
        with pytest.raises(ValueError):
            crash_offsets("s", 1, 1)
