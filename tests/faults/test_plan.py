"""Unit tests for fault-plan parsing, validation, and the seeded draw."""

import os

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (
    BUILTIN_KINDS,
    INJECTION_SITES,
    PIPELINE_SITES,
    PROCESS_SITES,
    FaultPlan,
    FaultSpec,
    unit_draw,
    valid_kind_sites,
)

EXAMPLE_PLAN = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples", "faultplan.json")


class TestFaultMatrix:
    def test_every_builtin_kind_has_a_site(self):
        kinds = {kind for kind, _ in valid_kind_sites()}
        assert kinds == set(BUILTIN_KINDS)

    def test_io_error_is_valid_at_every_pipeline_site(self):
        io_sites = {site for kind, site in valid_kind_sites()
                    if kind == "io_error"}
        assert io_sites == set(PIPELINE_SITES)

    def test_sites_partition_into_pipeline_and_process(self):
        assert set(INJECTION_SITES) == \
            set(PIPELINE_SITES) | set(PROCESS_SITES)
        assert not set(PIPELINE_SITES) & set(PROCESS_SITES)

    def test_matrix_size(self):
        # 5 single-site pipeline kinds + io_error at all 5 pipeline
        # sites + the 8 process-level kinds (worker crash/hang, torn
        # journal append, transport worker kill / socket drop, and the
        # net_partition / net_slow / net_half_open link faults)
        assert len(valid_kind_sites()) == 18


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="nope")

    def test_illegal_site_rejected(self):
        with pytest.raises(FaultPlanError, match="cannot be injected"):
            FaultSpec(kind="config_fail", site="compile")

    def test_default_site_is_the_kinds_first(self):
        assert FaultSpec(kind="config_fail").site == "config"
        assert FaultSpec(kind="truncate_i").site == "preprocess"
        assert FaultSpec(kind="io_error").site == "config"

    def test_rate_bounds(self):
        with pytest.raises(FaultPlanError, match="rate"):
            FaultSpec(kind="io_error", rate=1.5)
        with pytest.raises(FaultPlanError, match="rate"):
            FaultSpec(kind="io_error", rate=-0.1)

    def test_times_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="times"):
            FaultSpec(kind="io_error", times=0)

    def test_cost_cannot_be_negative(self):
        with pytest.raises(FaultPlanError, match="cost_seconds"):
            FaultSpec(kind="io_error", cost_seconds=-1.0)

    def test_attempt_cost_defaults_per_kind(self):
        assert FaultSpec(kind="config_fail").attempt_cost_seconds == 2.0
        assert FaultSpec(kind="truncate_i").attempt_cost_seconds == 0.0

    def test_attempt_cost_override(self):
        spec = FaultSpec(kind="config_fail", cost_seconds=7.5)
        assert spec.attempt_cost_seconds == 7.5


class TestFaultSpecMatching:
    def test_star_arch_matches_everything(self):
        spec = FaultSpec(kind="io_error", site="compile")
        assert spec.matches("compile", "x86_64", "a.c")
        assert spec.matches("compile", "arm", "b.c")

    def test_arch_filter(self):
        spec = FaultSpec(kind="io_error", site="compile", arch="arm")
        assert spec.matches("compile", "arm", "a.c")
        assert not spec.matches("compile", "x86_64", "a.c")

    def test_path_substring_filter(self):
        spec = FaultSpec(kind="io_error", site="compile", path="drivers/")
        assert spec.matches("compile", "arm", "drivers/net/e1000.c")
        assert not spec.matches("compile", "arm", "kernel/sched.c")

    def test_site_mismatch_never_matches(self):
        spec = FaultSpec(kind="io_error", site="compile")
        assert not spec.matches("preprocess", "arm", "a.c")


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(seed="rt", specs=[
            FaultSpec(kind="preprocess_flake", rate=0.25, times=3),
            FaultSpec(kind="io_error", site="cache_store",
                      path="preprocess:", cost_seconds=0.5),
        ])
        again = FaultPlan.loads(plan.dumps())
        assert again.to_dict() == plan.to_dict()
        assert again.seed == "rt"
        assert [spec.kind for spec in again.specs] == \
            ["preprocess_flake", "io_error"]

    def test_defaults_omitted_from_dict(self):
        record = FaultSpec(kind="config_fail").to_dict()
        assert record == {"kind": "config_fail", "site": "config"}

    def test_unknown_rule_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault fields"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "io_error", "color": "red"}]})

    def test_rule_needs_a_kind(self):
        with pytest.raises(FaultPlanError, match="needs a 'kind'"):
            FaultPlan.from_dict({"faults": [{"site": "config"}]})

    def test_unknown_plan_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan"):
            FaultPlan.from_dict({"seeds": 3})

    def test_faults_must_be_a_list(self):
        with pytest.raises(FaultPlanError, match="JSON array"):
            FaultPlan.from_dict({"faults": {"kind": "io_error"}})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="invalid fault-plan JSON"):
            FaultPlan.loads("{not json")

    def test_load_missing_file(self):
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.load("/nonexistent/faultplan.json")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan(seed=3, specs=[
            FaultSpec(kind="cache_corrupt")]).dumps())
        plan = FaultPlan.load(str(path))
        assert plan.seed == 3
        assert plan.specs[0].kind == "cache_corrupt"

    def test_shipped_example_plan_parses(self):
        plan = FaultPlan.load(EXAMPLE_PLAN)
        assert plan.seed == "storm-7"
        assert len(plan.specs) == 6

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(specs=[FaultSpec(kind="io_error")])


class TestUnitDraw:
    def test_in_unit_interval(self):
        for index in range(50):
            draw = unit_draw("seed", "scope", index)
            assert 0.0 <= draw < 1.0

    def test_deterministic(self):
        assert unit_draw("s", "c", 1, "config", "arm", "t", 2) == \
            unit_draw("s", "c", 1, "config", "arm", "t", 2)

    def test_identity_sensitive(self):
        draws = {unit_draw("s", "c", index) for index in range(32)}
        assert len(draws) == 32
