"""The acceptance surface for deterministic fault injection.

A fault plan's firing decisions are a pure function of (plan, commit),
so the canonical records of a faulted evaluation must be byte-identical
however the run is executed: serial or parallel, cache on or off,
observed or not. This is the fault-injection analogue of the cache
equivalence suite — under an *active* storm of mixed faults.
"""

import sys

import pytest

from repro.evalsuite.runner import EvaluationRunner
from repro.faults.plan import FaultPlan, FaultSpec

LIMIT = 30


@pytest.fixture(scope="module")
def faulted(small_corpus, storm_plan):
    """The reference run: serial, cached, unobserved, faults active."""
    return EvaluationRunner(small_corpus,
                            fault_plan=storm_plan).run(limit=LIMIT)


class TestFaultedRunIsDeterministic:
    def test_rerun_is_byte_identical(self, small_corpus, storm_plan,
                                     faulted):
        again = EvaluationRunner(small_corpus,
                                 fault_plan=storm_plan).run(limit=LIMIT)
        assert again.canonical_records() == faulted.canonical_records()

    @pytest.mark.skipif(sys.platform == "win32",
                        reason="fork start method required")
    def test_jobs_invariant(self, small_corpus, storm_plan, faulted):
        parallel = EvaluationRunner(
            small_corpus, fault_plan=storm_plan).run(limit=LIMIT, jobs=4)
        assert parallel.canonical_records() == faulted.canonical_records()

    def test_cache_invariant(self, small_corpus, storm_plan, faulted):
        uncached = EvaluationRunner(
            small_corpus, cache=False,
            fault_plan=storm_plan).run(limit=LIMIT)
        assert uncached.canonical_records() == faulted.canonical_records()

    def test_observability_invariant(self, small_corpus, storm_plan,
                                     faulted):
        observed = EvaluationRunner(
            small_corpus, observe=True,
            fault_plan=storm_plan).run(limit=LIMIT)
        assert observed.canonical_records() == faulted.canonical_records()


class TestStormActuallyStorms:
    def test_faults_were_injected(self, faulted):
        total = sum(len(patch.fault_reports)
                    for patch in faulted.patches)
        assert total > 0

    def test_faulted_run_differs_from_baseline(self, small_corpus,
                                               faulted):
        baseline = EvaluationRunner(small_corpus).run(limit=LIMIT)
        assert baseline.canonical_records() != faulted.canonical_records()

    def test_reports_follow_the_plan(self, faulted, storm_plan):
        planned_kinds = {spec.kind for spec in storm_plan.specs}
        for patch in faulted.patches:
            for report in patch.fault_reports:
                assert report.kind in planned_kinds
                assert report.scope == patch.commit_id
