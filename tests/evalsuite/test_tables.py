"""Tests for table renderers."""

from repro.evalsuite.tables import render_grid, table1, table2, table3, table4
from repro.janitors.identify import JanitorCriteria, RankedDeveloper
from repro.kernel.layout import HazardKind


class TestGrid:
    def test_alignment(self):
        text = render_grid(["a", "long header"], [["xx", "y"]])
        lines = text.split("\n")
        assert len({line.index("|") for line in lines
                    if "|" in line}) == 1


class TestTable1:
    def test_paper_thresholds(self):
        data, text = table1()
        assert data["# patches"] == ">= 10"
        assert data["# subsystems"] == ">= 20"
        assert data["# lists"] == ">= 3"
        assert data["# maintainer patches"] == "< 5%"
        assert "subsystems" in text


class TestTable2:
    def sample(self):
        return [
            RankedDeveloper("Dan Carpenter", "dan@x", 1554, 400, 146,
                            0.0, 0.43),
            RankedDeveloper("Axel Lin", "axel@x", 1044, 142, 49,
                            0.0, 0.92),
        ]

    def test_rows(self):
        data, text = table2(self.sample(),
                            tool_users={"Dan Carpenter"})
        assert data[0]["patches"] == 1554
        assert "Dan Carpenter (T)" in text
        assert "Axel Lin" in text
        assert "0.92" in text

    def test_intern_marker(self):
        _, text = table2(self.sample(), interns={"Axel Lin"})
        assert "Axel Lin (I)" in text


class TestTable3:
    def test_shares_sum_to_total(self, result):
        rows, text = table3(result)
        total = rows[0].all_patches.total
        assert sum(row.all_patches.count for row in rows) == total
        assert ".c files only" in text

    def test_c_only_dominates(self, result):
        """Table III shape: .c-only is the large majority, .h-only the
        smallest class, for both populations."""
        rows, _ = table3(result)
        by_label = {row.label: row for row in rows}
        c_only = by_label[".c files only"]
        h_only = by_label[".h files only"]
        both = by_label["both .c and .h files"]
        assert c_only.all_patches.fraction > 0.55
        assert h_only.all_patches.fraction < both.all_patches.fraction
        # janitors skew even more to .c-only (87% vs 70% in the paper)
        assert c_only.janitor_patches.fraction > \
            c_only.all_patches.fraction - 0.02


class TestTable4:
    def test_counts_small_and_plausible(self, result):
        counts, text = table4(result, janitor_only=False)
        assert sum(counts.values()) > 0
        assert all(count < 100 for count in counts.values())
        assert "allyesconfig" in text

    def test_janitor_counts_subset(self, result):
        all_counts, _ = table4(result, janitor_only=False)
        janitor_counts, _ = table4(result, janitor_only=True)
        for kind in HazardKind:
            if kind in all_counts:
                assert janitor_counts[kind] <= all_counts[kind]

    def test_never_set_category_appears(self, result):
        counts, _ = table4(result, janitor_only=False)
        assert counts[HazardKind.NEVER_SET] + \
            counts[HazardKind.CHOICE_UNSET] + \
            counts[HazardKind.UNUSED_MACRO] > 0
