"""Tests for in-text statistics and the experiment registry."""

from repro.evalsuite.experiments import (
    EXPERIMENTS,
    architecture_stats,
    cfile_benefit_stats,
    hfile_benefit_stats,
    limitation_stats,
    mutation_stats,
    summary_stats,
)


class TestRegistry:
    def test_all_design_md_ids_present(self):
        expected = {"E-F4a", "E-F4b", "E-F4c", "E-F5", "E-F6",
                    "E-S1", "E-S2", "E-S3", "E-S4", "E-S5", "E-S6"}
        assert expected <= set(EXPERIMENTS)

    def test_every_experiment_runs(self, result):
        for experiment in EXPERIMENTS.values():
            data, text = experiment.run(result)
            assert data is not None
            assert isinstance(text, str) and text


class TestArchitectureStats:
    def test_x86_dominates(self, result):
        """Paper: 96% of covered instances benefit from x86_64."""
        stats = architecture_stats(result)
        assert stats["all"]["x86_64_beneficial"].fraction >= 0.8
        assert stats["janitor"]["x86_64_beneficial"].fraction >= 0.8

    def test_non_host_population_small(self, result):
        stats = architecture_stats(result)
        covered = stats["all"]["instances_with_coverage"]
        non_host = stats["all"]["non_host_only_c_instances"]
        assert 0 < non_host < covered * 0.2

    def test_other_archs_listed(self, result):
        stats = architecture_stats(result)
        assert stats["all"]["other_arch_frequency"]


class TestMutationStats:
    def test_one_mutation_dominates(self, result):
        """Paper: 82% of .c instances need one mutation, 95% <=3."""
        stats = mutation_stats(result)
        assert stats["all_c"]["one_mutation"].fraction >= 0.7
        assert stats["all_c"]["at_most_three"].fraction >= 0.9

    def test_janitor_mutations_fewer(self, result):
        """Paper: janitor instances need fewer mutations (91% vs 82%)."""
        stats = mutation_stats(result)
        assert stats["janitor_c"]["one_mutation"].fraction >= \
            stats["all_c"]["one_mutation"].fraction - 0.05


class TestCfileBenefit:
    def test_overwhelming_majority_confirmed(self, result):
        """Paper: 88% of .c instances confirmed at first clean build."""
        stats = cfile_benefit_stats(result)
        assert stats["all"]["confirmed_first_compile"].fraction >= 0.8

    def test_insidious_few_percent(self, result):
        """Paper: 3% of .c instances are the insidious case."""
        stats = cfile_benefit_stats(result)
        assert 0.0 < stats["all"]["insidious"].fraction <= 0.12

    def test_janitor_insidious_never_rescued(self, result):
        """Paper: none of the janitors' 21 insidious instances could be
        rescued by more configurations."""
        stats = cfile_benefit_stats(result)
        janitor = stats["janitor"]
        assert janitor["never_rescued"] >= janitor["rescued_by_other_configs"]


class TestHfileBenefit:
    def test_majority_covered_by_patch_c(self, result):
        """Paper: 66% of .h instances are covered by the patch's own .c
        files; only 2% are never covered."""
        stats = hfile_benefit_stats(result)
        sub = stats["all"]
        assert sub["covered_by_patch_c_files"].fraction >= 0.4
        assert sub["never_compiled"].fraction <= 0.25

    def test_extra_candidates_bounded(self, result):
        stats = hfile_benefit_stats(result)
        assert stats["all"]["max_candidate_compilations"] <= 15


class TestSummary:
    def test_certified_rates(self, result):
        """Paper: 85% of all patches, 88% of janitor patches."""
        stats = summary_stats(result)
        assert 0.7 <= stats["all"].fraction <= 0.97
        assert stats["janitor"].fraction >= stats["all"].fraction - 0.08

    def test_single_config_majority(self, result):
        """Paper: 79-87% need a single configuration choice."""
        stats = summary_stats(result)
        assert stats["single_config_sufficient"].fraction >= 0.5


class TestLimitations:
    def test_bootstrap_population_about_two_percent(self, result):
        """Paper: 317 patches (2%) touch setup-compiled files."""
        stats = limitation_stats(result)
        assert stats["untreatable_file_instances"] >= 1
        assert stats["affected_patches"].fraction <= 0.08
