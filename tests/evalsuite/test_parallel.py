"""Tests for the parallel evaluation runner (§V-A's worker processes)."""

import sys

import pytest

from repro.evalsuite.runner import EvaluationRunner


@pytest.mark.skipif(sys.platform == "win32",
                    reason="fork start method required")
class TestParallelRun:
    def test_parallel_equals_serial(self, small_corpus):
        serial = EvaluationRunner(small_corpus).run(limit=30)
        parallel = EvaluationRunner(small_corpus).run(limit=30, jobs=3)

        assert len(parallel.patches) == len(serial.patches)
        for a, b in zip(serial.patches, parallel.patches):
            assert a.commit_id == b.commit_id
            assert a.certified == b.certified
            assert a.elapsed_seconds == pytest.approx(b.elapsed_seconds)
            assert a.invocation_counts == b.invocation_counts
            assert [f.status for f in a.files] == \
                [f.status for f in b.files]

    def test_parallel_ignored_accounting_matches(self, small_corpus):
        serial = EvaluationRunner(small_corpus).run()
        parallel = EvaluationRunner(small_corpus).run(jobs=2)
        assert serial.ignored_commits == parallel.ignored_commits
        assert serial.total_commits == parallel.total_commits
