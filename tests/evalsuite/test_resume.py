"""Kill/resume equivalence: the PR-5 acceptance surface.

INVARIANT (DESIGN.md §7): for any corpus window, any driver
(sequential, ``jobs=N``, service), cache on or off, fault storm or
clean — a run killed at any journal offset and resumed to completion
produces ``canonical_records()`` byte-identical to the uninterrupted
run. Verdicts are pure functions of (corpus, commit), the journal
codec round-trips them exactly, and the ledger's dedup keys make
re-emission impossible; this suite is what pins all three.
"""

import pytest

from repro.errors import (
    EvaluationError,
    JournalError,
    SimulatedCrashError,
)
from repro.evalsuite.runner import EvaluationSession
from repro.faults.chaos import CrashPoint, crash_offsets

LIMIT = 30
#: distinct seeded kill offsets per scenario (acceptance floor: 3)
KILLS = 3


@pytest.fixture(scope="module")
def baseline(small_corpus):
    """The uninterrupted, unjournaled reference run."""
    return EvaluationSession(small_corpus).run(limit=LIMIT)


@pytest.fixture(scope="module")
def faulted_baseline(small_corpus, storm_plan):
    return EvaluationSession(small_corpus,
                             fault_plan=storm_plan).run(limit=LIMIT)


def kill_resume_run(corpus, journal, *, offsets, session_kwargs=None,
                    run_kwargs=None):
    """Kill the run after each offset's fresh verdict, resuming every
    time; returns the final completed result.

    ``offsets`` are absolute journal positions (sorted); each phase
    gets a CrashPoint armed for the *delta* of fresh verdicts it will
    emit before dying. Every phase is a brand-new session (fresh
    private cache, fresh injectors) — exactly what a process restart
    looks like.
    """
    session_kwargs = session_kwargs or {}
    run_kwargs = run_kwargs or {}
    previous = 0
    resume = False
    for offset in offsets:
        point = CrashPoint(offset - previous)
        with pytest.raises(SimulatedCrashError):
            EvaluationSession(corpus, **session_kwargs).run(
                limit=LIMIT, journal=journal, resume=resume,
                on_journal_append=point, **run_kwargs)
        previous = offset
        resume = True
    return EvaluationSession(corpus, **session_kwargs).run(
        limit=LIMIT, journal=journal, resume=True, **run_kwargs)


class TestUninterruptedJournaledRun:
    def test_journaling_does_not_change_the_records(self, small_corpus,
                                                    baseline, tmp_path):
        result = EvaluationSession(small_corpus).run(
            limit=LIMIT, journal=str(tmp_path / "run.jnl"))
        assert result.canonical_records() == \
            baseline.canonical_records()
        stats = result.journal_stats
        assert stats["emitted"] == len(result.patches)
        assert stats["resumed"] == 0

    def test_journal_stats_absent_without_a_journal(self, baseline):
        assert baseline.journal_stats is None


class TestSequentialKillResume:
    def test_three_seeded_kill_offsets_are_byte_identical(
            self, small_corpus, baseline, tmp_path):
        total = len(baseline.patches)
        offsets = crash_offsets("resume-seq", total, KILLS)
        assert len(offsets) == KILLS
        result = kill_resume_run(small_corpus,
                                 str(tmp_path / "run.jnl"),
                                 offsets=offsets)
        assert result.canonical_records() == \
            baseline.canonical_records()
        # the final phase replayed everything the kills made durable
        assert result.journal_stats["resumed"] == offsets[-1]
        assert result.journal_stats["emitted"] == total - offsets[-1]

    def test_cache_off_is_byte_identical(self, small_corpus, baseline,
                                         tmp_path):
        total = len(baseline.patches)
        offsets = crash_offsets("resume-nocache", total, 2)
        result = kill_resume_run(small_corpus,
                                 str(tmp_path / "run.jnl"),
                                 offsets=offsets,
                                 session_kwargs={"cache": False})
        assert result.canonical_records() == \
            baseline.canonical_records()


class TestServiceKillResume:
    def test_service_driver_is_byte_identical(self, small_corpus,
                                              baseline, tmp_path):
        total = len(baseline.patches)
        offsets = crash_offsets("resume-svc", total, KILLS)
        result = kill_resume_run(small_corpus,
                                 str(tmp_path / "run.jnl"),
                                 offsets=offsets,
                                 run_kwargs={"service": 2})
        assert result.canonical_records() == \
            baseline.canonical_records()

    def test_drivers_can_change_between_kill_and_resume(
            self, small_corpus, baseline, tmp_path):
        # die under the service driver, finish sequentially: the
        # journal is driver-agnostic
        total = len(baseline.patches)
        offset = crash_offsets("resume-mixed", total, 1)[0]
        journal = str(tmp_path / "run.jnl")
        with pytest.raises(SimulatedCrashError):
            EvaluationSession(small_corpus).run(
                limit=LIMIT, journal=journal, service=2,
                on_journal_append=CrashPoint(offset))
        result = EvaluationSession(small_corpus).run(
            limit=LIMIT, journal=journal, resume=True)
        assert result.canonical_records() == \
            baseline.canonical_records()


class TestParallelKillResume:
    def test_jobs_driver_is_byte_identical(self, small_corpus,
                                           baseline, tmp_path):
        total = len(baseline.patches)
        offsets = crash_offsets("resume-jobs", total, 2)
        result = kill_resume_run(small_corpus,
                                 str(tmp_path / "run.jnl"),
                                 offsets=offsets,
                                 run_kwargs={"jobs": 2})
        assert result.canonical_records() == \
            baseline.canonical_records()


class TestFaultStormKillResume:
    def test_storm_is_byte_identical(self, small_corpus, storm_plan,
                                     faulted_baseline, tmp_path):
        total = len(faulted_baseline.patches)
        offsets = crash_offsets("resume-storm", total, KILLS)
        result = kill_resume_run(
            small_corpus, str(tmp_path / "run.jnl"),
            offsets=offsets,
            session_kwargs={"fault_plan": storm_plan})
        assert result.canonical_records() == \
            faulted_baseline.canonical_records()

    def test_storm_under_service_is_byte_identical(
            self, small_corpus, storm_plan, faulted_baseline,
            tmp_path):
        total = len(faulted_baseline.patches)
        offsets = crash_offsets("resume-storm-svc", total, 2)
        result = kill_resume_run(
            small_corpus, str(tmp_path / "run.jnl"),
            offsets=offsets,
            session_kwargs={"fault_plan": storm_plan},
            run_kwargs={"service": 2})
        assert result.canonical_records() == \
            faulted_baseline.canonical_records()


class TestTornTailResume:
    def test_torn_final_record_is_truncated_and_rerun(
            self, small_corpus, baseline, tmp_path):
        total = len(baseline.patches)
        offset = crash_offsets("resume-torn", total, 1)[0]
        journal = tmp_path / "run.jnl"
        with pytest.raises(SimulatedCrashError):
            EvaluationSession(small_corpus).run(
                limit=LIMIT, journal=str(journal),
                on_journal_append=CrashPoint(offset))
        # the crash also tore the last frame mid-write
        journal.write_bytes(journal.read_bytes()[:-5])
        result = EvaluationSession(small_corpus).run(
            limit=LIMIT, journal=str(journal), resume=True)
        stats = result.journal_stats
        assert stats["truncated_bytes"] > 0
        # one verdict fewer survived; it was simply rerun
        assert stats["resumed"] == offset - 1
        assert result.canonical_records() == \
            baseline.canonical_records()


class TestGuards:
    def test_resume_requires_a_journal(self, small_corpus):
        with pytest.raises(EvaluationError):
            EvaluationSession(small_corpus).run(limit=LIMIT,
                                                resume=True)

    def test_resume_refuses_a_different_runs_journal(self, small_corpus,
                                                     tmp_path):
        journal = str(tmp_path / "run.jnl")
        with pytest.raises(SimulatedCrashError):
            EvaluationSession(small_corpus).run(
                limit=LIMIT, journal=journal,
                use_ground_truth_janitors=True,
                on_journal_append=CrashPoint(1))
        with pytest.raises(JournalError):
            EvaluationSession(small_corpus).run(
                limit=LIMIT, journal=journal, resume=True,
                use_ground_truth_janitors=False)

    def test_without_resume_a_stale_journal_is_wiped(self, small_corpus,
                                                     baseline, tmp_path):
        journal = str(tmp_path / "run.jnl")
        with pytest.raises(SimulatedCrashError):
            EvaluationSession(small_corpus).run(
                limit=LIMIT, journal=journal,
                on_journal_append=CrashPoint(3))
        result = EvaluationSession(small_corpus).run(
            limit=LIMIT, journal=journal)  # resume=False: start over
        assert result.journal_stats["resumed"] == 0
        assert result.journal_stats["emitted"] == \
            len(result.patches)
        assert result.canonical_records() == \
            baseline.canonical_records()
