"""Pipeline-level tests for the observability layer.

The contract under test: observing a run never changes its verdicts or
simulated timings, every checked commit yields one span tree, and the
serialized trees (hence ``--trace-out``) are deterministic for any
``--jobs`` value.
"""

import json
import sys

import pytest

from repro.evalsuite.runner import EvaluationRunner
from repro.obs.export import chrome_trace, span_count, write_chrome_trace


@pytest.fixture(scope="module")
def corpus(small_corpus):
    """The shared session corpus (see ``tests/conftest.py``)."""
    return small_corpus


@pytest.fixture(scope="module")
def observed(corpus):
    return EvaluationRunner(corpus, observe=True).run(limit=12)


class TestObservedRun:
    def test_one_span_tree_per_checked_commit(self, observed):
        assert observed.span_trees is not None
        assert len(observed.span_trees) == len(observed.patches)
        for tree, patch in zip(observed.span_trees, observed.patches):
            assert tree["name"] == "jmake.check_commit"
            assert tree["attributes"]["commit"] == patch.commit_id
            assert span_count(tree) >= 1

    def test_trees_carry_index_and_worker_lane(self, observed):
        for index, tree in enumerate(observed.span_trees):
            assert tree["attributes"]["commit.index"] == index
            assert tree["attributes"]["worker"] == 0  # serial: one lane

    def test_metrics_cover_the_run(self, observed):
        counters = observed.metrics.to_dict()["counters"]
        assert counters["patches.checked"] == len(observed.patches)
        certified = sum(1 for patch in observed.patches if patch.certified)
        assert counters["patches.certified"] == certified
        assert counters["arch.selections"] > 0
        histograms = observed.metrics.to_dict()["histograms"]
        assert histograms["patch.elapsed_sim_seconds"]["count"] == \
            len(observed.patches)

    def test_observation_does_not_perturb_verdicts(self, corpus, observed):
        plain = EvaluationRunner(corpus).run(limit=12)
        assert plain.span_trees is None
        assert plain.metrics is None
        assert plain.canonical_records() == observed.canonical_records()

    def test_sim_durations_match_patch_elapsed(self, observed):
        for tree, patch in zip(observed.span_trees, observed.patches):
            assert tree["sim_duration"] == \
                pytest.approx(patch.elapsed_seconds)

    def test_trees_are_json_serializable(self, observed):
        json.dumps(observed.span_trees)


@pytest.mark.skipif(sys.platform == "win32",
                    reason="fork start method required")
class TestParallelObservation:
    def test_parallel_trace_deterministic_across_runs(self, corpus,
                                                      tmp_path):
        first = EvaluationRunner(corpus, observe=True).run(limit=12,
                                                           jobs=2)
        second = EvaluationRunner(corpus, observe=True).run(limit=12,
                                                            jobs=2)
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_chrome_trace(a, first.span_trees)
        write_chrome_trace(b, second.span_trees)
        assert open(a).read() == open(b).read()

    def test_parallel_lanes_and_order(self, corpus):
        result = EvaluationRunner(corpus, observe=True).run(limit=12,
                                                            jobs=3)
        for index, tree in enumerate(result.span_trees):
            assert tree["attributes"]["commit.index"] == index
            assert tree["attributes"]["worker"] == index % 3

    def test_parallel_trees_match_serial(self, corpus, observed):
        """Rebased per-commit trees are pure functions of the commit.

        Simulated durations compare approximately: a worker's clock
        starts at 0 while the serial clock carries the offset of every
        earlier commit, so rebased floats can drift in the last bit
        (the same reason ``test_parallel_equals_serial`` uses approx).
        Cache-hit attributes are excluded: the serial run warms one
        cache sequentially while each forked worker warms its own copy,
        so hit patterns differ even though replay-clock timings do not.
        """
        parallel = EvaluationRunner(corpus, observe=True).run(limit=12,
                                                              jobs=2)
        assert len(parallel.span_trees) == len(observed.span_trees)
        volatile = ("worker", "cached", "cache_hits")

        def compare(a, b):
            assert a["name"] == b["name"]
            assert a["status"] == b["status"]
            assert a["sim_start"] == pytest.approx(b["sim_start"])
            assert a["sim_duration"] == pytest.approx(b["sim_duration"])
            a_attrs = {k: v for k, v in a.get("attributes", {}).items()
                       if k not in volatile}
            b_attrs = {k: v for k, v in b.get("attributes", {}).items()
                       if k not in volatile}
            assert a_attrs == b_attrs
            a_kids = a.get("children", [])
            b_kids = b.get("children", [])
            assert len(a_kids) == len(b_kids)
            for a_kid, b_kid in zip(a_kids, b_kids):
                compare(a_kid, b_kid)

        for a, b in zip(parallel.span_trees, observed.span_trees):
            compare(a, b)

    def test_parallel_counters_match_serial(self, corpus, observed):
        parallel = EvaluationRunner(corpus, observe=True).run(limit=12,
                                                              jobs=2)
        # integer counters must agree exactly; histogram sums are float
        # accumulations and may drift in the last bit, so compare counts
        assert parallel.metrics.to_dict()["counters"] == \
            observed.metrics.to_dict()["counters"]
        for name, histogram in \
                parallel.metrics.to_dict()["histograms"].items():
            serial = observed.metrics.to_dict()["histograms"][name]
            assert histogram["counts"] == serial["counts"]
            assert histogram["sum"] == pytest.approx(serial["sum"])

    def test_parallel_verdicts_unchanged_by_observation(self, corpus):
        """The acceptance surface: observe on/off at the same jobs."""
        plain = EvaluationRunner(corpus).run(limit=12, jobs=2)
        observed = EvaluationRunner(corpus, observe=True).run(limit=12,
                                                              jobs=2)
        assert observed.canonical_records() == plain.canonical_records()


class TestChromeExport:
    def test_export_is_perfetto_shaped(self, observed, tmp_path):
        path = str(tmp_path / "trace.json")
        events = write_chrome_trace(path, observed.span_trees)
        with open(path) as handle:
            trace = json.load(handle)
        assert trace["traceEvents"]
        assert len(trace["traceEvents"]) == events
        for event in trace["traceEvents"]:
            assert event["ph"] in ("X", "M")
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0

    def test_every_commit_has_a_track(self, observed):
        trace = chrome_trace(observed.span_trees)
        threads = [event for event in trace["traceEvents"]
                   if event["ph"] == "M"
                   and event["name"] == "thread_name"]
        assert len(threads) == len(observed.patches)
