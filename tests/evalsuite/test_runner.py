"""Tests for the evaluation driver."""

from repro.core.report import FileStatus
from repro.evalsuite.runner import EvaluationRunner, scaled_criteria
from repro.workload.personas import PersonaKind


class TestRunShape:
    def test_patch_and_ignored_accounting(self, corpus, result):
        assert result.total_commits == len(corpus.eval_metadata)
        assert result.ignored_commits > 0
        assert len(result.patches) + result.ignored_commits == \
            result.total_commits

    def test_janitors_identified(self, result):
        assert len(result.janitor_emails) >= 5

    def test_patch_records_complete(self, result):
        for patch in result.patches[:20]:
            assert patch.shape in ("c_only", "h_only", "both")
            assert patch.elapsed_seconds >= 0
            assert patch.files
            if patch.elapsed_seconds > 0:
                assert patch.invocation_counts.get("config", 0) >= 1
            else:
                # comment-only patches never reach the build system
                assert all(not record.mutation_count
                           for record in patch.files)

    def test_file_instance_selection(self, result):
        c_instances = result.file_instances(suffix=".c")
        h_instances = result.file_instances(suffix=".h")
        assert c_instances
        assert h_instances
        assert all(record.is_c for record in c_instances)
        assert all(record.is_h for record in h_instances)

    def test_step_durations_recorded(self, result):
        assert result.step_durations("config")
        assert result.step_durations("make_i")
        assert result.step_durations("make_o")

    def test_overall_durations(self, result):
        durations = result.overall_durations()
        assert len(durations) == len(result.patches)
        janitor_durations = result.overall_durations(janitor_only=True)
        assert 0 < len(janitor_durations) < len(durations)

    def test_limit(self, corpus):
        small = EvaluationRunner(corpus).run(limit=10)
        assert len(small.patches) <= 10

    def test_ground_truth_janitors_option(self, corpus):
        runner = EvaluationRunner(corpus)
        result = runner.run(limit=5, use_ground_truth_janitors=True)
        expected = {p.email for p in corpus.roster
                    if p.kind is PersonaKind.JANITOR}
        assert result.janitor_emails == expected

    def test_scaled_criteria_tracks_corpus(self, corpus):
        criteria = scaled_criteria(corpus)
        assert criteria.min_patches == 10
        assert criteria.min_lists == 3
        assert criteria.max_maintainer_share == 0.05


class TestVerdictMix:
    def test_most_patches_certified(self, result):
        certified = sum(1 for patch in result.patches if patch.certified)
        fraction = certified / len(result.patches)
        # paper: 85%; shape target: clearly most, but not all
        assert 0.7 <= fraction < 1.0

    def test_some_lines_not_compiled_instances(self, result):
        missing = [record for record in result.file_instances()
                   if record.status is FileStatus.LINES_NOT_COMPILED]
        assert missing, "hazard population must exist"

    def test_insidious_instances_exist(self, result):
        insidious = [record for record in result.file_instances(suffix=".c")
                     if record.insidious_under_allyes]
        assert insidious

    def test_non_host_arch_instances_exist(self, result):
        rescued = [record for record in result.file_instances()
                   if record.needed_non_host_arch]
        assert rescued

    def test_hazard_ground_truth_attached(self, result):
        tagged = [record for record in result.file_instances()
                  if record.hazard_kinds]
        assert tagged
