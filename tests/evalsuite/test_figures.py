"""Tests for figure regenerators — shape targets from §V-C."""

from repro.evalsuite.figures import (
    describe_figure,
    figure4a_config_times,
    figure4b_i_times,
    figure4c_o_times,
    figure5_overall,
    figure6_janitor_overall,
)


class TestFigure4a:
    def test_all_under_five_seconds(self, result):
        cdf = figure4a_config_times(result)
        assert len(cdf) > 0
        assert cdf.fraction_at_most(5.0) == 1.0


class TestFigure4b:
    def test_shape(self, result):
        cdf = figure4b_i_times(result)
        assert len(cdf) > 0
        # paper: 98% within 15s, max ~22s
        assert cdf.fraction_at_most(15.0) >= 0.95
        assert cdf.max <= 25.0


class TestFigure4c:
    def test_shape(self, result):
        cdf = figure4c_o_times(result)
        assert cdf.fraction_at_most(7.0) >= 0.9
        # the whole-kernel-rebuild outlier (prom_init.c analogue)
        assert cdf.max > 6000.0

    def test_bulk_under_fifteen(self, result):
        cdf = figure4c_o_times(result)
        under_15 = cdf.fraction_at_most(15.0)
        assert under_15 >= 0.95


class TestFigure5:
    def test_shape(self, result):
        """Paper: 82% of patches within 30s, 95% within one minute."""
        cdf = figure5_overall(result)
        assert 0.7 <= cdf.fraction_at_most(30.0) <= 0.97
        assert cdf.fraction_at_most(60.0) >= 0.88


class TestFigure6:
    def test_same_shape_as_figure5(self, result):
        """Paper: the janitor curve matches Fig 5's shape but without
        the most extreme values."""
        all_cdf = figure5_overall(result)
        janitor_cdf = figure6_janitor_overall(result)
        assert len(janitor_cdf) < len(all_cdf)
        assert janitor_cdf.fraction_at_most(60.0) >= \
            all_cdf.fraction_at_most(60.0) - 0.1


class TestDescribe:
    def test_text_mentions_thresholds(self, result):
        cdf = figure5_overall(result)
        text = describe_figure(cdf, title="Fig 5", thresholds=[30, 60])
        assert "<= 30s" in text
        assert "max:" in text

    def test_empty_cdf(self):
        from repro.evalsuite.stats import Cdf
        text = describe_figure(Cdf([]), title="x", thresholds=[1])
        assert "no samples" in text
