"""Tests for CDF and share helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.evalsuite.stats import Cdf, Share


class TestCdf:
    def test_fraction_at_most(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_at_most(2.0) == 0.5
        assert cdf.fraction_at_most(0.5) == 0.0
        assert cdf.fraction_at_most(10.0) == 1.0

    def test_empty(self):
        cdf = Cdf([])
        assert len(cdf) == 0
        assert cdf.fraction_at_most(1.0) == 0.0
        with pytest.raises(ValueError):
            cdf.percentile(0.5)
        with pytest.raises(ValueError):
            _ = cdf.max

    def test_percentile(self):
        cdf = Cdf(list(range(1, 101)))
        assert cdf.percentile(0.5) == 50
        assert cdf.percentile(0.95) == 95
        assert cdf.percentile(1.0) == 100

    def test_percentile_bounds(self):
        cdf = Cdf([1.0])
        with pytest.raises(ValueError):
            cdf.percentile(0.0)
        with pytest.raises(ValueError):
            cdf.percentile(1.5)

    def test_min_max(self):
        cdf = Cdf([3.0, 1.0, 2.0])
        assert cdf.min == 1.0
        assert cdf.max == 3.0

    def test_series_monotone(self):
        cdf = Cdf([5.0, 1.0, 3.0, 2.0, 4.0])
        series = cdf.series()
        xs = [x for x, _ in series]
        ys = [y for _, y in series]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_series_downsampling(self):
        cdf = Cdf([float(i) for i in range(1000)])
        series = cdf.series(points=50)
        assert len(series) <= 52
        assert series[-1][1] == 1.0

    def test_render_ascii(self):
        cdf = Cdf([1.0, 2.0, 3.0])
        art = cdf.render_ascii(title="demo")
        assert "demo" in art
        assert "#" in art

    def test_render_ascii_empty(self):
        assert "(empty)" in Cdf([]).render_ascii(title="t")

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_fraction_monotone_property(self, values):
        cdf = Cdf(values)
        thresholds = sorted({min(values), max(values),
                             sum(values) / len(values)})
        fractions = [cdf.fraction_at_most(t) for t in thresholds]
        assert fractions == sorted(fractions)

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=100))
    def test_percentile_within_range(self, values):
        cdf = Cdf(values)
        for fraction in (0.01, 0.5, 0.99, 1.0):
            assert cdf.min <= cdf.percentile(fraction) <= cdf.max


class TestShare:
    def test_render(self):
        assert Share(9158, 10900).render() == "9158 (84%)"

    def test_zero_total(self):
        assert Share(0, 0).fraction == 0.0
