"""A module-scoped evaluation run shared by the evalsuite tests."""

import pytest

from repro.evalsuite.runner import EvaluationRunner
from repro.workload.corpus import CorpusSpec, build_corpus

from tests.faults.conftest import storm_plan  # noqa: F401  (fixture)


@pytest.fixture(scope="session")
def corpus():
    return build_corpus(CorpusSpec(seed="evalsuite-tests",
                                   history_commits=400,
                                   eval_commits=260,
                                   regular_developers=14))


@pytest.fixture(scope="session")
def result(corpus):
    return EvaluationRunner(corpus).run()
