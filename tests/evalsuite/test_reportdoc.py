"""Tests for markdown report generation."""

from repro.evalsuite.reportdoc import write_markdown_report


class TestMarkdownReport:
    def test_contains_all_sections(self, result):
        document = write_markdown_report(result)
        for heading in ("# JMake evaluation report",
                        "## Window",
                        "## Table III",
                        "## Table IV",
                        "### Figure 4a",
                        "### Figure 5",
                        "### Figure 6",
                        "### E-S1", "### E-S5",
                        "## Worst patches"):
            assert heading in document, heading

    def test_window_numbers_match_result(self, result):
        document = write_markdown_report(result)
        assert f"**{result.total_commits}**" in document
        assert f"**{len(result.patches)}**" in document

    def test_worst_patches_table_rows(self, result):
        document = write_markdown_report(result)
        worst = max(result.patches, key=lambda p: p.elapsed_seconds)
        assert worst.commit_id[:12] in document

    def test_custom_title(self, result):
        document = write_markdown_report(result, title="Nightly run")
        assert document.startswith("# Nightly run")

    def test_valid_code_fences(self, result):
        document = write_markdown_report(result)
        assert document.count("```") % 2 == 0
