"""Tests for the commit-stream generator and corpus builder."""

import pytest

from repro.util.rng import DeterministicRng
from repro.vcs.repository import LogOptions
from repro.workload.corpus import Corpus, CorpusSpec, build_corpus
from repro.workload.personas import PersonaKind, default_roster


SMALL_SPEC = CorpusSpec(seed="test-corpus", history_commits=120,
                        eval_commits=60, regular_developers=10)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(SMALL_SPEC)


class TestRoster:
    def test_ten_janitors(self):
        roster = default_roster(["drivers/net", "fs/ext4"])
        janitors = [p for p in roster if p.kind is PersonaKind.JANITOR]
        assert len(janitors) == 10
        assert sum(1 for p in janitors if p.tool_user) == 3
        assert sum(1 for p in janitors if p.intern) == 1

    def test_maintainer_per_subsystem(self):
        roster = default_roster(["drivers/net", "fs/ext4"],
                                regular_developers=0)
        maintainers = [p for p in roster
                       if p.kind is PersonaKind.MAINTAINER]
        assert len(maintainers) == 2
        assert maintainers[0].home_subsystems == ("drivers/net",)

    def test_mixtures_sum_below_one(self):
        for persona in default_roster(["drivers/net"]):
            mix = persona.mixture
            assert mix.c_only + mix.h_only + mix.both < 1.0
            assert mix.ignorable > 0


class TestCorpus:
    def test_deterministic(self):
        a = build_corpus(SMALL_SPEC)
        b = build_corpus(SMALL_SPEC)
        assert [m.commit_id for m in a.eval_metadata] == \
            [m.commit_id for m in b.eval_metadata]

    def test_window_sizes(self, corpus):
        assert len(corpus.history_metadata) == 120
        assert len(corpus.eval_metadata) == 60

    def test_tags_bound_windows(self, corpus):
        repo = corpus.repository
        start = repo.resolve(Corpus.TAG_EVAL_START)
        end = repo.resolve(Corpus.TAG_EVAL_END)
        assert start.id == corpus.history_metadata[-1].commit_id
        assert end.id == corpus.eval_metadata[-1].commit_id

    def test_log_filters_match_metadata(self, corpus):
        """Commits the paper's git invocation would drop are exactly the
        ignorable ones (plus any whitespace-only edits)."""
        repo = corpus.repository
        selected = repo.log(since=Corpus.TAG_EVAL_START,
                            until=Corpus.TAG_EVAL_END)
        selected_ids = {commit.id for commit in selected}
        for record in corpus.eval_metadata:
            if record.shape == "merge":
                assert record.commit_id not in selected_ids
            elif record.shape in ("c_only", "h_only", "both") \
                    and record.edits:
                assert record.commit_id in selected_ids, record.shape

    def test_whitespace_commits_dropped_by_w(self, corpus):
        repo = corpus.repository
        ws_records = [record for record in corpus.eval_metadata
                      if record.shape == "ws"]
        if not ws_records:
            pytest.skip("no whitespace commits in this window")
        with_w = repo.log(since=Corpus.TAG_EVAL_START,
                          until=Corpus.TAG_EVAL_END)
        ids_with_w = {commit.id for commit in with_w}
        for record in ws_records:
            assert record.commit_id not in ids_with_w

    def test_shapes_cover_table_iii_classes(self, corpus):
        shapes = {record.shape for record in
                  corpus.history_metadata + corpus.eval_metadata}
        assert {"c_only", "both"} <= shapes

    def test_commit_diffs_match_declared_shape(self, corpus):
        repo = corpus.repository
        checked = 0
        for record in corpus.eval_metadata:
            if record.is_ignorable or not record.edits:
                continue
            patch = repo.show(record.commit_id)
            paths = patch.paths()
            has_c = any(path.endswith(".c") for path in paths)
            has_h = any(path.endswith(".h") for path in paths)
            if record.shape == "c_only":
                assert has_c and not has_h, record.commit_id
            elif record.shape == "h_only":
                assert has_h and not has_c
            elif record.shape == "both":
                assert has_h and has_c
            checked += 1
        assert checked > 20

    def test_janitors_touch_many_subsystems(self, corpus):
        """Breadth-first behaviour: janitor commits span subsystems."""
        by_author: dict[str, set[str]] = {}
        for record in corpus.history_metadata + corpus.eval_metadata:
            if record.author.kind is not PersonaKind.JANITOR:
                continue
            for edit in record.edits:
                by_author.setdefault(record.author.name, set()).add(
                    edit.path.rsplit("/", 1)[0])
        busiest = max(by_author.values(), key=len, default=set())
        assert len(busiest) >= 5

    def test_maintainers_stay_home(self, corpus):
        for record in corpus.eval_metadata:
            if record.author.kind is not PersonaKind.MAINTAINER:
                continue
            home = record.author.home_subsystems[0]
            for edit in record.edits:
                if edit.path.startswith("arch/"):
                    continue  # arch_rate applies to everyone
                assert edit.path.startswith(home + "/"), \
                    (record.author.name, edit.path)

    def test_hazard_edits_recorded(self, corpus):
        hazard_records = [record for record in
                          corpus.history_metadata + corpus.eval_metadata
                          if record.hazard_kinds()]
        assert hazard_records, "expected some hazard-touching commits"

    def test_edited_files_still_compile(self, corpus):
        """Spot-check: the head-state fs/ files still build end to end."""
        from repro.kbuild.build import BuildSystem
        head = corpus.repository.head()
        build = BuildSystem(head.tree.get,
                            path_lister=lambda: head.tree.paths())
        config = build.make_config("x86_64", "allyesconfig")
        compiled = 0
        for path in head.tree.paths():
            if path.endswith(".c") and path.startswith("fs/"):
                if not build.is_buildable(path, "x86_64", config):
                    continue  # e.g. negative-dependency drivers
                obj = build.make_o(path, "x86_64", config)
                assert obj.token_count > 0
                compiled += 1
        assert compiled >= 5
