"""Tests for the source-anatomy scanner and edit primitives."""

import pytest

from repro.kernel.layout import HazardKind
from repro.workload.anatomy import SourceAnatomy

SAMPLE = """\
/*
 * demo driver
 */
#include <linux/kernel.h>

#define DEMO_BASE 0x0100
#define DEMO_UNUSED_SHIFT(x) ((x) << 2)

static int demo_probe(int dev)
{
\tint value = 3;
\treturn value + DEMO_BASE;
}

#ifdef CONFIG_IOSCHED_DEADLINE
static int demo_alt(int dev)
{
\treturn dev + 2;
}
#endif

#ifdef MODULE
static void demo_cleanup(void)
{
\tint unused = 1;
\treturn;
}
#endif

#if 0
static int demo_dead(void)
{
\treturn 9;
}
#endif

#ifdef CONFIG_DEMO_EXTRA
static int demo_fast(int v)
{
\treturn v << 1;
}
#else
static int demo_slow(int v)
{
\treturn v + 7;
}
#endif
"""


@pytest.fixture
def anatomy():
    return SourceAnatomy.scan("drivers/demo/demo.c", SAMPLE)


class TestScanning:
    def test_code_lines_found(self, anatomy):
        texts = [SAMPLE.split("\n")[l - 1] for l in anatomy.code_lines]
        assert "\tint value = 3;" in texts

    def test_code_lines_exclude_hazard_blocks(self, anatomy):
        texts = [SAMPLE.split("\n")[l - 1] for l in anatomy.code_lines]
        assert "\treturn dev + 2;" not in texts
        assert "\treturn 9;" not in texts

    def test_macro_lines(self, anatomy):
        texts = [SAMPLE.split("\n")[l - 1] for l in anatomy.macro_lines]
        assert any("DEMO_BASE" in text for text in texts)

    def test_unused_macro_detected(self, anatomy):
        assert len(anatomy.unused_macro_lines) == 1
        line = SAMPLE.split("\n")[anatomy.unused_macro_lines[0] - 1]
        assert "DEMO_UNUSED_SHIFT" in line

    def test_comment_lines(self, anatomy):
        assert 2 in anatomy.comment_lines

    def test_hazard_blocks_found(self, anatomy):
        kinds = {block.kind for block in anatomy.hazard_blocks}
        assert HazardKind.CHOICE_UNSET in kinds
        assert HazardKind.MODULE_ONLY in kinds
        assert HazardKind.IF_ZERO in kinds
        assert HazardKind.IFDEF_AND_ELSE in kinds

    def test_hazard_lines_editable(self, anatomy):
        lines = anatomy.hazard_lines(HazardKind.CHOICE_UNSET)
        texts = [SAMPLE.split("\n")[l - 1] for l in lines]
        assert "\treturn dev + 2;" in texts

    def test_ifdef_else_pairs(self, anatomy):
        pairs = anatomy.ifdef_else_pairs()
        assert len(pairs) == 1
        block = pairs[0]
        assert block.body_lines and block.else_lines

    def test_available_hazards(self, anatomy):
        available = anatomy.available_hazards()
        assert HazardKind.UNUSED_MACRO in available
        assert HazardKind.IFDEF_AND_ELSE in available


class TestEdits:
    def test_bump_number(self, anatomy):
        lineno = anatomy.code_lines[0]
        new_text = anatomy.bump_number(lineno)
        assert new_text is not None
        assert new_text != SAMPLE
        assert "int value = 4;" in new_text

    def test_bump_hex_number(self, anatomy):
        macro_line = next(l for l in anatomy.macro_lines
                          if "DEMO_BASE" in SAMPLE.split("\n")[l - 1])
        new_text = anatomy.bump_number(macro_line)
        assert "0x101" in new_text

    def test_bump_preserves_line_count(self, anatomy):
        new_text = anatomy.bump_number(anatomy.code_lines[0])
        assert new_text.count("\n") == SAMPLE.count("\n")

    def test_insert_statement(self, anatomy):
        lineno = anatomy.code_lines[0]
        new_text = anatomy.insert_statement_after(lineno, "value = 9;")
        assert new_text.count("\n") == SAMPLE.count("\n") + 1
        assert "\tvalue = 9;" in new_text

    def test_remove_line(self, anatomy):
        lineno = anatomy.code_lines[0]
        new_text = anatomy.remove_line(lineno)
        assert new_text.count("\n") == SAMPLE.count("\n") - 1

    def test_remove_rejects_non_statement(self, anatomy):
        brace_line = SAMPLE.split("\n").index("{") + 1
        assert anatomy.remove_line(brace_line) is None

    def test_edit_comment(self, anatomy):
        new_text = anatomy.edit_comment(2, "v2")
        assert "v2" in new_text.split("\n")[1]

    def test_out_of_range_returns_none(self, anatomy):
        assert anatomy.bump_number(9999) is None
        assert anatomy.remove_line(0) is None


class TestEditedFilesStayValid:
    """Every edit primitive must keep the file compilable."""

    def compiles(self, text):
        from repro.cc.compiler import Compiler
        from repro.cc.toolchain import ToolchainRegistry
        files = {
            "drivers/demo/demo.c": text,
            "include/linux/kernel.h": "#define max(a, b) (a)\n",
        }
        registry = ToolchainRegistry()
        compiler = Compiler(registry.get("x86_64"), files.get,
                            config_macros={"CONFIG_DEMO_EXTRA": "1"})
        compiler.compile_object("drivers/demo/demo.c")
        return True

    def test_original_compiles(self, anatomy):
        assert self.compiles(SAMPLE)

    def test_bump_keeps_compiling(self, anatomy):
        assert self.compiles(anatomy.bump_number(anatomy.code_lines[0]))

    def test_insert_keeps_compiling(self, anatomy):
        assert self.compiles(anatomy.insert_statement_after(
            anatomy.code_lines[0], "value = value + 1;"))

    def test_remove_keeps_compiling(self, anatomy):
        assert self.compiles(anatomy.remove_line(anatomy.code_lines[0]))
