"""VerdictLedger: dedup, compaction, recovery, meta guard."""

import json

import pytest

from repro.errors import JournalCorruptError, JournalError
from repro.journal import CHECKPOINT_VERSION, VerdictLedger


def emit_n(ledger, count, start=0):
    for index in range(start, start + count):
        ledger.emit(f"commit-{index}", {"verdict": "CERTIFIED",
                                        "n": index})


class TestEmitDedup:
    def test_emit_appends_and_returns_true(self, tmp_path):
        with VerdictLedger(str(tmp_path / "l.jnl")) as ledger:
            assert ledger.emit("c1", {"x": 1}) is True
            assert ledger.emitted == 1
            assert "c1" in ledger
            assert ledger.get("c1") == {"x": 1}

    def test_duplicate_key_is_refused(self, tmp_path):
        with VerdictLedger(str(tmp_path / "l.jnl")) as ledger:
            ledger.emit("c1", {"x": 1})
            assert ledger.emit("c1", {"x": 2}) is False
            # the durable first write wins
            assert ledger.get("c1") == {"x": 1}
            assert ledger.emitted == 1
            assert ledger.journal.appended == 1

    def test_keys_preserve_insertion_order(self, tmp_path):
        with VerdictLedger(str(tmp_path / "l.jnl")) as ledger:
            emit_n(ledger, 4)
            assert ledger.keys() == [f"commit-{i}" for i in range(4)]

    def test_observer_counts_fresh_verdicts_only(self, tmp_path):
        seen = []
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path) as ledger:
            emit_n(ledger, 3)
        with VerdictLedger(path, on_append=seen.append) as ledger:
            assert ledger.recovered == 3
            ledger.emit("commit-0", {"dup": True})   # deduped: no call
            emit_n(ledger, 2, start=3)
        assert seen == [1, 2]

    def test_negative_checkpoint_interval_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            VerdictLedger(str(tmp_path / "l.jnl"),
                          checkpoint_interval=-1)


class TestRecovery:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path) as ledger:
            emit_n(ledger, 7)
        with VerdictLedger(path) as ledger:
            assert len(ledger) == 7
            assert ledger.recovered == 7
            assert ledger.emitted == 0
            assert ledger.get("commit-3") == {"verdict": "CERTIFIED",
                                              "n": 3}

    def test_fresh_wipes_the_previous_run(self, tmp_path):
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path, checkpoint_interval=2) as ledger:
            emit_n(ledger, 5)
        with VerdictLedger(path, fresh=True) as ledger:
            assert len(ledger) == 0
            assert ledger.recovered == 0
        assert not (tmp_path / "l.jnl.ckpt").exists()

    def test_resume_continues_after_recovered_keys(self, tmp_path):
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path) as ledger:
            emit_n(ledger, 3)
        with VerdictLedger(path) as ledger:
            emit_n(ledger, 6)  # commit-0..2 dedup, commit-3..5 fresh
            assert ledger.emitted == 3
        with VerdictLedger(path) as ledger:
            assert len(ledger) == 6


class TestCheckpointing:
    def test_interval_compacts_the_wal(self, tmp_path):
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path, checkpoint_interval=3) as ledger:
            emit_n(ledger, 7)
            assert ledger.checkpoints_written == 2
            # 7 emits, last checkpoint at #6: one frame left in the WAL
            stats = ledger.stats()
            assert stats["checkpoints_written"] == 2
        ckpt = json.loads((tmp_path / "l.jnl.ckpt").read_text())
        assert ckpt["version"] == CHECKPOINT_VERSION
        assert len(ckpt["records"]) == 6

    def test_recovery_merges_checkpoint_and_wal(self, tmp_path):
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path, checkpoint_interval=3) as ledger:
            emit_n(ledger, 7)
        with VerdictLedger(path) as ledger:
            assert len(ledger) == 7
            assert ledger.keys() == [f"commit-{i}" for i in range(7)]

    def test_explicit_checkpoint_truncates_the_wal(self, tmp_path):
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path) as ledger:
            emit_n(ledger, 4)
            assert ledger.stats()["wal_bytes"] > 0
            ledger.checkpoint()
            assert ledger.stats()["wal_bytes"] == 0
        with VerdictLedger(path) as ledger:
            assert len(ledger) == 4

    def test_crash_between_checkpoint_and_truncate_is_harmless(
            self, tmp_path):
        # simulate: checkpoint written, WAL truncation never happened
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path) as ledger:
            emit_n(ledger, 5)
            # write the checkpoint by hand, leave the WAL full
            ledger.journal.close()
            (tmp_path / "l.jnl.ckpt").write_text(json.dumps({
                "version": CHECKPOINT_VERSION, "meta": None,
                "records": [[k, ledger.get(k)] for k in ledger.keys()],
            }))
        with VerdictLedger(path) as ledger:
            # duplicates dedup on replay: still exactly 5
            assert len(ledger) == 5

    def test_corrupt_checkpoint_is_typed(self, tmp_path):
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path, checkpoint_interval=1) as ledger:
            emit_n(ledger, 2)
        (tmp_path / "l.jnl.ckpt").write_text("{not json")
        with pytest.raises(JournalCorruptError):
            VerdictLedger(path)

    def test_future_checkpoint_version_is_refused(self, tmp_path):
        path = str(tmp_path / "l.jnl")
        (tmp_path / "l.jnl.ckpt").write_text(json.dumps(
            {"version": CHECKPOINT_VERSION + 1, "records": []}))
        with pytest.raises(JournalCorruptError):
            VerdictLedger(path)


class TestMetaGuard:
    META = {"corpus_seed": "s1", "eval_commits": 40}

    def test_meta_survives_recovery(self, tmp_path):
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path) as ledger:
            ledger.bind_meta(self.META)
        with VerdictLedger(path) as ledger:
            assert ledger.meta == self.META
            ledger.bind_meta(self.META)  # idempotent, no new append
            assert ledger.journal.appended == 0

    def test_mismatched_meta_is_refused(self, tmp_path):
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path) as ledger:
            ledger.bind_meta(self.META)
        with VerdictLedger(path) as ledger:
            with pytest.raises(JournalError) as excinfo:
                ledger.bind_meta({"corpus_seed": "other",
                                  "eval_commits": 40})
            assert "different run" in str(excinfo.value)

    def test_meta_survives_checkpoint_compaction(self, tmp_path):
        path = str(tmp_path / "l.jnl")
        with VerdictLedger(path, checkpoint_interval=2) as ledger:
            ledger.bind_meta(self.META)
            emit_n(ledger, 4)
        with VerdictLedger(path) as ledger:
            assert ledger.meta == self.META
            assert len(ledger) == 4
