"""PatchRecord <-> journal payload codec round-trip fidelity."""

import json

import pytest

from repro.core.report import FileStatus
from repro.errors import SchemaError
from repro.evalsuite.runner import FileInstanceRecord, PatchRecord
from repro.faults.inject import FaultReport
from repro.journal import (
    RECORD_VERSION,
    patch_record_from_dict,
    patch_record_to_dict,
)
from repro.kernel.layout import HazardKind


def sample_record():
    return PatchRecord(
        commit_id="c0123456789ab",
        author_name="A Janitor",
        author_email="janitor@example.org",
        is_janitor=True,
        shape="both",
        certified=False,
        elapsed_seconds=12.300000000000001,
        invocation_counts={"config": 3, "make_i": 7},
        invocation_durations={"config": [1.5, 0.30000000000000004],
                              "make_i": [0.125]},
        verdict="PARTIAL:arm,mips",
        quarantined_archs=["arm", "mips"],
        fault_reports=[FaultReport(
            kind="compile_timeout", site="compile", arch="arm",
            path="drivers/net/foo.c", scope="c0123456789ab",
            attempt=2)],
        files=[FileInstanceRecord(
            commit_id="c0123456789ab",
            path="drivers/net/foo.c",
            status=FileStatus.LINES_NOT_COMPILED,
            mutation_count=4,
            useful_archs=["x86", "arm"],
            missing_lines=[17, 42],
            candidate_compilations=3,
            first_clean_covers_all=False,
            insidious_under_allyes=True,
            needed_non_host_arch=True,
            used_defconfig=True,
            hazard_kinds=[HazardKind.CHOICE_UNSET,
                          HazardKind.MODULE_ONLY],
        )],
    )


class TestRoundTrip:
    def test_identity(self):
        record = sample_record()
        assert patch_record_from_dict(
            patch_record_to_dict(record)) == record

    def test_survives_json_serialization(self):
        # the journal pushes the dict through canonical JSON; the
        # round trip through *text* must also be exact (floats, enums)
        record = sample_record()
        payload = json.loads(json.dumps(
            patch_record_to_dict(record), sort_keys=True,
            separators=(",", ":"), allow_nan=False))
        assert patch_record_from_dict(payload) == record

    def test_floats_are_repr_exact(self):
        payload = patch_record_to_dict(sample_record())
        text = json.dumps(payload)
        back = patch_record_from_dict(json.loads(text))
        assert back.elapsed_seconds == 12.300000000000001
        assert back.invocation_durations["config"][1] == \
            0.30000000000000004

    def test_enums_serialize_by_name(self):
        payload = patch_record_to_dict(sample_record())
        entry = payload["files"][0]
        assert entry["status"] == "LINES_NOT_COMPILED"
        assert entry["hazard_kinds"] == ["CHOICE_UNSET", "MODULE_ONLY"]

    def test_version_tag_is_present(self):
        assert patch_record_to_dict(sample_record())["v"] == \
            RECORD_VERSION

    def test_empty_collections_round_trip(self):
        record = PatchRecord(
            commit_id="c1", author_name="n", author_email="e",
            is_janitor=False, shape="c_only", certified=True,
            elapsed_seconds=0.0, verdict="CERTIFIED")
        assert patch_record_from_dict(
            patch_record_to_dict(record)) == record


class TestSchemaErrors:
    def test_non_dict_payload(self):
        with pytest.raises(SchemaError):
            patch_record_from_dict(["not", "a", "record"])

    def test_missing_version(self):
        payload = patch_record_to_dict(sample_record())
        del payload["v"]
        with pytest.raises(SchemaError) as excinfo:
            patch_record_from_dict(payload)
        assert "record version" in str(excinfo.value)

    def test_future_version(self):
        payload = patch_record_to_dict(sample_record())
        payload["v"] = RECORD_VERSION + 1
        with pytest.raises(SchemaError):
            patch_record_from_dict(payload)

    @pytest.mark.parametrize("missing", [
        "commit_id", "certified", "invocation_durations", "files"])
    def test_missing_field(self, missing):
        payload = patch_record_to_dict(sample_record())
        del payload[missing]
        with pytest.raises(SchemaError):
            patch_record_from_dict(payload)

    def test_unknown_enum_name(self):
        payload = patch_record_to_dict(sample_record())
        payload["files"][0]["status"] = "NOT_A_STATUS"
        with pytest.raises(SchemaError):
            patch_record_from_dict(payload)

    def test_missing_file_field(self):
        payload = patch_record_to_dict(sample_record())
        del payload["files"][0]["mutation_count"]
        with pytest.raises(SchemaError):
            patch_record_from_dict(payload)

    def test_malformed_fault_report(self):
        payload = patch_record_to_dict(sample_record())
        payload["fault_reports"][0]["surprise"] = 1
        with pytest.raises(SchemaError):
            patch_record_from_dict(payload)
