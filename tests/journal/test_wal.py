"""WAL framing, replay, torn-tail truncation, interior corruption."""

import struct
import zlib

import pytest

from repro.errors import (
    JournalCorruptError,
    JournalError,
    SimulatedCrashError,
)
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.journal import (
    Journal,
    frame_record,
    scan_frames,
)

HEADER = struct.Struct(">II")


def records(count):
    return [{"k": f"commit-{index}", "r": {"verdict": "CERTIFIED",
                                           "elapsed": 0.1 * index}}
            for index in range(count)]


def write_journal(path, entries):
    journal = Journal(str(path))
    for entry in entries:
        journal.append(entry)
    journal.close()
    return journal


class TestFraming:
    def test_frame_is_header_plus_canonical_json(self):
        record = {"b": 2, "a": 1}
        frame = frame_record(record)
        length, crc = HEADER.unpack_from(frame, 0)
        payload = frame[HEADER.size:]
        assert len(payload) == length
        assert zlib.crc32(payload) == crc
        # canonical: sorted keys, compact separators
        assert payload == b'{"a":1,"b":2}'

    def test_unserializable_record_is_a_typed_error(self):
        with pytest.raises(JournalError):
            frame_record({"bad": object()})

    def test_nan_is_refused(self):
        with pytest.raises(JournalError):
            frame_record({"elapsed": float("nan")})

    def test_scan_empty_is_clean(self):
        result = scan_frames(b"")
        assert result.records == []
        assert result.truncated_bytes == 0


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.jnl"
        entries = records(7)
        write_journal(path, entries)
        replay = Journal(str(path)).replay()
        assert replay.records == entries
        assert replay.truncated_bytes == 0

    def test_missing_file_replays_empty(self, tmp_path):
        replay = Journal(str(tmp_path / "absent.jnl")).replay()
        assert replay.records == []

    def test_append_returns_running_count(self, tmp_path):
        journal = Journal(str(tmp_path / "wal.jnl"))
        assert journal.append({"n": 1}) == 1
        assert journal.append({"n": 2}) == 2
        journal.close()

    def test_floats_round_trip_exactly(self, tmp_path):
        path = tmp_path / "wal.jnl"
        value = 0.1 + 0.2  # 0.30000000000000004
        write_journal(path, [{"f": value}])
        replay = Journal(str(path)).replay()
        assert repr(replay.records[0]["f"]) == repr(value)


class TestTornTail:
    @pytest.mark.parametrize("cut", [1, 3, 7, 30])
    def test_torn_final_frame_is_truncated(self, tmp_path, cut):
        path = tmp_path / "wal.jnl"
        entries = records(5)
        write_journal(path, entries)
        data = path.read_bytes()
        path.write_bytes(data[:-cut])
        replay = Journal(str(path)).replay()
        assert replay.records == entries[:4]
        assert replay.truncated_bytes > 0
        assert replay.truncated_reason

    def test_truncation_repairs_the_file_in_place(self, tmp_path):
        path = tmp_path / "wal.jnl"
        entries = records(5)
        write_journal(path, entries)
        path.write_bytes(path.read_bytes()[:-3])
        Journal(str(path)).replay()
        # second replay sees a clean journal
        replay = Journal(str(path)).replay()
        assert replay.truncated_bytes == 0
        assert replay.records == entries[:4]

    def test_appends_continue_after_repair(self, tmp_path):
        path = tmp_path / "wal.jnl"
        entries = records(3)
        write_journal(path, entries)
        path.write_bytes(path.read_bytes()[:-2])
        journal = Journal(str(path))
        journal.replay()
        journal.append({"k": "fresh", "r": {}})
        journal.close()
        replay = Journal(str(path)).replay()
        assert replay.records == entries[:2] + [{"k": "fresh", "r": {}}]

    def test_partial_header_alone_is_torn(self, tmp_path):
        path = tmp_path / "wal.jnl"
        path.write_bytes(b"\x00\x00\x00")
        replay = Journal(str(path)).replay()
        assert replay.records == []
        assert "header" in replay.truncated_reason


class TestInteriorCorruption:
    def test_interior_crc_mismatch_is_typed(self, tmp_path):
        path = tmp_path / "wal.jnl"
        write_journal(path, records(5))
        data = bytearray(path.read_bytes())
        data[HEADER.size + 2] ^= 0xFF  # first frame's payload
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError) as excinfo:
            Journal(str(path)).replay()
        assert excinfo.value.offset == 0
        assert excinfo.value.path == str(path)

    def test_final_frame_crc_mismatch_is_torn_not_corrupt(self,
                                                          tmp_path):
        path = tmp_path / "wal.jnl"
        entries = records(3)
        write_journal(path, entries)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # last byte of the physically last frame
        path.write_bytes(bytes(data))
        replay = Journal(str(path)).replay()
        assert replay.records == entries[:2]
        assert "CRC" in replay.truncated_reason

    def test_implausible_interior_length_is_typed(self, tmp_path):
        path = tmp_path / "wal.jnl"
        write_journal(path, records(4))
        data = bytearray(path.read_bytes())
        # trash the first frame's length field with an absurd value
        struct.pack_into(">I", data, 0, 0xFFFFFFF0)
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError):
            Journal(str(path)).replay()

    def test_valid_crc_but_non_json_payload_is_typed(self, tmp_path):
        path = tmp_path / "wal.jnl"
        payload = b"not json at all"
        frame = HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        good = frame_record({"k": "x"})
        path.write_bytes(frame + good)
        with pytest.raises(JournalCorruptError):
            Journal(str(path)).replay()


class TestTornWriteFault:
    def plan(self):
        return FaultPlan(seed="torn", specs=[
            FaultSpec(kind="torn_journal_write", site="journal_append",
                      rate=1.0, times=1)])

    def test_injected_torn_write_crashes_with_a_strict_prefix(
            self, tmp_path):
        path = tmp_path / "wal.jnl"
        journal = Journal(str(path), injector=FaultInjector(self.plan()))
        with pytest.raises(SimulatedCrashError):
            journal.append({"k": "first", "r": {}})
        journal.close()
        frame = frame_record({"k": "first", "r": {}})
        written = path.read_bytes()
        # a deterministic strict prefix of the frame reached the disk
        assert 0 < len(written) < len(frame)
        assert frame.startswith(written)

    def test_replay_recovers_then_the_survivor_resumes(self, tmp_path):
        path = tmp_path / "wal.jnl"
        journal = Journal(str(path), injector=FaultInjector(self.plan()))
        with pytest.raises(SimulatedCrashError):
            journal.append({"k": "first", "r": {}})
        journal.close()
        # the restarted process replays (truncating the torn tail)
        # before it appends anything
        survivor = Journal(str(path))
        replay = survivor.replay()
        assert replay.records == []
        assert replay.truncated_bytes > 0
        survivor.append({"k": "first", "r": {}})
        survivor.close()
        assert Journal(str(path)).replay().records == \
            [{"k": "first", "r": {}}]

    def test_torn_cut_point_is_deterministic(self, tmp_path):
        path = tmp_path / "wal.jnl"
        sizes = []
        for _ in range(2):
            journal = Journal(str(path),
                              injector=FaultInjector(self.plan()))
            with pytest.raises(SimulatedCrashError):
                journal.append({"k": "only", "r": {"x": 1}})
            journal.close()
            sizes.append(path.stat().st_size)
            path.unlink()
        assert sizes[0] == sizes[1]

    def test_truncate_all_empties_the_file(self, tmp_path):
        path = tmp_path / "wal.jnl"
        journal = write_journal(path, records(3))
        journal.truncate_all()
        assert path.stat().st_size == 0
        assert Journal(str(path)).replay().records == []
