"""``jmake watch``: continuous ingest, kill/resume, unseen-only.

The fleet-mode acceptance surface: a killed-and-resumed watch run must
converge on a store byte-identical to an uninterrupted run's, and no
commit may ever be checked twice — across restarts, overlapping
streams, and both stream shapes.
"""

import pytest

from repro import api
from repro.errors import SimulatedCrashError, StoreError
from repro.obs.events import EventLog
from repro.workload.corpus import CorpusSpec, build_corpus


def run_watch(corpus, tmp_path, tag, **kwargs):
    """One watch run over dedicated store/journal files."""
    kwargs.setdefault("config", api.WatchConfig(
        batch_size=3, limit=6, fsync=False))
    return api.watch(corpus,
                     store=str(tmp_path / f"{tag}.sqlite"),
                     journal=str(tmp_path / f"{tag}.jnl"),
                     **kwargs)


def dump(tmp_path, tag):
    with api.open_store(str(tmp_path / f"{tag}.sqlite")) as store:
        return store.canonical_dump()


@pytest.fixture(scope="module")
def traffic_corpus():
    """A private corpus for the synthetic source (it appends commits
    to the repository, so the shared session corpus is off limits)."""
    return build_corpus(CorpusSpec(seed="watch-traffic-corpus",
                                   history_commits=120,
                                   eval_commits=20,
                                   regular_developers=6))


class TestWindowWatch:
    def test_drains_the_window_and_ingests(self, small_corpus,
                                           tmp_path):
        result = run_watch(small_corpus, tmp_path, "plain")
        assert result.fresh == 6
        assert result.commits_seen == 6
        assert result.ingested == 6
        assert result.batches == 2
        assert result.store_stats["verdicts"] == 6
        assert result.journal_stats["records"] == 6

    def test_rerun_checks_nothing_new(self, small_corpus, tmp_path):
        run_watch(small_corpus, tmp_path, "twice")
        again = run_watch(small_corpus, tmp_path, "twice",
                          resume=True)
        assert again.fresh == 0
        assert again.replayed == 6
        assert again.ingested == 0

    def test_query_answers_without_compiling(self, small_corpus,
                                             tmp_path, monkeypatch):
        run_watch(small_corpus, tmp_path, "readback")
        from repro.core import jmake

        def explode(*args, **kwargs):  # pragma: no cover
            raise AssertionError("query recompiled a commit")

        monkeypatch.setattr(jmake.CheckSession, "check_commit",
                            explode)
        verdicts = api.query_verdicts(
            str(tmp_path / "readback.sqlite"))
        assert len(verdicts) == 6
        assert all(v.record["schema_version"] == api.SCHEMA_VERSION
                   for v in verdicts)
        assert all(v.author_email for v in verdicts)


class TestKillAndResume:
    def test_store_is_byte_identical_after_resume(self, small_corpus,
                                                  tmp_path):
        run_watch(small_corpus, tmp_path, "plain")
        with pytest.raises(SimulatedCrashError):
            run_watch(small_corpus, tmp_path, "chaos",
                      config=api.WatchConfig(batch_size=3, limit=6,
                                             fsync=False,
                                             chaos_kill_after=4))
        resumed = run_watch(small_corpus, tmp_path, "chaos",
                            resume=True)
        assert resumed.replayed == 4
        assert resumed.fresh == 2
        assert dump(tmp_path, "chaos") == dump(tmp_path, "plain")

    def test_kill_during_first_batch_loses_nothing(self, small_corpus,
                                                   tmp_path):
        run_watch(small_corpus, tmp_path, "plain")
        with pytest.raises(SimulatedCrashError):
            run_watch(small_corpus, tmp_path, "early",
                      config=api.WatchConfig(batch_size=3, limit=6,
                                             fsync=False,
                                             chaos_kill_after=1))
        resumed = run_watch(small_corpus, tmp_path, "early",
                            resume=True)
        assert resumed.replayed == 1
        assert dump(tmp_path, "early") == dump(tmp_path, "plain")

    def test_limit_counts_the_backlog(self, small_corpus, tmp_path):
        """A resumed limit=N run stops at the same stream position an
        uninterrupted limit=N run does — the byte-identity hinge."""
        with pytest.raises(SimulatedCrashError):
            run_watch(small_corpus, tmp_path, "cap",
                      config=api.WatchConfig(batch_size=3, limit=6,
                                             fsync=False,
                                             chaos_kill_after=3))
        resumed = run_watch(small_corpus, tmp_path, "cap",
                            resume=True)
        assert resumed.replayed + resumed.fresh == 6


class TestSyntheticTraffic:
    def test_traffic_is_deterministic_across_processes(self, tmp_path,
                                                       traffic_corpus):
        """A resumed daemon regenerates the same synthetic commits, so
        kill/resume over *live* traffic is still byte-identical."""
        spec = traffic_corpus.spec
        corpus_a = build_corpus(spec)
        corpus_b = build_corpus(spec)
        config = api.WatchConfig(batch_size=2, fsync=False)
        plain = run_watch(corpus_a, tmp_path, "syn-plain",
                          source=api.SyntheticTrafficSource(
                              corpus_a, traffic=4),
                          config=config)
        # the log's modified-diff filter may drop a generated commit,
        # so "every checkable commit" can be < traffic
        assert plain.fresh >= 2
        with pytest.raises(SimulatedCrashError):
            run_watch(corpus_b, tmp_path, "syn-chaos",
                      source=api.SyntheticTrafficSource(
                          corpus_b, traffic=4),
                      config=api.WatchConfig(batch_size=2, fsync=False,
                                             chaos_kill_after=2))
        # the crash killed the process; resume from a fresh corpus
        # build, exactly like a restarted daemon would
        corpus_c = build_corpus(spec)
        run_watch(corpus_c, tmp_path, "syn-chaos",
                  source=api.SyntheticTrafficSource(corpus_c,
                                                    traffic=4),
                  config=config, resume=True)
        assert dump(tmp_path, "syn-chaos") == dump(tmp_path,
                                                   "syn-plain")

    def test_identity_includes_the_traffic_stream(self,
                                                  traffic_corpus):
        source = api.SyntheticTrafficSource(traffic_corpus, traffic=4,
                                            seed="s1")
        identity = source.identity()
        assert identity == {"source": "synthetic", "traffic": 4,
                            "traffic_seed": "s1"}

    def test_rejects_empty_traffic(self, traffic_corpus):
        with pytest.raises(ValueError, match="positive"):
            api.SyntheticTrafficSource(traffic_corpus, traffic=0)


class TestGuards:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            api.WatchConfig(batch_size=0)
        with pytest.raises(ValueError, match="limit"):
            api.WatchConfig(limit=0)
        with pytest.raises(ValueError, match="chaos_kill_after"):
            api.WatchConfig(chaos_kill_after=-1)

    def test_store_refuses_a_foreign_watch(self, small_corpus,
                                           tmp_path):
        run_watch(small_corpus, tmp_path, "mine")
        foreign = build_corpus(CorpusSpec(seed="other-fleet",
                                          history_commits=120,
                                          eval_commits=20,
                                          regular_developers=6))
        with pytest.raises(StoreError,
                           match="belongs to a different run"):
            api.watch(foreign,
                      store=str(tmp_path / "mine.sqlite"),
                      journal=str(tmp_path / "foreign.jnl"),
                      config=api.WatchConfig(batch_size=3, limit=3,
                                             fsync=False))


class TestTelemetry:
    def test_watch_events_and_lag_gauge(self, small_corpus, tmp_path):
        events = EventLog()
        metrics = api.MetricsRegistry()
        store = api.open_store(str(tmp_path / "tele.sqlite"),
                               metrics=metrics, events=events)
        with store:
            api.watch(small_corpus, store=store,
                      journal=str(tmp_path / "tele.jnl"),
                      config=api.WatchConfig(batch_size=3, limit=6,
                                             fsync=False),
                      events=events)
            data = metrics.to_dict()
        assert events.counts["watch.started"] == 1
        assert events.counts["watch.batch"] == 2
        assert events.counts["watch.stopped"] == 1
        assert events.counts["ingest.batch"] >= 2
        assert data["counters"]["store.ingested"] == 6
        assert data["gauges"]["store.lag"] == 0
        assert data["gauges"]["store.verdicts"] == 6
