"""The unit decomposition: DAG shape and sequential equivalence.

The pipeline generators yield one WorkUnit per former build-system
call site; ``run_units`` must reproduce the monolithic behavior
exactly, and the recorded DAG must have the §III-D stage structure
(mutate → config → preprocess → grep → certify).
"""

import pytest

from repro.core.jmake import CheckSession
from repro.core.units import (
    ARCH_STAGES,
    STAGE_CERTIFY,
    STAGE_CONFIG,
    STAGE_GREP,
    STAGE_MUTATE,
    STAGE_PREPROCESS,
    UnitDag,
    UnitFailure,
    WorkUnit,
    run_units,
)

pytestmark = pytest.mark.usefixtures("small_corpus")


@pytest.fixture(scope="module")
def traced(small_corpus, checkable_commits):
    """One commit checked through the generator, DAG recorded."""
    session = CheckSession.from_generated_tree(small_corpus.tree)
    commit = checkable_commits[0]
    dag = UnitDag(request_id="traced")
    generator = session.iter_check_commit(
        small_corpus.repository, commit, dag=dag)
    report = run_units(generator)
    return commit, dag, report


class TestUnitPrimitives:
    def test_failure_is_falsy(self):
        assert not UnitFailure("boom", kind="timeout")
        assert UnitFailure("boom").kind == ""

    def test_occupancy_counts_paths(self):
        unit = WorkUnit(stage=STAGE_PREPROCESS, run=lambda: None,
                        paths=("a.c", "b.c", "c.c"))
        assert unit.occupancy == 3

    def test_dag_assigns_sequential_ids(self):
        dag = UnitDag()
        first = dag.new_unit(STAGE_MUTATE, lambda: None)
        second = dag.new_unit(STAGE_CONFIG, lambda: None,
                              arch="x86_64", deps=(first.unit_id,))
        assert (first.unit_id, second.unit_id) == (0, 1)
        assert len(dag) == 2
        assert dag.edges() == [(0, 1)]
        assert dag.stage_of(1) == STAGE_CONFIG


class TestDagShape:
    def test_stages_present(self, traced):
        _, dag, _ = traced
        counts = dag.stage_counts()
        assert counts.get(STAGE_MUTATE) == 1
        for stage in (STAGE_CONFIG, STAGE_PREPROCESS, STAGE_GREP):
            assert counts.get(stage, 0) >= 1, stage

    def test_every_non_mutate_unit_depends_on_something(self, traced):
        _, dag, _ = traced
        for unit in dag.units:
            if unit.stage == STAGE_MUTATE:
                assert unit.deps == ()
            else:
                assert unit.deps, f"{unit.stage} unit has no deps"

    def test_edges_point_backwards(self, traced):
        _, dag, _ = traced
        for dep, unit_id in dag.edges():
            assert 0 <= dep < unit_id < len(dag)

    def test_arch_stages_carry_routing_keys(self, traced):
        _, dag, _ = traced
        for unit in dag.units:
            if unit.stage in ARCH_STAGES:
                assert unit.arch, f"{unit.stage} unit without arch"
                assert unit.config_target
            if unit.stage == STAGE_PREPROCESS:
                assert unit.occupancy >= 1
            if unit.stage == STAGE_CERTIFY:
                assert unit.occupancy == 1

    def test_to_dict_is_json_shaped(self, traced):
        import json
        _, dag, _ = traced
        payload = dag.to_dict()
        assert payload["request_id"] == "traced"
        assert len(payload["units"]) == len(dag)
        json.dumps(payload)


class TestSequentialEquivalence:
    def test_generator_matches_monolithic_check(self, small_corpus,
                                                traced):
        commit, _, report = traced
        fresh = CheckSession.from_generated_tree(small_corpus.tree)
        direct = fresh.check_commit(small_corpus.repository, commit)
        assert direct.to_dict() == report.to_dict()
