"""The service-mode acceptance surface: byte-identical verdicts.

The INVARIANT of the check service (DESIGN.md §6): for any corpus, any
shard count, cache on or off, fault plan active or not, the
verdict-bearing canonical records of a service-mode run are
byte-identical to the sequential ``EvaluationSession`` run. This is
the service analogue of the cache-equivalence and fault-determinism
suites, and it is what makes the service safe to put in front of
janitors: sharding and cross-request batching are pure scheduling.
"""

import pytest

from repro.evalsuite.runner import EvaluationSession
from repro.service import ServiceConfig

LIMIT = 30


@pytest.fixture(scope="module")
def sequential(small_corpus):
    """The clean reference: serial, private cache, no faults."""
    return EvaluationSession(small_corpus).run(limit=LIMIT)


@pytest.fixture(scope="module")
def faulted_sequential(small_corpus, storm_plan):
    """The faulted reference: serial run under the mixed storm."""
    return EvaluationSession(small_corpus,
                             fault_plan=storm_plan).run(limit=LIMIT)


class TestCleanRunsMatch:
    def test_default_service_config(self, small_corpus, sequential):
        via_service = EvaluationSession(small_corpus).run(
            limit=LIMIT, service=True)
        assert via_service.canonical_records() == \
            sequential.canonical_records()

    def test_tiny_batch_limit_is_invariant(self, small_corpus,
                                           sequential):
        config = ServiceConfig(shards=2, batch_limit=3)
        via_service = EvaluationSession(small_corpus).run(
            limit=LIMIT, service=config)
        assert via_service.canonical_records() == \
            sequential.canonical_records()


class TestFaultedRunsMatch:
    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize("cache", [False, True])
    def test_shards_times_cache_grid(self, small_corpus, storm_plan,
                                     faulted_sequential, shards,
                                     cache):
        via_service = EvaluationSession(
            small_corpus, cache=cache,
            fault_plan=storm_plan).run(limit=LIMIT, service=shards)
        assert via_service.canonical_records() == \
            faulted_sequential.canonical_records()

    def test_storm_actually_stormed(self, faulted_sequential,
                                    sequential):
        assert faulted_sequential.canonical_records() != \
            sequential.canonical_records()
        assert sum(len(patch.fault_reports)
                   for patch in faulted_sequential.patches) > 0
