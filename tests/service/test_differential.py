"""The service-mode acceptance surface: byte-identical verdicts.

The INVARIANT of the check service (DESIGN.md §6): for any corpus, any
shard count, cache on or off, fault plan active or not — and, since
the transport layer, any execution substrate — the verdict-bearing
canonical records of a service-mode run are byte-identical to the
sequential ``EvaluationSession`` run. This is the service analogue of
the cache-equivalence and fault-determinism suites, and it is what
makes the service safe to put in front of janitors: sharding,
cross-request batching, and process placement are pure scheduling.

The transport matrix is the tentpole acceptance surface for the
mp/socket backends: every cell (transport × cache × storm) must
reproduce the sequential bytes exactly, including the
``PARTIAL:<arch>`` verdicts the storm's quarantine trips produce —
a verdict that crossed a pipe or a socket is the same verdict.
"""

import pytest

from repro.evalsuite.runner import EvaluationSession
from repro.faults.plan import FaultPlan, FaultSpec
from repro.service import ServiceConfig

LIMIT = 30

TRANSPORTS = ["asyncio", "mp", "socket"]

#: persistent arm config failure: survives every retry, so the
#: per-patch circuit breaker benches the arch and the verdict
#: degrades to PARTIAL:arm (the same plan test_partial.py trusts)
QUARANTINE_PLAN = FaultPlan(seed="bench-arm", specs=[
    FaultSpec(kind="config_fail", arch="arm", times=10)])


@pytest.fixture(scope="module")
def sequential(small_corpus):
    """The clean reference: serial, private cache, no faults."""
    return EvaluationSession(small_corpus).run(limit=LIMIT)


@pytest.fixture(scope="module")
def faulted_sequential(small_corpus, storm_plan):
    """The faulted reference: serial run under the mixed storm."""
    return EvaluationSession(small_corpus,
                             fault_plan=storm_plan).run(limit=LIMIT)


class TestCleanRunsMatch:
    def test_default_service_config(self, small_corpus, sequential):
        via_service = EvaluationSession(small_corpus).run(
            limit=LIMIT, service=True)
        assert via_service.canonical_records() == \
            sequential.canonical_records()

    def test_tiny_batch_limit_is_invariant(self, small_corpus,
                                           sequential):
        config = ServiceConfig(shards=2, batch_limit=3)
        via_service = EvaluationSession(small_corpus).run(
            limit=LIMIT, service=config)
        assert via_service.canonical_records() == \
            sequential.canonical_records()


class TestFaultedRunsMatch:
    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize("cache", [False, True])
    def test_shards_times_cache_grid(self, small_corpus, storm_plan,
                                     faulted_sequential, shards,
                                     cache):
        via_service = EvaluationSession(
            small_corpus, cache=cache,
            fault_plan=storm_plan).run(limit=LIMIT, service=shards)
        assert via_service.canonical_records() == \
            faulted_sequential.canonical_records()

    def test_storm_actually_stormed(self, faulted_sequential,
                                    sequential):
        assert faulted_sequential.canonical_records() != \
            sequential.canonical_records()
        assert sum(len(patch.fault_reports)
                   for patch in faulted_sequential.patches) > 0


class TestTransportMatrix:
    """transport × cache × storm: every cell reproduces the bytes."""

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_clean_grid(self, small_corpus, sequential, transport):
        config = ServiceConfig(transport=transport, jobs=2)
        via_service = EvaluationSession(small_corpus).run(
            limit=LIMIT, service=config)
        assert via_service.canonical_records() == \
            sequential.canonical_records()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("cache", [False, True])
    def test_storm_grid(self, small_corpus, storm_plan,
                        faulted_sequential, transport, cache):
        config = ServiceConfig(transport=transport, jobs=2)
        via_service = EvaluationSession(
            small_corpus, cache=cache,
            fault_plan=storm_plan).run(limit=LIMIT, service=config)
        assert via_service.canonical_records() == \
            faulted_sequential.canonical_records()


class TestQuarantineMatrix:
    """PARTIAL:<arch> verdicts cross every transport byte-identically.

    The mixed storm perturbs timing and retries but never benches an
    arch, so the PARTIAL leg gets its own plan: a persistent arm
    config failure that trips the per-patch circuit breaker. The
    sequential reference proves the hard case is actually present;
    the grid proves a quarantine verdict that crossed a pipe or a
    socket is the same verdict.
    """

    @pytest.fixture(scope="class")
    def quarantined_sequential(self, small_corpus):
        return EvaluationSession(
            small_corpus,
            fault_plan=QUARANTINE_PLAN).run(limit=LIMIT)

    def test_reference_contains_partial_verdicts(
            self, quarantined_sequential):
        partial = [patch for patch in quarantined_sequential.patches
                   if patch.verdict.startswith("PARTIAL:")]
        assert partial, (
            "quarantine plan no longer benches arm; the PARTIAL leg "
            "of the transport matrix would be vacuous")
        for patch in partial:
            assert patch.verdict == "PARTIAL:arm"
            assert patch.quarantined_archs == ["arm"]
        assert "verdict=PARTIAL:arm" in \
            quarantined_sequential.canonical_records()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_partial_verdicts_cross_transports(
            self, small_corpus, quarantined_sequential, transport):
        config = ServiceConfig(transport=transport, jobs=2)
        via_service = EvaluationSession(
            small_corpus,
            fault_plan=QUARANTINE_PLAN).run(limit=LIMIT,
                                            service=config)
        assert via_service.canonical_records() == \
            quarantined_sequential.canonical_records()
