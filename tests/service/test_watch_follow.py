"""``jmake watch --follow``: the long-lived daemon loop.

Plain watch exits when the stream is dry; follow mode treats dry as
*idle* and polls until a stop condition fires — a stop file, a
signal-installed :meth:`WatchSession.request_stop`, an idle timeout,
or a spent commit budget. Every stop lands at a batch boundary, so
whatever was checked is durable before the loop winds down.
"""

import threading

import pytest

from repro import api
from repro.obs.events import (
    EVENT_WATCH_IDLE,
    EVENT_WATCH_STOPPED,
    EventLog,
)
from repro.service.watch import WatchConfig, WatchSession, WindowSource


class FiniteSource:
    """A window stream that dries up after ``total`` commits.

    Follow mode needs a source that goes *quiet* without the session's
    commit budget being spent — that is the state where a real daemon
    sits between pushes, and where idle polling, stop files, and
    signals are the only ways out.
    """

    kind = "window"

    def __init__(self, corpus, total):
        self._inner = WindowSource(corpus)
        self._remaining = total

    def identity(self):
        return self._inner.identity()

    def next_commits(self, limit):
        if self._remaining <= 0:
            return []
        commits = self._inner.next_commits(
            min(limit, self._remaining))
        self._remaining -= len(commits)
        return commits


def follow_session(corpus, tmp_path, tag, *, total=3, events=None,
                   **config_overrides):
    settings = dict(batch_size=3, fsync=False, follow=True,
                    poll_interval_seconds=0.05)
    settings.update(config_overrides)
    return WatchSession(
        corpus,
        store=str(tmp_path / f"{tag}.sqlite"),
        journal=str(tmp_path / f"{tag}.jnl"),
        source=FiniteSource(corpus, total),
        config=WatchConfig(**settings),
        events=events if events is not None else EventLog())


class TestIdleTimeout:
    def test_dry_stream_idles_then_times_out(self, small_corpus,
                                             tmp_path):
        events = EventLog()
        session = follow_session(small_corpus, tmp_path, "idle",
                                 events=events,
                                 idle_timeout_seconds=0.3)
        result = session.run()
        # the work landed before the loop went idle
        assert result.fresh == 3
        assert result.ingested == 3
        assert result.stopped_by == "idle-timeout"
        assert result.idle_polls > 0
        assert events.counts[EVENT_WATCH_IDLE] == result.idle_polls
        stopped = events.events(EVENT_WATCH_STOPPED)[0]
        assert stopped.attrs["stopped_by"] == "idle-timeout"

    def test_traffic_resets_the_idle_clock(self, small_corpus,
                                           tmp_path):
        """idle_since restarts on every non-empty batch, so a stream
        that keeps trickling never times out mid-flow."""

        class TrickleSource(FiniteSource):
            """Dry on every other poll."""

            def __init__(self, corpus, total):
                super().__init__(corpus, total)
                self._turn = False

            def next_commits(self, limit):
                self._turn = not self._turn
                if not self._turn:
                    return []
                return super().next_commits(min(limit, 1))

        session = WatchSession(
            small_corpus,
            store=str(tmp_path / "trickle.sqlite"),
            journal=str(tmp_path / "trickle.jnl"),
            source=TrickleSource(small_corpus, 3),
            config=WatchConfig(batch_size=2, fsync=False, follow=True,
                               poll_interval_seconds=0.05,
                               idle_timeout_seconds=0.4),
            events=EventLog())
        result = session.run()
        assert result.fresh == 3
        assert result.stopped_by == "idle-timeout"


class TestStopFile:
    def test_existing_stop_file_halts_before_any_batch(
            self, small_corpus, tmp_path):
        stop = tmp_path / "watch.stop"
        stop.touch()
        session = follow_session(small_corpus, tmp_path, "stopfile",
                                 stop_file=str(stop))
        result = session.run()
        assert result.stopped_by == "stop-file"
        assert result.fresh == 0
        assert result.batches == 0

    def test_stop_file_appearing_mid_idle_halts(self, small_corpus,
                                                tmp_path):
        stop = tmp_path / "late.stop"
        session = follow_session(small_corpus, tmp_path, "latefile",
                                 stop_file=str(stop))
        timer = threading.Timer(0.3, stop.touch)
        timer.start()
        try:
            result = session.run()
        finally:
            timer.cancel()
        assert result.stopped_by == "stop-file"
        assert result.fresh == 3  # the batch finished first


class TestRequestStop:
    def test_request_stop_from_another_thread(self, small_corpus,
                                              tmp_path):
        """The signal-handler path: flip the flag while the loop is
        idle-polling and it stops at the next boundary."""
        session = follow_session(small_corpus, tmp_path, "signal")
        timer = threading.Timer(0.3, session.request_stop)
        timer.start()
        try:
            result = session.run()
        finally:
            timer.cancel()
        assert result.stopped_by == "signal"
        assert result.fresh == 3
        assert result.ingested == 3

    def test_stop_reason_is_carried_through(self, small_corpus,
                                            tmp_path):
        session = follow_session(small_corpus, tmp_path, "reason")
        timer = threading.Timer(
            0.2, lambda: session.request_stop("operator"))
        timer.start()
        try:
            result = session.run()
        finally:
            timer.cancel()
        assert result.stopped_by == "operator"


class TestBudgetStops:
    def test_spent_limit_drains_even_in_follow_mode(self,
                                                    small_corpus,
                                                    tmp_path):
        """A follow daemon with a commit budget behaves like plain
        watch once the budget is spent: it reports drained and never
        idles — this is what keeps the CLI's 'watch drained:' summary
        stable for scripted runs."""
        session = follow_session(small_corpus, tmp_path, "budget",
                                 total=10, limit=6)
        result = session.run()
        assert result.stopped_by == "drained"
        assert result.fresh == 6
        assert result.idle_polls == 0

    def test_max_batches_stops_follow_mode(self, small_corpus,
                                           tmp_path):
        session = follow_session(small_corpus, tmp_path, "batches",
                                 total=10, max_batches=1)
        result = session.run()
        assert result.stopped_by == "max-batches"
        assert result.fresh == 3
        assert result.batches == 1


class TestFollowConfigSurface:
    def test_api_exports_the_session(self):
        assert api.WatchSession is WatchSession
        assert api.WatchConfig is WatchConfig

    def test_bad_poll_interval_rejected(self):
        with pytest.raises(ValueError):
            WatchConfig(poll_interval_seconds=0)

    def test_bad_idle_timeout_rejected(self):
        with pytest.raises(ValueError):
            WatchConfig(idle_timeout_seconds=-1.0)

    def test_follow_defaults_are_off(self):
        config = WatchConfig()
        assert config.follow is False
        assert config.stop_file is None
        assert config.idle_timeout_seconds is None
