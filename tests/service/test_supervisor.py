"""Supervised workers: crash/hang recovery, restart budget, breakers.

The unit tests drive a bare :class:`ShardPool` with toy jobs and call
``sweep()`` directly (no real-time polling); the chaos tests run the
whole :class:`CheckService` under ``worker_crash``/``worker_hang``
storms and pin the verdicts against a fault-free baseline — process
faults must be verdict-neutral.
"""

import asyncio

import pytest

from repro.errors import ServiceOverloadedError
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.service import (
    CheckRequest,
    CheckService,
    ServiceConfig,
    ShardPool,
    ShardSupervisor,
    SupervisorConfig,
)

FAST = SupervisorConfig(poll_interval_seconds=0.005,
                        hang_deadline_seconds=0.05,
                        backoff_base_seconds=0.0,
                        max_restarts_per_shard=100)


def crash_plan(*, path="", rate=1.0):
    return FaultPlan(seed="crash", specs=[
        FaultSpec(kind="worker_crash", site="worker",
                  path=path, rate=rate)])


def hang_plan(*, path=""):
    return FaultPlan(seed="hang", specs=[
        FaultSpec(kind="worker_hang", site="worker", path=path)])


class TestSupervisorConfig:
    def test_defaults_are_valid(self):
        SupervisorConfig()

    @pytest.mark.parametrize("field,value", [
        ("poll_interval_seconds", 0.0),
        ("poll_interval_seconds", -1.0),
        ("hang_deadline_seconds", 0.0),
        ("max_restarts_per_shard", -1),
    ])
    def test_bad_values_are_rejected(self, field, value):
        with pytest.raises(ValueError):
            SupervisorConfig(**{field: value})

    def test_backoff_is_exponential_and_capped(self):
        config = SupervisorConfig(backoff_base_seconds=0.01,
                                  backoff_factor=2.0,
                                  backoff_max_seconds=0.05)
        assert config.backoff_seconds(1) == pytest.approx(0.01)
        assert config.backoff_seconds(2) == pytest.approx(0.02)
        assert config.backoff_seconds(3) == pytest.approx(0.04)
        assert config.backoff_seconds(4) == pytest.approx(0.05)
        assert config.backoff_seconds(10) == pytest.approx(0.05)


class TestCrashRecovery:
    def test_crashed_worker_is_revived_and_the_job_requeued(self):
        async def main():
            pool = ShardPool(
                1, injector=FaultInjector(crash_plan(path="pickup-1")))
            pool.start()
            supervisor = ShardSupervisor(pool, config=FAST)
            shard = pool.shards[0]
            ran = []
            await shard.enqueue(lambda: ran.append("job"))
            await asyncio.sleep(0.01)   # worker picks up and crashes
            assert shard.task.done()
            assert ran == []
            await supervisor.sweep()
            await shard.queue.join()
            assert ran == ["job"]       # exactly once, after requeue
            assert supervisor.crashes_detected == 1
            assert supervisor.requeued_jobs == 1
            assert supervisor.restarts == 1
            assert shard.restarts == 1
            assert not shard.breaker_open
            await pool.stop()
        asyncio.run(main())

    def test_jobs_queued_behind_the_crash_still_run(self):
        async def main():
            pool = ShardPool(
                1, injector=FaultInjector(crash_plan(path="pickup-1")))
            pool.start()
            supervisor = ShardSupervisor(pool, config=FAST)
            shard = pool.shards[0]
            ran = []
            for index in range(4):
                await shard.enqueue(
                    lambda index=index: ran.append(index))
            await asyncio.sleep(0.01)
            await supervisor.sweep()
            await shard.queue.join()
            # requeue puts the claimed job at the back; all ran once
            assert sorted(ran) == [0, 1, 2, 3]
            await pool.stop()
        asyncio.run(main())


class TestHangRecovery:
    def test_hung_worker_is_killed_and_revived(self):
        async def main():
            pool = ShardPool(
                1, injector=FaultInjector(hang_plan(path="pickup-1")))
            pool.start()
            supervisor = ShardSupervisor(pool, config=FAST)
            shard = pool.shards[0]
            ran = []
            await shard.enqueue(lambda: ran.append("job"))
            await asyncio.sleep(0.06)   # hold past the hang deadline
            assert shard.hung
            assert not shard.task.done()  # alive but parked
            await supervisor.sweep()
            await shard.queue.join()
            assert ran == ["job"]
            assert supervisor.hangs_detected == 1
            assert supervisor.requeued_jobs == 1
            await pool.stop()
        asyncio.run(main())

    def test_idle_worker_is_never_hung(self):
        async def main():
            pool = ShardPool(1)
            pool.start()
            supervisor = ShardSupervisor(
                pool, config=SupervisorConfig(
                    hang_deadline_seconds=0.001))
            await asyncio.sleep(0.01)   # idle far past the deadline
            await supervisor.sweep()
            assert supervisor.hangs_detected == 0
            await pool.stop()
        asyncio.run(main())


class TestCircuitBreaker:
    def test_exhausted_restart_budget_opens_the_breaker(self):
        async def main():
            # every pickup crashes; budget of 2 restarts
            pool = ShardPool(1, injector=FaultInjector(crash_plan()))
            pool.start()
            config = SupervisorConfig(poll_interval_seconds=0.005,
                                      backoff_base_seconds=0.0,
                                      max_restarts_per_shard=2)
            supervisor = ShardSupervisor(pool, config=config)
            shard = pool.shards[0]
            ran = []
            for index in range(3):
                await shard.enqueue(
                    lambda index=index: ran.append(index))
            for _ in range(10):
                await asyncio.sleep(0.005)
                await supervisor.sweep()
                if shard.breaker_open:
                    break
            assert shard.breaker_open
            assert "restart budget exhausted" in shard.breaker_reason
            assert supervisor.breakers_opened == 1
            # the queue was drained inline: every job ran exactly once
            assert sorted(ran) == [0, 1, 2]
            assert shard.inline_jobs == 3
            # new work on a broken shard runs inline immediately
            await shard.enqueue(lambda: ran.append("late"))
            assert ran[-1] == "late"
            # join() must not wait on a breaker-open shard
            await pool.join()
            assert supervisor.stats()["breaker_open_shards"] == [0]
            await pool.stop()
        asyncio.run(main())

    def test_zero_restart_budget_breaks_on_first_crash(self):
        async def main():
            pool = ShardPool(
                1, injector=FaultInjector(crash_plan(path="pickup-1")))
            pool.start()
            supervisor = ShardSupervisor(
                pool, config=SupervisorConfig(max_restarts_per_shard=0))
            shard = pool.shards[0]
            await shard.enqueue(lambda: None)
            await asyncio.sleep(0.01)
            await supervisor.sweep()
            assert shard.breaker_open
            assert supervisor.restarts == 0
            await pool.stop()
        asyncio.run(main())


class TestServiceUnderChaos:
    """Whole-service chaos: verdicts must match the fault-free run."""

    COMMITS = 6

    @pytest.fixture(scope="class")
    def baseline_records(self, small_corpus, checkable_commits):
        service = CheckService(small_corpus,
                               config=ServiceConfig(shards=2))
        commit_ids = [commit.id
                      for commit in checkable_commits[:self.COMMITS]]
        results = service.check_commits(commit_ids)
        return [result.record for result in results]

    def run_storm(self, corpus, commits, plan, *,
                  supervisor=FAST) -> tuple:
        service = CheckService(
            corpus, config=ServiceConfig(shards=2, fault_plan=plan,
                                         supervisor=supervisor))
        results = service.check_commits(
            [commit.id for commit in commits[:self.COMMITS]])
        return [result.record for result in results], service

    def test_crash_storm_preserves_every_verdict(
            self, small_corpus, checkable_commits, baseline_records):
        records, service = self.run_storm(
            small_corpus, checkable_commits, crash_plan(rate=0.2))
        stats = service.stats()["supervisor"]
        assert stats["crashes_detected"] > 0
        assert stats["requeued_jobs"] > 0
        assert stats["breaker_open_shards"] == []
        assert records == baseline_records

    def test_hang_storm_preserves_every_verdict(
            self, small_corpus, checkable_commits, baseline_records):
        records, service = self.run_storm(
            small_corpus, checkable_commits,
            hang_plan(path="pickup-2"))
        stats = service.stats()["supervisor"]
        assert stats["hangs_detected"] >= 1
        assert records == baseline_records

    def test_breaker_degradation_preserves_every_verdict(
            self, small_corpus, checkable_commits, baseline_records):
        # every pickup crashes; tiny budget -> breakers open on both
        # shards and everything degrades to inline execution
        records, service = self.run_storm(
            small_corpus, checkable_commits, crash_plan(),
            supervisor=SupervisorConfig(poll_interval_seconds=0.005,
                                        backoff_base_seconds=0.0,
                                        max_restarts_per_shard=1))
        stats = service.stats()
        assert stats["supervisor"]["breakers_opened"] >= 1
        assert any(shard["inline_jobs"] > 0
                   for shard in stats["shards"])
        assert records == baseline_records

    def test_breaker_state_is_visible_in_stats(self, small_corpus,
                                               checkable_commits):
        service = CheckService(
            small_corpus,
            config=ServiceConfig(
                shards=1, fault_plan=crash_plan(),
                supervisor=SupervisorConfig(
                    poll_interval_seconds=0.005,
                    backoff_base_seconds=0.0,
                    max_restarts_per_shard=0)))
        service.check_commits([checkable_commits[0].id])
        stats = service.stats()
        assert stats["supervisor"]["breaker_open_shards"] == [0]
        shard = stats["shards"][0]
        assert shard["breaker_open"]
        assert shard["breaker_reason"]


class TestOverloadError:
    def test_rejection_carries_structured_fields(self, small_corpus,
                                                 checkable_commits):
        async def main():
            service = CheckService(
                small_corpus,
                config=ServiceConfig(shards=1,
                                     max_pending_requests=1))
            await service.start()
            try:
                first = service.submit_nowait(
                    CheckRequest(commit_id=checkable_commits[0].id))
                await asyncio.sleep(0)
                with pytest.raises(ServiceOverloadedError) as excinfo:
                    service.submit_nowait(CheckRequest(
                        commit_id=checkable_commits[1].id))
                error = excinfo.value
                assert error.limit == 1
                assert error.queue_depth >= 1
                assert error.shard_id == 0
                await first
            finally:
                await service.drain()
        asyncio.run(main())
