"""Cross-request batching: occupancy packing, flush triggers, drain."""

import asyncio

import pytest

from repro.core.units import STAGE_PREPROCESS, WorkUnit
from repro.service.batcher import CrossRequestBatcher
from repro.service.shards import ShardPool


def preprocess_unit(paths, *, arch="x86_64",
                    config_target="allyesconfig", log=None, tag=None):
    def run():
        if log is not None:
            log.append(tag)
        return tag
    return WorkUnit(stage=STAGE_PREPROCESS, run=run, arch=arch,
                    config_target=config_target, paths=tuple(paths))


async def with_batcher(body, **kwargs):
    pool = ShardPool(kwargs.pop("shards", 2))
    pool.start()
    batcher = CrossRequestBatcher(pool, **kwargs)
    try:
        await body(batcher, pool)
        await batcher.drain()
        await pool.join()
    finally:
        await pool.stop()


class TestCoalescing:
    def test_same_tick_units_share_one_batch(self):
        async def body(batcher, pool):
            units = [preprocess_unit([f"f{i}.c"], tag=i)
                     for i in range(4)]
            results = await asyncio.gather(
                *[batcher.submit(unit) for unit in units])
            assert results == [0, 1, 2, 3]
            assert batcher.flushes == 1
            assert batcher.units_batched == 4
        asyncio.run(with_batcher(body, batch_limit=50))

    def test_different_keys_never_coalesce(self):
        async def body(batcher, pool):
            await asyncio.gather(
                batcher.submit(preprocess_unit(["a.c"], arch="arm")),
                batcher.submit(preprocess_unit(["b.c"], arch="mips")),
                batcher.submit(preprocess_unit(
                    ["c.c"], arch="arm", config_target="defconfig")))
            assert batcher.flushes == 3
        asyncio.run(with_batcher(body, batch_limit=50))

    def test_batch_runs_fifo(self):
        log = []

        async def body(batcher, pool):
            units = [preprocess_unit([f"f{i}.c"], log=log, tag=i)
                     for i in range(6)]
            await asyncio.gather(
                *[batcher.submit(unit) for unit in units])
            assert log == sorted(log)
        asyncio.run(with_batcher(body, batch_limit=50))


class TestOccupancyLimit:
    def test_exact_fill_flushes_immediately(self):
        async def body(batcher, pool):
            await asyncio.gather(
                batcher.submit(preprocess_unit(["a.c", "b.c"])),
                batcher.submit(preprocess_unit(["c.c", "d.c"])))
            assert batcher.flushes == 1
        asyncio.run(with_batcher(body, batch_limit=4))

    def test_overflow_preflushes_open_group(self):
        async def body(batcher, pool):
            big = preprocess_unit(["a.c", "b.c", "c.c"])
            bigger = preprocess_unit(["d.c", "e.c", "f.c"])
            await asyncio.gather(batcher.submit(big),
                                 batcher.submit(bigger))
            # 3 + 3 would exceed limit 4: each unit gets its own batch
            assert batcher.flushes == 2
        asyncio.run(with_batcher(body, batch_limit=4))

    def test_occupancy_never_exceeds_limit(self):
        from repro.obs.metrics import MetricsRegistry
        limit = 5
        metrics = MetricsRegistry()

        async def body(batcher, pool):
            units = [preprocess_unit([f"{i}a.c", f"{i}b.c"], tag=i)
                     for i in range(8)]
            results = await asyncio.gather(
                *[batcher.submit(unit) for unit in units])
            assert results == list(range(8))
            # occupancy-2 units under limit 5 pack at most two per
            # batch, so 8 units need at least 4 flushes
            assert batcher.flushes >= 4
            assert batcher.units_batched == 8
            histogram = metrics.histogram("service.batch.occupancy")
            assert histogram.count == batcher.flushes
            assert histogram.total == 16
            assert histogram.mean <= limit
        asyncio.run(with_batcher(body, batch_limit=limit,
                                 metrics=metrics))

    def test_rejects_bad_limit(self):
        pool = ShardPool(1)
        with pytest.raises(ValueError):
            CrossRequestBatcher(pool, batch_limit=0)


class TestWindowAndDrain:
    def test_timed_window_flushes_later(self):
        async def body(batcher, pool):
            task = asyncio.get_running_loop().create_task(
                batcher.submit(preprocess_unit(["a.c"], tag="late")))
            await asyncio.sleep(0)
            assert batcher.pending_units == 1
            assert batcher.flushes == 0
            assert await task == "late"
            assert batcher.flushes == 1
        asyncio.run(with_batcher(body, batch_limit=50,
                                 batch_window=0.01))

    def test_drain_flushes_partial_groups(self):
        async def body(batcher, pool):
            task = asyncio.get_running_loop().create_task(
                batcher.submit(preprocess_unit(["a.c"], tag="z")))
            await asyncio.sleep(0)
            # window is long: only drain() can flush this group
            batcher.flush_all()
            assert await task == "z"
        asyncio.run(with_batcher(body, batch_limit=50, batch_window=60))

    def test_stats_shape(self):
        async def body(batcher, pool):
            await batcher.submit(preprocess_unit(["a.c"]))
            stats = batcher.stats()
            assert stats["flushes"] == 1
            assert stats["units_batched"] == 1
            assert stats["pending_units"] == 0
        asyncio.run(with_batcher(body, batch_limit=50))

    def test_batch_counts_land_on_owning_shard(self):
        async def body(batcher, pool):
            await asyncio.gather(
                batcher.submit(preprocess_unit(["a.c"], arch="arm")),
                batcher.submit(preprocess_unit(["b.c"], arch="arm")))
            await batcher.drain()
            await pool.join()
            shard = pool.shard_for("arm")
            assert shard.batches_run == 1
            assert shard.units_run == 2
            assert shard.archs_seen == {"arm"}
        asyncio.run(with_batcher(body, batch_limit=50, shards=4))
