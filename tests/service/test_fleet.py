"""Cross-host worker fleet: auth, leases, fencing, partitions.

The socket transport stops being a local-spawn detail here: external
``WorkerClient`` sessions dial a listening coordinator, authenticate
with an HMAC challenge/response, rebuild the corpus from the shipped
deterministic spec, and serve under heartbeat-fed leases. Chaos moves
from the process to the *network* — partitions heal via rejoin,
half-open links die by lease expiry, slow links survive on heartbeats
— and the byte-identity bar from the transport matrix still holds.
"""

import asyncio
import threading

import pytest

from repro.errors import (
    AuthError,
    CorpusMismatchError,
    TransportError,
    WireSchemaError,
)
from repro.evalsuite.runner import EvaluationSession
from repro.faults.chaos import transport_chaos_plan
from repro.faults.plan import (
    KIND_NET_HALF_OPEN,
    KIND_NET_PARTITION,
    KIND_NET_SLOW,
    FaultPlan,
    FaultSpec,
)
from repro.obs.events import (
    EVENT_AUTH_REJECTED,
    EVENT_LEASE_EXPIRED,
    EVENT_LEASE_FENCED,
    EVENT_WORKER_REGISTERED,
    EVENT_WORKER_REJOINED,
    EventLog,
)
from repro.service import (
    CheckRequest,
    CheckService,
    ServiceConfig,
    SupervisorConfig,
)
from repro.service.transport import create_transport, wire
from repro.service.transport.client import ReconnectPolicy, WorkerClient

LIMIT = 3

AUTH_KEY = "fleet-secret"

FAST_SUPERVISOR = SupervisorConfig(hang_deadline_seconds=5.0,
                                   backoff_base_seconds=0.01,
                                   backoff_max_seconds=0.05)


@pytest.fixture(scope="module")
def reference_records(small_corpus, checkable_commits):
    service = CheckService(small_corpus)
    results = service.check_commits(
        [commit.id for commit in checkable_commits[:LIMIT]])
    return [result.record for result in results]


def first_pickup_plan(kind: str) -> FaultPlan:
    return FaultPlan(seed="fleet-chaos",
                     specs=[FaultSpec(kind=kind, arch="worker-0",
                                      path="pickup-1")])


# -- wire-level handshake surface -------------------------------------------

class TestHandshakeMessages:
    def test_challenge_welcome_heartbeat_round_trip(self):
        for msg_type, payload in [
                (wire.MSG_CHALLENGE, wire.challenge_message("abc123")),
                (wire.MSG_WELCOME, wire.welcome_message(
                    2, 7, "deadbeef", 0.5, 2.0)),
                (wire.MSG_HEARTBEAT, wire.heartbeat_message(2, 7))]:
            frame = wire.encode_frame(msg_type, payload)
            got_type, got_payload, end = wire.decode_frame(frame)
            assert got_type == msg_type
            assert got_payload == payload
            assert end == len(frame)

    def test_welcome_missing_field_rejected(self):
        payload = wire.welcome_message(0, 1, "f", 0.0, 0.0)
        del payload["fingerprint"]
        with pytest.raises(WireSchemaError):
            wire.encode_frame(wire.MSG_WELCOME, payload)

    def test_work_and_verdict_frames_require_lease(self):
        payload = wire.work_message(1, "r-1", "c-1")
        assert payload["lease"] == 0  # pipe transports stay valid
        del payload["lease"]
        with pytest.raises(WireSchemaError):
            wire.validate_message(wire.MSG_WORK, payload)

    def test_auth_token_is_keyed_and_nonce_bound(self):
        token = wire.auth_token(AUTH_KEY, "nonce-1")
        assert wire.verify_auth(AUTH_KEY, "nonce-1", token)
        assert not wire.verify_auth("other-key", "nonce-1", token)
        assert not wire.verify_auth(AUTH_KEY, "nonce-2", token)
        assert wire.auth_token(AUTH_KEY, "nonce-2") != token

    def test_corpus_spec_round_trips(self, small_corpus):
        spec = small_corpus.spec
        payload = wire.corpus_spec_to_wire(spec)
        assert wire.corpus_spec_from_wire(payload) == spec

    def test_corpus_spec_wire_rejects_unknown_field(self, small_corpus):
        payload = wire.corpus_spec_to_wire(small_corpus.spec)
        payload["surprise"] = 1
        with pytest.raises(WireSchemaError):
            wire.corpus_spec_from_wire(payload)


class TestReconnectPolicy:
    def test_backoff_is_deterministic_and_jittered(self):
        policy = ReconnectPolicy()
        first = policy.backoff_seconds(0, 0)
        assert first == policy.backoff_seconds(0, 0)
        # jitter scales the ceiling into [0.5, 1.5)
        ceiling = policy.backoff_base_seconds
        assert 0.5 * ceiling <= first < 1.5 * ceiling
        # different workers desynchronize
        draws = {policy.backoff_seconds(worker, 1)
                 for worker in range(8)}
        assert len(draws) > 1

    def test_backoff_growth_is_capped(self):
        policy = ReconnectPolicy(backoff_base_seconds=0.1,
                                 backoff_max_seconds=0.4)
        late = policy.backoff_seconds(0, 30)
        assert late < 1.5 * policy.backoff_max_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            ReconnectPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ReconnectPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            ReconnectPolicy(backoff_base_seconds=1.0,
                            backoff_max_seconds=0.5)


# -- cross-host serving ------------------------------------------------------

def _fleet_config(events, *, jobs=2, **overrides):
    settings = dict(transport="socket", jobs=jobs,
                    spawn_workers=False, auth_key=AUTH_KEY,
                    hello_timeout_seconds=30.0, events=events,
                    supervisor=FAST_SUPERVISOR)
    settings.update(overrides)
    return ServiceConfig(**settings)


def _client_thread(client, outcomes):
    """Run ``client`` to completion, recording summary or exception."""

    def main():
        try:
            outcomes.append(client.run())
        except Exception as error:  # noqa: BLE001
            outcomes.append(error)

    thread = threading.Thread(target=main, daemon=True)
    thread.start()
    return thread


class TestAuthRejection:
    def test_wrong_key_is_typed_and_never_assigned(self, small_corpus):
        """The ISSUE acceptance bar: a wrong-key worker is rejected
        with a typed AuthError, the coordinator emits the auth event,
        and the client never sees a WORK frame."""
        events = EventLog()
        outcomes = []

        async def main():
            service = CheckService(
                small_corpus, config=_fleet_config(events, jobs=1))
            await service.start()
            host, port = service.transport.address()
            client = WorkerClient(
                host, port, auth_key="not-the-key",
                corpus=small_corpus, hard_exit=False,
                reconnect=ReconnectPolicy(max_attempts=3))
            thread = _client_thread(client, outcomes)
            try:
                while not outcomes:
                    await asyncio.sleep(0.01)
            finally:
                await service.drain()
            thread.join(timeout=10)
            return service.stats()["supervisor"], client

        stats, client = asyncio.run(main())
        assert isinstance(outcomes[0], AuthError)
        # permanent: no retry burned the remaining dial attempts
        assert client.assignments == 0
        assert client.reconnects == 0
        assert stats["auth_rejected"] == 1
        assert events.counts[EVENT_AUTH_REJECTED] == 1
        rejected = events.events(EVENT_AUTH_REJECTED)[0]
        assert rejected.attrs["worker"] == -1

    def test_rejection_does_not_poison_the_slot(self, small_corpus,
                                                checkable_commits,
                                                reference_records):
        """After a failed handshake the slot is still armed: a
        right-key worker joins it and serves real work."""
        events = EventLog()
        outcomes = []

        async def main():
            service = CheckService(
                small_corpus, config=_fleet_config(events, jobs=1))
            await service.start()
            host, port = service.transport.address()
            bad = WorkerClient(host, port, auth_key="wrong",
                               corpus=small_corpus, hard_exit=False,
                               reconnect=ReconnectPolicy(max_attempts=1))
            bad_thread = _client_thread(bad, outcomes)
            while not outcomes:
                await asyncio.sleep(0.01)
            bad_thread.join(timeout=10)

            good = WorkerClient(host, port, auth_key=AUTH_KEY,
                                corpus=small_corpus, hard_exit=False)
            good_outcomes = []
            good_thread = _client_thread(good, good_outcomes)
            try:
                tasks = [service.submit_nowait(
                    CheckRequest(commit_id=commit.id))
                    for commit in checkable_commits[:LIMIT]]
                results = await asyncio.gather(*tasks)
            finally:
                await service.drain()
            good_thread.join(timeout=10)
            return results, good_outcomes

        results, good_outcomes = asyncio.run(main())
        assert isinstance(outcomes[0], AuthError)
        assert [result.record for result in results] == \
            reference_records
        summary = good_outcomes[0]
        assert summary["assignments"] == LIMIT


class TestExternalWorkersServe:
    def test_two_connected_workers_drain_the_queue(
            self, small_corpus, checkable_commits, reference_records):
        events = EventLog()
        outcomes = []

        async def main():
            service = CheckService(
                small_corpus, config=_fleet_config(events))
            await service.start()
            host, port = service.transport.address()
            threads = [
                _client_thread(
                    WorkerClient(host, port, auth_key=AUTH_KEY,
                                 corpus=small_corpus,
                                 hard_exit=False),
                    outcomes)
                for _ in range(2)]
            try:
                tasks = [service.submit_nowait(
                    CheckRequest(commit_id=commit.id))
                    for commit in checkable_commits[:LIMIT]]
                results = await asyncio.gather(*tasks)
            finally:
                await service.drain()
            for thread in threads:
                thread.join(timeout=10)
            return service, results

        service, results = asyncio.run(main())
        assert [result.record for result in results] == \
            reference_records
        summaries = [outcome for outcome in outcomes
                     if isinstance(outcome, dict)]
        assert len(summaries) == 2
        # both slots were granted, and together they served everything
        assert sorted(summary["worker_id"]
                      for summary in summaries) == [0, 1]
        assert sum(summary["assignments"]
                   for summary in summaries) == LIMIT
        registered = events.events(EVENT_WORKER_REGISTERED)
        assert len(registered) == 2
        assert all(event.attrs["external"] for event in registered)


class TestCorpusDistribution:
    def test_worker_rebuilds_corpus_from_shipped_spec(
            self, small_corpus, checkable_commits, reference_records):
        """An external worker with no local corpus rebuilds it from
        the WELCOME's deterministic spec and still produces
        byte-identical verdicts."""
        events = EventLog()
        outcomes = []

        async def main():
            service = CheckService(
                small_corpus, config=_fleet_config(events, jobs=1))
            await service.start()
            host, port = service.transport.address()
            client = WorkerClient(host, port, auth_key=AUTH_KEY,
                                  hard_exit=False)  # corpus=None
            thread = _client_thread(client, outcomes)
            try:
                task = service.submit_nowait(
                    CheckRequest(commit_id=checkable_commits[0].id))
                result = await task
            finally:
                await service.drain()
            thread.join(timeout=30)
            return client, result

        client, result = asyncio.run(main())
        assert result.record == reference_records[0]
        # the rebuild converged on the coordinator's exact history
        assert client.corpus is not None
        assert client.corpus.repository.head().id == \
            small_corpus.repository.head().id

    def test_diverged_corpus_is_a_permanent_mismatch(
            self, small_corpus, midsize_corpus):
        events = EventLog()
        outcomes = []

        async def main():
            service = CheckService(
                small_corpus, config=_fleet_config(events, jobs=1))
            await service.start()
            host, port = service.transport.address()
            client = WorkerClient(
                host, port, auth_key=AUTH_KEY,
                corpus=midsize_corpus, hard_exit=False,
                reconnect=ReconnectPolicy(max_attempts=3))
            thread = _client_thread(client, outcomes)
            try:
                while not outcomes:
                    await asyncio.sleep(0.01)
            finally:
                await service.drain()
            thread.join(timeout=10)
            return client

        client = asyncio.run(main())
        assert isinstance(outcomes[0], CorpusMismatchError)
        assert client.assignments == 0


class TestEmptyFleetDegrades:
    def test_no_workers_ever_connect_inline_drain_finishes(
            self, small_corpus, checkable_commits, reference_records):
        """A fully partitioned fleet (nobody dials in) exhausts every
        slot's registration budget, opens every breaker, and the
        coordinator degrades to inline local execution — the run still
        completes byte-identically."""
        events = EventLog()
        supervisor = SupervisorConfig(hang_deadline_seconds=30.0,
                                      max_restarts_per_shard=1,
                                      backoff_base_seconds=0.01,
                                      backoff_max_seconds=0.02)
        config = _fleet_config(events, jobs=2,
                               hello_timeout_seconds=0.2,
                               supervisor=supervisor)
        service = CheckService(small_corpus, config=config)
        results = service.check_commits(
            [commit.id for commit in checkable_commits[:LIMIT]])
        assert [result.record for result in results] == \
            reference_records
        stats = service.stats()["supervisor"]
        assert stats["breakers_opened"] == 2
        assert sorted(stats["breaker_open_shards"]) == [0, 1]
        assert service.transport.inline_jobs == LIMIT


# -- network chaos over spawned socket workers -------------------------------

def run_chaos(corpus, commits, *, plan, supervisor=FAST_SUPERVISOR,
              jobs=2, **overrides):
    events = EventLog()
    config = ServiceConfig(transport="socket", jobs=jobs,
                           fault_plan=plan, events=events,
                           supervisor=supervisor, **overrides)
    service = CheckService(corpus, config=config)
    results = service.check_commits([commit.id for commit in commits])
    return service, events, results


class TestNetPartition:
    def test_partitioned_worker_rejoins_within_grace(
            self, small_corpus, checkable_commits, reference_records):
        """A severed connection with a live process is not a crash:
        the worker dials back inside the grace window, re-registers
        under a fresh lease epoch, and no restart budget is burned."""
        service, events, results = run_chaos(
            small_corpus, checkable_commits[:LIMIT],
            plan=first_pickup_plan(KIND_NET_PARTITION),
            heartbeat_seconds=0.05, lease_seconds=1.0,
            reconnect_grace_seconds=5.0)
        assert [result.record for result in results] == \
            reference_records
        stats = service.stats()["supervisor"]
        assert stats["rejoins"] == 1
        assert stats["restarts"] == 0
        assert stats["requeued_jobs"] == 1
        assert stats["breaker_open_shards"] == []
        rejoined = events.events(EVENT_WORKER_REJOINED)[0]
        assert rejoined.attrs["worker"] == 0
        assert rejoined.attrs["lease"] >= 2  # epoch bumped on rejoin

    def test_partition_without_grace_is_a_crash(
            self, small_corpus, checkable_commits, reference_records):
        service, events, results = run_chaos(
            small_corpus, checkable_commits[:LIMIT],
            plan=first_pickup_plan(KIND_NET_PARTITION))
        assert [result.record for result in results] == \
            reference_records
        stats = service.stats()["supervisor"]
        assert stats["rejoins"] == 0
        assert stats["crashes_detected"] == 1
        assert stats["restarts"] == 1


class TestNetSlow:
    def test_slow_link_survives_on_heartbeats(
            self, small_corpus, checkable_commits, reference_records):
        """The verdict arrives later than the lease length, but the
        worker keeps beating, so the sliding window never lapses —
        no hang, no requeue, no restart."""
        service, events, results = run_chaos(
            small_corpus, checkable_commits[:LIMIT],
            plan=first_pickup_plan(KIND_NET_SLOW),
            heartbeat_seconds=0.05, lease_seconds=0.3)
        assert [result.record for result in results] == \
            reference_records
        stats = service.stats()["supervisor"]
        assert stats["crashes_detected"] == 0
        assert stats["hangs_detected"] == 0
        assert stats["requeued_jobs"] == 0
        assert stats["fenced_replies"] == 0


class TestNetHalfOpen:
    def test_half_open_link_dies_by_lease_expiry(
            self, small_corpus, checkable_commits, reference_records):
        """The socket stays established but the worker goes silent:
        only the lease catches it. The assignment is requeued and the
        run stays byte-identical."""
        service, events, results = run_chaos(
            small_corpus, checkable_commits[:LIMIT],
            plan=first_pickup_plan(KIND_NET_HALF_OPEN),
            heartbeat_seconds=0.05, lease_seconds=0.5)
        assert [result.record for result in results] == \
            reference_records
        stats = service.stats()["supervisor"]
        assert stats["hangs_detected"] == 1
        assert stats["requeued_jobs"] == 1
        assert events.counts[EVENT_LEASE_EXPIRED] >= 1
        expired = events.events(EVENT_LEASE_EXPIRED)[0]
        assert expired.attrs["lease_seconds"] == 0.5


class TestPartitionStormDifferential:
    def test_storm_run_is_byte_identical_with_unique_journal_keys(
            self, tmp_path, small_corpus):
        """The ISSUE acceptance bar: a 30-commit run over socket
        workers under a seeded net_partition + worker_kill storm is
        byte-identical to the asyncio transport, with zero duplicate
        and zero lost verdicts in the journal."""
        limit = 30
        journal = str(tmp_path / "storm.jsonl")
        reference = EvaluationSession(small_corpus).run(limit=limit)
        config = ServiceConfig(
            transport="socket", jobs=2,
            fault_plan=transport_chaos_plan(
                "fleet-storm-1", kill_rate=0.15, partition_rate=0.25,
                times=3),
            supervisor=FAST_SUPERVISOR,
            heartbeat_seconds=0.05, lease_seconds=2.0,
            reconnect_grace_seconds=2.0)
        faulted = EvaluationSession(small_corpus).run(
            limit=limit, service=config, journal=journal)
        assert faulted.canonical_records() == \
            reference.canonical_records()

        from repro.journal import Journal
        replay = Journal(journal).replay()
        keys = [entry["k"] for entry in replay.records
                if "k" in entry]
        # one journal entry per checkable commit (the eval window
        # contains a couple of ignored merges): zero lost, zero
        # duplicated, even though the storm requeued assignments
        assert len(keys) == len(faulted.patches)
        assert len(faulted.patches) == len(reference.patches)
        assert len(keys) == len(set(keys))
        assert replay.truncated_bytes == 0


# -- lease fencing (unit) ----------------------------------------------------

class _ScriptedChannel:
    """An async channel replaying a fixed message script."""

    def __init__(self, messages):
        self._messages = list(messages)

    async def recv_message(self):
        if not self._messages:
            return None
        return self._messages.pop(0)


class TestLeaseFencing:
    def _transport(self, small_corpus, events):
        config = ServiceConfig(transport="socket", jobs=1,
                               heartbeat_seconds=0.05,
                               lease_seconds=5.0, events=events)
        service = CheckService(small_corpus, config=config)
        # never started: no sockets, no processes, nothing to drain
        return create_transport(service, "socket")

    def test_stale_verdict_is_fenced_fresh_one_lands(self,
                                                     small_corpus):
        events = EventLog()
        transport = self._transport(small_corpus, events)
        slot = transport.slots[0]
        slot.lease_epoch = 3
        stale = {"seq": 1, "request_id": "r-1", "commit_id": "c-1",
                 "lease": 2}
        beat = {"worker_id": 0, "lease": 3}
        fresh = {"seq": 1, "request_id": "r-1", "commit_id": "c-1",
                 "lease": 3}
        slot.channel = _ScriptedChannel([
            (wire.MSG_VERDICT, stale),
            (wire.MSG_HEARTBEAT, beat),
            (wire.MSG_VERDICT, fresh)])

        async def main():
            return await transport._read_reply(slot, 1)

        msg_type, payload = asyncio.run(main())
        assert msg_type == wire.MSG_VERDICT
        assert payload["lease"] == 3
        assert transport.fenced_replies == 1
        assert slot.fenced == 1
        assert slot.last_heartbeat > 0  # the beat refreshed the lease
        fenced = events.events(EVENT_LEASE_FENCED)[0]
        assert fenced.attrs["stale_lease"] == 2
        assert fenced.attrs["lease"] == 3

    def test_stale_heartbeat_does_not_refresh(self, small_corpus):
        events = EventLog()
        transport = self._transport(small_corpus, events)
        slot = transport.slots[0]
        slot.lease_epoch = 3
        slot.channel = _ScriptedChannel([
            (wire.MSG_HEARTBEAT, {"worker_id": 0, "lease": 1}),
            (wire.MSG_VERDICT, {"seq": 4, "request_id": "r",
                                "commit_id": "c", "lease": 3})])

        async def main():
            return await transport._read_reply(slot, 4)

        asyncio.run(main())
        assert slot.last_heartbeat == 0.0

    def test_mismatched_seq_is_a_protocol_error(self, small_corpus):
        transport = self._transport(small_corpus, EventLog())
        slot = transport.slots[0]
        slot.channel = _ScriptedChannel([
            (wire.MSG_VERDICT, {"seq": 9, "request_id": "r",
                                "commit_id": "c", "lease": 0})])

        async def main():
            return await transport._read_reply(slot, 4)

        with pytest.raises(TransportError):
            asyncio.run(main())
