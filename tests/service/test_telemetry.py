"""Telemetry threading through the check service.

The service is the event log's main producer: lifecycle transitions,
admission rejections, and supervisor interventions must all land in
the structured stream with request correlation, and the snapshotter
must capture the drained state as its final sample. All of it rides
the null-object convention — a service constructed without telemetry
keeps NULL_EVENTS/no snapshotter and pays nothing.
"""

import asyncio

import pytest

from repro.errors import ServiceOverloadedError
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.events import (
    EVENT_SERVICE_DRAINED,
    EVENT_SERVICE_REJECTED,
    EVENT_SERVICE_STARTED,
    EVENT_SHARD_CRASH,
    EVENT_SHARD_RESTART,
    NULL_EVENTS,
    EventLog,
    validate_event_record,
)
from repro.obs.sinks import CallbackSink
from repro.obs.timeseries import Snapshotter
from repro.service import (
    CheckRequest,
    CheckService,
    ServiceConfig,
    ShardPool,
    ShardSupervisor,
    SupervisorConfig,
)

FAST = SupervisorConfig(poll_interval_seconds=0.005,
                        hang_deadline_seconds=0.05,
                        backoff_base_seconds=0.0,
                        max_restarts_per_shard=100)


def crash_plan(path):
    return FaultPlan(seed="crash", specs=[
        FaultSpec(kind="worker_crash", site="worker",
                  path=path, rate=1.0)])


def observed_service(corpus, **overrides):
    """A service wired the way ``jmake serve`` wires it."""
    log = EventLog(clock=lambda: 0.0)
    config = ServiceConfig(shards=2, events=log, **overrides)
    service = CheckService(corpus, config=config, cache=False)
    service.snapshotter = Snapshotter(service.metrics,
                                      clock=lambda: 0.0)
    return service, log


class TestLifecycleEvents:
    def test_run_brackets_with_started_and_drained(self, small_corpus,
                                                   checkable_commits):
        service, log = observed_service(small_corpus)
        service.check_commits([c.id for c in checkable_commits[:2]])
        kinds = [event.kind for event in log.events()]
        assert kinds[0] == EVENT_SERVICE_STARTED
        assert kinds[-1] == EVENT_SERVICE_DRAINED
        started = log.events(EVENT_SERVICE_STARTED)[0]
        assert started.attrs["shards"] == 2
        assert started.attrs["supervised"] is True
        drained = log.events(EVENT_SERVICE_DRAINED)[0]
        assert drained.attrs["requests_completed"] == 2

    def test_every_emitted_record_is_strict_valid(self, small_corpus,
                                                  checkable_commits):
        service, log = observed_service(small_corpus)
        service.check_commits([c.id for c in checkable_commits[:2]])
        seqs = []
        for event in log.events():
            validate_event_record(event.to_dict(), known_kinds_only=True)
            seqs.append(event.seq)
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_untelemetered_service_holds_the_null_objects(
            self, small_corpus):
        service = CheckService(small_corpus, cache=False)
        assert service.events is NULL_EVENTS
        assert service.snapshotter is None


class TestHealth:
    def test_transitions_down_ready_down(self, small_corpus,
                                         checkable_commits):
        service, _ = observed_service(small_corpus)
        assert service.health()["status"] == "down"
        assert service.health()["ready"] is False
        seen = []
        service.check_commits(
            [c.id for c in checkable_commits[:1]],
            on_result=lambda _: seen.append(service.health()))
        assert seen[0]["status"] in ("ok", "degraded")
        assert seen[0]["ready"] is True
        after = service.health()
        assert after["status"] == "down"
        assert after["ready"] is False
        assert after["admission_free_slots"] == 0

    def test_stats_carries_health_events_and_snapshots(
            self, small_corpus, checkable_commits):
        service, _ = observed_service(small_corpus)
        service.check_commits([c.id for c in checkable_commits[:1]])
        stats = service.stats()
        assert stats["health"]["status"] == "down"
        assert stats["events"]["counts"][EVENT_SERVICE_DRAINED] == 1
        assert stats["snapshots"]["samples_taken"] >= 1


class TestFinalSnapshot:
    def test_drain_takes_a_final_sample_of_the_drained_state(
            self, small_corpus, checkable_commits):
        service, _ = observed_service(small_corpus)
        service.check_commits([c.id for c in checkable_commits[:2]])
        latest = service.snapshotter.ring.latest
        assert latest is not None
        counters = latest.metrics["counters"]
        assert counters["service.requests.completed"] == 2


class TestRejectionCorrelation:
    def test_overload_event_carries_the_request_id(self, small_corpus,
                                                   checkable_commits):
        service, log = observed_service(small_corpus,
                                        max_pending_requests=1)

        async def main():
            await service.start()
            try:
                first = service.submit_nowait(
                    CheckRequest(commit_id=checkable_commits[0].id))
                # let the first request claim the admission slot
                for _ in range(1000):
                    if service._admission.locked():
                        break
                    await asyncio.sleep(0.001)
                assert service._admission.locked(), \
                    "first request never claimed the admission slot"
                with pytest.raises(ServiceOverloadedError):
                    service.submit_nowait(
                        CheckRequest(commit_id=checkable_commits[1].id))
                await first
            finally:
                await service.drain()
        asyncio.run(main())

        rejected = log.events(EVENT_SERVICE_REJECTED)
        assert len(rejected) == 1
        assert rejected[0].request_id == "req-2"
        assert rejected[0].attrs["limit"] == 1


class TestSupervisorEvents:
    def test_crash_and_restart_are_narrated_with_the_shard(self):
        async def main():
            log = EventLog(clock=lambda: 0.0,
                           sinks=[CallbackSink(lambda record: None)])
            pool = ShardPool(
                1, injector=FaultInjector(crash_plan("pickup-1")))
            pool.start()
            supervisor = ShardSupervisor(pool, config=FAST, events=log)
            shard = pool.shards[0]
            ran = []
            await shard.enqueue(lambda: ran.append("job"))
            await asyncio.sleep(0.01)   # worker picks up and crashes
            await supervisor.sweep()
            await shard.queue.join()
            await pool.stop()
            assert ran == ["job"]
            return log
        log = asyncio.run(main())
        crash = log.events(EVENT_SHARD_CRASH)
        restart = log.events(EVENT_SHARD_RESTART)
        assert len(crash) == 1 and len(restart) == 1
        assert crash[0].attrs["shard"] == 0
        assert restart[0].attrs["shard"] == 0
        assert crash[0].seq < restart[0].seq
