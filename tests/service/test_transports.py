"""Transport smoke surface: same API, same bytes, different substrate.

The differential matrix in ``test_differential.py`` proves byte-
identity at evaluation scale; this module pins the transport layer's
own contract — lifecycle, stats shapes, telemetry relay, start
methods — on small direct ``CheckService`` runs.
"""

import asyncio

import pytest

from repro.service import (
    START_METHODS,
    TRANSPORT_KINDS,
    CheckRequest,
    CheckService,
    ServiceConfig,
    create_transport,
)

LIMIT = 3

SUPERVISOR_STAT_KEYS = {"crashes_detected", "hangs_detected",
                        "restarts", "requeued_jobs", "breakers_opened",
                        "breaker_open_shards", "rejoins",
                        "fenced_replies", "auth_rejected"}


@pytest.fixture(scope="module")
def reference_records(small_corpus, checkable_commits):
    """Asyncio-transport records for the first LIMIT commits."""
    service = CheckService(small_corpus)
    results = service.check_commits(
        [commit.id for commit in checkable_commits[:LIMIT]])
    return [result.record for result in results]


def run_transport(corpus, commits, config):
    service = CheckService(corpus, config=config)
    results = service.check_commits([commit.id for commit in commits])
    return service, results


class TestConfigSurface:
    def test_transport_vocabulary(self):
        assert TRANSPORT_KINDS == ("asyncio", "mp", "socket")
        assert START_METHODS == ("fork", "spawn", "forkserver")
        assert ServiceConfig().transport == "asyncio"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(transport="carrier-pigeon")

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(start_method="teleport")

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(jobs=0)

    def test_factory_rejects_unknown_kind(self, small_corpus):
        service = CheckService(small_corpus)
        with pytest.raises(ValueError):
            create_transport(service, "carrier-pigeon")


@pytest.mark.parametrize("transport", ["mp", "socket"])
class TestRemoteTransports:
    def test_records_identical_to_asyncio(self, spawn_safe_corpus,
                                          checkable_commits,
                                          reference_records,
                                          transport):
        service, results = run_transport(
            spawn_safe_corpus, checkable_commits[:LIMIT],
            ServiceConfig(transport=transport, jobs=2))
        assert [result.record for result in results] == \
            reference_records

    def test_stats_shape(self, spawn_safe_corpus, checkable_commits,
                         transport):
        service, results = run_transport(
            spawn_safe_corpus, checkable_commits[:LIMIT],
            ServiceConfig(transport=transport, jobs=2))
        stats = service.stats()
        assert stats["transport"]["kind"] == transport
        assert stats["transport"]["jobs"] == 2
        # the supervisor block keeps the ShardSupervisor's exact shape,
        # so dashboards need no per-transport special cases
        assert set(stats["supervisor"]) == SUPERVISOR_STAT_KEYS
        assert stats["supervisor"]["crashes_detected"] == 0
        assert stats["supervisor"]["breaker_open_shards"] == []
        workers = stats["shards"]
        assert len(workers) == 2
        assert sum(worker["assignments"] for worker in workers) == LIMIT
        for worker in workers:
            assert worker["pid"] is not None
            assert worker["crashes"] == 0
            assert not worker["breaker_open"]
        # remote transports have no cross-request batcher
        assert stats["batcher"] == {}

    def test_telemetry_flows_back(self, spawn_safe_corpus,
                                  checkable_commits, transport):
        """Worker-side metric deltas merge into the coordinator's
        registry: the service's obs plane sees remote work."""
        service, results = run_transport(
            spawn_safe_corpus, checkable_commits[:LIMIT],
            ServiceConfig(transport=transport, jobs=2))
        counters = service.metrics.snapshot().to_dict()["counters"]
        # patches.checked / build.* are incremented inside the worker
        # process and can only appear here via the verdict-frame delta
        assert counters.get("patches.checked", 0) == LIMIT
        assert any(name.startswith("build.") for name in counters), (
            "no worker-side build counters reached the coordinator")

    def test_drain_is_idempotent_and_clean(self, spawn_safe_corpus,
                                           checkable_commits,
                                           transport):
        service, _ = run_transport(
            spawn_safe_corpus, checkable_commits[:1],
            ServiceConfig(transport=transport, jobs=1))
        # check_commits already drained; a second drain is a no-op
        asyncio.run(service.drain())
        assert service.health()["status"] == "down"


class TestStartMethods:
    def test_spawn_workers_match_fork(self, spawn_safe_corpus,
                                      checkable_commits,
                                      reference_records):
        """The spawn start method re-imports everything in the child
        (nothing is inherited), so this is the real pickle-safety and
        import-cleanliness check for the worker substrate."""
        _, results = run_transport(
            spawn_safe_corpus, checkable_commits[:LIMIT],
            ServiceConfig(transport="mp", jobs=2,
                          start_method="spawn"))
        assert [result.record for result in results] == \
            reference_records


class TestSubmitPaths:
    def test_submit_nowait_over_mp(self, spawn_safe_corpus,
                                   checkable_commits):
        """The admission-control path works over remote transports."""

        async def main():
            service = CheckService(
                spawn_safe_corpus,
                config=ServiceConfig(transport="mp", jobs=1))
            await service.start()
            try:
                task = service.submit_nowait(CheckRequest(
                    commit_id=checkable_commits[0].id))
                result = await task
            finally:
                await service.drain()
            return result

        result = asyncio.run(main())
        assert result.commit_id == checkable_commits[0].id
        assert result.record["verdict"]
