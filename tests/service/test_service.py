"""CheckService lifecycle, results, stats, and quarantine plumbing."""

import asyncio

import pytest

from repro.errors import ServiceDrainingError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.service import CheckRequest, CheckService, ServiceConfig


@pytest.fixture(scope="module")
def batch_results(small_corpus, checkable_commits):
    """One service run over five commits, plus its closing stats."""
    service = CheckService(small_corpus,
                           config=ServiceConfig(shards=2))
    commit_ids = [commit.id for commit in checkable_commits[:5]]
    results = service.check_commits(commit_ids)
    return commit_ids, results, service


class TestCheckCommits:
    def test_results_in_submission_order(self, batch_results):
        commit_ids, results, _ = batch_results
        assert [result.commit_id for result in results] == commit_ids

    def test_request_ids_are_assigned(self, batch_results):
        _, results, _ = batch_results
        assert [result.request_id for result in results] == \
            [f"req-{i}" for i in range(1, 6)]

    def test_results_carry_records_and_stages(self, batch_results):
        _, results, _ = batch_results
        for result in results:
            assert result.verdict == result.report.verdict
            assert result.record["commit"] == result.commit_id
            assert result.record["schema_version"] >= 2
            assert result.stage_counts.get("mutate") == 1
            assert result.elapsed_sim_seconds == \
                result.report.elapsed_seconds

    def test_clean_drain(self, batch_results):
        _, results, service = batch_results
        stats = service.stats()
        assert stats["started"] is False
        assert stats["requests_in_flight"] == 0
        assert stats["requests_completed"] == len(results)
        assert stats["batcher"]["pending_units"] == 0
        for shard in stats["shards"]:
            assert shard["queue_depth"] == 0

    def test_work_actually_ran_on_shards(self, batch_results):
        _, _, service = batch_results
        stats = service.stats()
        assert sum(shard["units_run"]
                   for shard in stats["shards"]) > 0
        assert stats["batcher"]["flushes"] > 0

    def test_submit_after_drain_is_rejected(self, batch_results,
                                            checkable_commits):
        _, _, service = batch_results

        async def resubmit():
            await service.submit(
                CheckRequest(commit_id=checkable_commits[0].id))

        with pytest.raises(ServiceDrainingError):
            asyncio.run(resubmit())


class TestServiceConfig:
    def test_rejects_bad_shards(self):
        with pytest.raises(ValueError):
            ServiceConfig(shards=0)
        with pytest.raises(ValueError):
            ServiceConfig(shards=True)

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            ServiceConfig(batch_limit=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_pending_requests=0)
        with pytest.raises(ValueError):
            ServiceConfig(shard_queue_limit=0)


class TestQuarantineOpsView:
    def test_request_quarantine_lands_on_owning_shard(self,
                                                      small_corpus,
                                                      checkable_commits):
        # arm configs fail persistently: arm quarantines per request
        # (the same plan the sequential PARTIAL suite relies on)
        plan = FaultPlan(seed="bench-arm", specs=[
            FaultSpec(kind="config_fail", arch="arm", times=10)])
        service = CheckService(
            small_corpus,
            config=ServiceConfig(shards=4, fault_plan=plan),
            cache=False)
        results = service.check_commits(
            [commit.id for commit in checkable_commits[:10]])
        quarantined = [result for result in results
                       if "arm" in result.report.quarantined_archs]
        if not quarantined:
            pytest.skip("no commit in this window exercised arm")
        stats = service.stats()
        from repro.service.shards import shard_index
        owner = stats["shards"][shard_index("arm", 4)]
        assert "arm" in owner["quarantined"]
        for index, shard in enumerate(stats["shards"]):
            if index != shard_index("arm", 4):
                assert "arm" not in shard["quarantined"]
