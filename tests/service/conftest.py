"""Fixtures for the check-service suite.

The corpora come from the session fixtures in ``tests/conftest.py``;
the fault storm is the same plan the fault-determinism suite uses, so
the differential tests pin service mode against exactly the reference
the sequential suite already trusts.
"""

import pytest

from repro.core.changes import extract_changed_files
from repro.workload.corpus import Corpus

from tests.faults.conftest import storm_plan  # noqa: F401  (fixture)


@pytest.fixture(scope="session")
def checkable_commits(small_corpus):
    """The checkable commits of the shared small corpus, in order."""
    repository = small_corpus.repository
    commits = repository.log(since=Corpus.TAG_EVAL_START,
                             until=Corpus.TAG_EVAL_END)
    return [commit for commit in commits
            if extract_changed_files(repository.show(commit))]
