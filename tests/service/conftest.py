"""Fixtures for the check-service suite.

The corpora come from the session fixtures in ``tests/conftest.py``;
the fault storm is the same plan the fault-determinism suite uses, so
the differential tests pin service mode against exactly the reference
the sequential suite already trusts.

Transport hygiene lives here too. Remote transports hold real child
processes, so every fixture that crosses into a worker must stay
pickle-safe under the ``spawn`` start method (``spawn_safe_corpus``
proves it once per session), and every test must drain the service it
started — the autouse ``_no_leaked_transports`` check fails the test
that leaks a live transport or an orphaned worker process, naming it
instead of letting the leak poison whichever test runs next.
"""

import multiprocessing
import pickle

import pytest

from repro.core.changes import extract_changed_files
from repro.service import live_transports
from repro.workload.corpus import Corpus

from tests.faults.conftest import storm_plan  # noqa: F401  (fixture)


@pytest.fixture(scope="session")
def checkable_commits(small_corpus):
    """The checkable commits of the shared small corpus, in order."""
    repository = small_corpus.repository
    commits = repository.log(since=Corpus.TAG_EVAL_START,
                             until=Corpus.TAG_EVAL_END)
    return [commit for commit in commits
            if extract_changed_files(repository.show(commit))]


@pytest.fixture(scope="session")
def spawn_safe_corpus(small_corpus):
    """The shared corpus, proven pickle-safe for spawned workers.

    Under the ``spawn`` start method the corpus crosses the process
    boundary as a ``multiprocessing.Process`` argument; a fixture that
    silently stopped pickling would make every spawn test hang on the
    HELLO timeout instead of failing fast. Round-tripping once per
    session pins the property where the failure is legible.
    """
    clone = pickle.loads(pickle.dumps(small_corpus))
    assert [c.id for c in clone.eval_window_commits()] == \
        [c.id for c in small_corpus.eval_window_commits()]
    assert clone.tree.files == small_corpus.tree.files
    return small_corpus


@pytest.fixture(autouse=True)
def _no_leaked_transports():
    """Leak check: every test drains the service it started.

    An undrained transport means live worker tasks — and for mp/socket
    transports, orphaned child processes that would outlive the test
    run. Asserting *after* each test attributes the leak to the test
    that caused it.
    """
    yield
    leaked = live_transports()
    assert not leaked, (
        f"test leaked {len(leaked)} undrained transport(s): "
        f"{[transport.kind for transport in leaked]} — "
        f"every started CheckService must be drained")
    orphans = multiprocessing.active_children()
    assert not orphans, (
        f"test leaked {len(orphans)} live worker process(es): "
        f"{[process.name for process in orphans]}")
