"""Property suite for the shard-transport wire codec.

The codec's contract is total: every frame either decodes to exactly
the message that was encoded, or raises a *typed* wire error — there
is no input that silently yields a different message, a partial
message, or nothing. Hypothesis drives that claim through arbitrary
messages, arbitrary chunkings, truncation at every byte boundary, and
single-bit flips at every position.
"""

import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.jmake import JMakeOptions
from repro.core.mutation import Mutation
from repro.core.report import (
    ArchAttempt,
    FileReport,
    FileStatus,
    PatchReport,
)
from repro.core.units import WorkUnit
from repro.errors import (
    FrameCorruptError,
    FrameTooLargeError,
    FrameTruncatedError,
    WireError,
    WireSchemaError,
)
from repro.faults.inject import FaultReport
from repro.service.transport import wire

# -- strategies -------------------------------------------------------------

# canonical JSON restricts keys to text and forbids NaN/Inf; everything
# else round-trips exactly (json floats are repr-based)
_scalars = (st.none() | st.booleans() |
            st.integers(min_value=-2**53, max_value=2**53) |
            st.floats(allow_nan=False, allow_infinity=False,
                      width=64) |
            st.text(max_size=20))
_json = st.recursive(
    _scalars,
    lambda children: (st.lists(children, max_size=3) |
                      st.dictionaries(st.text(max_size=8), children,
                                      max_size=3)),
    max_leaves=10)

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-./", min_size=1,
    max_size=16)
_archs = st.sampled_from(["x86_64", "arm64", "powerpc", "riscv",
                          "mips", "sparc"])


@st.composite
def control_messages(draw):
    """(type, payload) for HELLO/WORK/ERROR/SHUTDOWN frames."""
    kind = draw(st.sampled_from(["hello", "work", "error", "shutdown"]))
    if kind == "hello":
        return wire.MSG_HELLO, wire.hello_message(
            draw(st.integers(min_value=0, max_value=64)),
            draw(st.integers(min_value=1, max_value=2**22)),
            draw(st.sampled_from(["fork", "spawn", "forkserver"])),
            tree_id=draw(_names))
    if kind == "work":
        return wire.MSG_WORK, wire.work_message(
            draw(st.integers(min_value=1, max_value=2**31)),
            draw(_names), draw(_names),
            options=draw(st.none() | st.just(JMakeOptions())),
            chaos=draw(st.none() | st.sampled_from(
                ["worker_kill", "socket_drop", "worker_hang"])))
    if kind == "error":
        return wire.MSG_ERROR, wire.error_message(
            draw(st.integers(min_value=1, max_value=2**31)),
            draw(st.text(max_size=40)), draw(_names))
    return wire.MSG_SHUTDOWN, wire.shutdown_message()


@st.composite
def work_units(draw):
    """Arbitrary WorkUnit descriptors (thunks never cross the wire)."""
    return WorkUnit(
        stage=draw(st.sampled_from(["mutate", "config", "preprocess",
                                    "grep", "certify"])),
        run=lambda: None,
        arch=draw(st.none() | _archs),
        config_target=draw(st.none() | _names),
        paths=tuple(draw(st.lists(_names, max_size=4))),
        deps=tuple(draw(st.lists(
            st.integers(min_value=0, max_value=99), max_size=4))),
        unit_id=draw(st.integers(min_value=-1, max_value=999)))


@st.composite
def patch_reports(draw):
    """Arbitrary full PatchReports, attempt detail included."""
    files = {}
    for path in draw(st.lists(_names, max_size=3, unique=True)):
        attempts = [
            ArchAttempt(
                arch=draw(_archs), config_target=draw(_names),
                i_ok=draw(st.booleans()),
                tokens_found=set(draw(st.lists(_names, max_size=3))),
                o_ok=draw(st.booleans()),
                error=draw(st.none() | st.text(max_size=20)))
            for _ in range(draw(st.integers(min_value=0, max_value=2)))]
        mutations = [
            Mutation(token=draw(_names),
                     kind=draw(st.sampled_from(["define", "code"])),
                     path=path,
                     line=draw(st.integers(min_value=1, max_value=500)),
                     insert_at=draw(st.integers(min_value=1,
                                                max_value=500)))
            for _ in range(draw(st.integers(min_value=0, max_value=2)))]
        files[path] = FileReport(
            path=path,
            status=draw(st.sampled_from(list(FileStatus))),
            mutations=mutations,
            missing_tokens=set(draw(st.lists(_names, max_size=2))),
            attempts=attempts,
            useful_archs=draw(st.lists(_archs, max_size=2)),
            comment_lines=draw(st.lists(
                st.integers(min_value=1, max_value=500), max_size=2)),
            macro_hints=draw(st.lists(_names, max_size=2)),
            advisories=draw(st.lists(st.text(max_size=20), max_size=2)),
            candidate_compilations=draw(
                st.integers(min_value=0, max_value=9)))
    report = PatchReport(
        commit_id=draw(_names),
        elapsed_seconds=draw(st.floats(min_value=0, max_value=1e6,
                                       allow_nan=False)),
        invocation_counts=draw(st.dictionaries(
            st.sampled_from(["config", "make_i", "make_o"]),
            st.integers(min_value=0, max_value=99), max_size=3)),
        invocation_durations=draw(st.dictionaries(
            st.sampled_from(["config", "make_i", "make_o"]),
            st.lists(st.floats(min_value=0, max_value=1e4,
                               allow_nan=False), max_size=3),
            max_size=3)),
        quarantined_archs=draw(st.lists(_archs, max_size=2,
                                        unique=True)),
        fault_reports=[
            FaultReport(kind=draw(_names), site=draw(_names),
                        arch=draw(_archs), path=draw(_names),
                        scope=draw(_names),
                        attempt=draw(st.integers(min_value=1,
                                                 max_value=5)))
            for _ in range(draw(st.integers(min_value=0,
                                            max_value=2)))])
    report.file_reports = files
    return report


# -- round-trip identity ----------------------------------------------------

class TestRoundTrip:
    @given(message=control_messages())
    @settings(max_examples=60, deadline=None)
    def test_control_frames(self, message):
        msg_type, payload = message
        frame = wire.encode_frame(msg_type, payload)
        got_type, got_payload, end = wire.decode_frame(frame)
        assert (got_type, got_payload) == (msg_type, payload)
        assert end == len(frame)

    @given(message=control_messages(),
           prefix=control_messages())
    @settings(max_examples=30, deadline=None)
    def test_decode_at_offset(self, message, prefix):
        """Frames decode mid-stream: offset arithmetic is exact."""
        first = wire.encode_frame(*prefix)
        second = wire.encode_frame(*message)
        data = first + second
        _, _, end = wire.decode_frame(data)
        assert end == len(first)
        got_type, got_payload, end = wire.decode_frame(data, end)
        assert (got_type, got_payload) == message
        assert end == len(data)

    @given(unit=work_units())
    @settings(max_examples=60, deadline=None)
    def test_work_unit_descriptors(self, unit):
        rebuilt = wire.unit_from_wire(wire.unit_to_wire(unit))
        assert rebuilt.describe() == unit.describe()
        # descriptor units are inert: the thunk must refuse to run
        with pytest.raises(RuntimeError):
            rebuilt.run()

    @given(report=patch_reports())
    @settings(max_examples=40, deadline=None)
    def test_verdicts_are_lossless(self, report):
        """The full report survives: canonical record AND the
        attempt-level detail ``to_dict`` drops."""
        payload = wire.report_to_wire(report)
        frame = wire.encode_frame(
            wire.MSG_VERDICT,
            wire.verdict_message(1, "req", report.commit_id,
                                 report=report, stage_counts={},
                                 quarantine={}, metrics={}, events=[],
                                 worker_id=0))
        _, decoded_payload, _ = wire.decode_frame(frame)
        rebuilt = wire.report_from_wire(decoded_payload["report"])
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.elapsed_seconds == report.elapsed_seconds
        assert rebuilt.invocation_durations == \
            report.invocation_durations
        assert rebuilt.fault_reports == report.fault_reports
        assert list(rebuilt.file_reports) == list(report.file_reports)
        for path, file_report in report.file_reports.items():
            assert rebuilt.file_reports[path] == file_report
        # and independently of framing:
        assert wire.report_from_wire(payload).to_dict() == \
            report.to_dict()

    def test_options_round_trip(self):
        options = JMakeOptions()
        assert wire.options_from_wire(
            wire.options_to_wire(options)) == options
        assert wire.options_from_wire(None) is None


# -- typed rejection --------------------------------------------------------

class TestTruncation:
    @given(message=control_messages())
    @settings(max_examples=25, deadline=None)
    def test_every_cut_point_raises_truncated(self, message):
        frame = wire.encode_frame(*message)
        for cut in range(len(frame)):
            with pytest.raises(FrameTruncatedError) as excinfo:
                wire.decode_frame(frame[:cut])
            assert excinfo.value.have < excinfo.value.needed or \
                cut < wire.HEADER_BYTES


class TestBitFlips:
    @given(message=control_messages(), data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_any_single_bit_flip_is_a_typed_error(self, message, data):
        """The CRC covers version/type/length/payload, so no flipped
        bit anywhere can silently decode — not even one that lands in
        the message-type byte."""
        frame = bytearray(wire.encode_frame(*message))
        position = data.draw(st.integers(min_value=0,
                                         max_value=len(frame) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        frame[position] ^= 1 << bit
        with pytest.raises(WireError):
            wire.decode_frame(bytes(frame))

    def test_flipped_type_byte_cannot_alias(self):
        """Regression pin for the exact aliasing the seeded CRC
        prevents: HELLO(1) flipped to SHUTDOWN(5) would pass schema
        validation (SHUTDOWN requires no fields) if only the payload
        were checksummed."""
        frame = bytearray(wire.encode_frame(
            wire.MSG_HELLO, wire.hello_message(0, 1234, "fork")))
        assert frame[5] == wire.MSG_HELLO
        frame[5] ^= wire.MSG_HELLO ^ wire.MSG_SHUTDOWN
        with pytest.raises(FrameCorruptError):
            wire.decode_frame(bytes(frame))


class TestOversizedFrames:
    def test_decode_rejects_oversized_declared_length(self):
        header = struct.pack(">4sBBII", wire.MAGIC, wire.WIRE_VERSION,
                             wire.MSG_SHUTDOWN,
                             wire.MAX_FRAME_BYTES + 1, 0)
        with pytest.raises(FrameTooLargeError) as excinfo:
            wire.decode_frame(header)
        assert excinfo.value.declared == wire.MAX_FRAME_BYTES + 1
        assert excinfo.value.limit == wire.MAX_FRAME_BYTES

    def test_encode_refuses_oversized_payload(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 64)
        with pytest.raises(FrameTooLargeError):
            wire.encode_frame(wire.MSG_ERROR, wire.error_message(
                1, "x" * 256, "TestError"))

    def test_oversized_does_not_stall_the_stream_decoder(self):
        """A corrupt length field must raise, not wait for gigabytes."""
        decoder = wire.FrameDecoder()
        decoder.feed(struct.pack(
            ">4sBBII", wire.MAGIC, wire.WIRE_VERSION, wire.MSG_SHUTDOWN,
            wire.MAX_FRAME_BYTES + 1, 0))
        with pytest.raises(FrameTooLargeError):
            next(decoder)


class TestSchemaValidation:
    def test_unknown_message_type(self):
        body = wire.encode_payload({})
        crc = zlib.crc32(body, zlib.crc32(struct.pack(
            ">BBI", wire.WIRE_VERSION, 200, len(body))))
        frame = struct.pack(">4sBBII", wire.MAGIC, wire.WIRE_VERSION,
                            200, len(body), crc) + body
        with pytest.raises(WireSchemaError):
            wire.decode_frame(frame)

    @pytest.mark.parametrize("msg_type,payload", [
        (wire.MSG_HELLO, {"worker_id": 0}),
        (wire.MSG_WORK, {"seq": 1, "request_id": "r"}),
        (wire.MSG_VERDICT, {"seq": 1}),
        (wire.MSG_ERROR, {"error": "boom"}),
    ])
    def test_missing_required_fields(self, msg_type, payload):
        with pytest.raises(WireSchemaError):
            wire.encode_frame(msg_type, payload)

    def test_unknown_options_field_rejected(self):
        with pytest.raises(WireSchemaError):
            wire.options_from_wire({"no_such_option": True})

    def test_unit_descriptor_missing_field_rejected(self):
        with pytest.raises(WireSchemaError):
            wire.unit_from_wire({"stage": "config"})

    def test_tampered_verdict_record_rejected(self):
        """The decode-side self-check: a canonical record that does not
        match the rebuilt report is a codec/tamper failure, never a
        silently different verdict."""
        report = PatchReport(commit_id="abc")
        report.file_reports["a.c"] = FileReport(path="a.c",
                                                status=FileStatus.OK)
        payload = wire.report_to_wire(report)
        payload["record"]["verdict"] = "ATTENTION REQUIRED"
        payload["record"]["certified"] = False
        with pytest.raises(WireSchemaError):
            wire.report_from_wire(payload)

    def test_wrong_schema_version_rejected(self):
        report = PatchReport(commit_id="abc")
        payload = wire.report_to_wire(report)
        payload["record"]["schema_version"] = 2
        with pytest.raises(WireSchemaError):
            wire.report_from_wire(payload)


# -- streaming decoder ------------------------------------------------------

class TestFrameDecoder:
    @given(messages=st.lists(control_messages(), min_size=1,
                             max_size=5),
           data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_chunking_is_invisible(self, messages, data):
        """However the stream is split, the decoder yields exactly the
        sent messages in order — byte boundaries are transport noise."""
        stream = b"".join(wire.encode_frame(*message)
                          for message in messages)
        decoder = wire.FrameDecoder()
        received = []
        position = 0
        while position < len(stream):
            size = data.draw(st.integers(
                min_value=1, max_value=len(stream) - position))
            decoder.feed(stream[position:position + size])
            position += size
            received.extend(decoder)
        assert received == [(t, p) for t, p in messages]
        assert decoder.pending_bytes == 0

    def test_partial_frame_waits_instead_of_raising(self):
        frame = wire.encode_frame(wire.MSG_SHUTDOWN, {})
        decoder = wire.FrameDecoder()
        decoder.feed(frame[:5])
        assert list(decoder) == []
        decoder.feed(frame[5:])
        assert list(decoder) == [(wire.MSG_SHUTDOWN, {})]

    def test_corruption_offset_is_absolute(self):
        """Error offsets are rebased onto the whole stream, so a log
        line points at the actual damaged byte, not a buffer-relative
        position."""
        good = wire.encode_frame(wire.MSG_SHUTDOWN, {})
        bad = bytearray(wire.encode_frame(
            wire.MSG_ERROR, wire.error_message(1, "x", "E")))
        bad[0] ^= 0xFF  # destroy the magic
        decoder = wire.FrameDecoder()
        decoder.feed(bytes(good) + bytes(bad))
        assert next(decoder) == (wire.MSG_SHUTDOWN, {})
        with pytest.raises(FrameCorruptError) as excinfo:
            next(decoder)
        assert excinfo.value.offset == len(good)
