"""Shard routing, worker execution, and the ops quarantine view."""

import asyncio

import pytest

from repro.core.units import STAGE_CERTIFY, STAGE_CONFIG, WorkUnit
from repro.faults.resilience import Quarantine
from repro.service.shards import ArchShard, ShardPool, shard_index


def certify_unit(arch, result="ok"):
    return WorkUnit(stage=STAGE_CERTIFY, run=lambda: result,
                    arch=arch, config_target="allyesconfig",
                    paths=("drivers/a.c",))


class TestShardIndex:
    def test_stable_across_calls(self):
        assert shard_index("x86_64", 4) == shard_index("x86_64", 4)

    def test_within_bounds_and_spread(self):
        archs = ["x86_64", "arm", "arm64", "mips", "powerpc", "sparc"]
        indices = {arch: shard_index(arch, 4) for arch in archs}
        assert all(0 <= index < 4 for index in indices.values())
        # CRC32 is fixed, so the mapping is a frozen contract: a shard
        # must keep owning its architectures across service restarts
        assert len(set(indices.values())) > 1

    def test_single_shard_owns_everything(self):
        assert shard_index("anything", 1) == 0

    def test_pool_routes_by_index(self):
        pool = ShardPool(4)
        for arch in ("x86_64", "arm", "mips"):
            assert pool.shard_for(arch) is \
                pool.shards[shard_index(arch, 4)]

    def test_pool_rejects_bad_count(self):
        with pytest.raises(ValueError):
            ShardPool(0)


class TestShardExecution:
    def test_submit_runs_unit_and_counts(self):
        async def main():
            shard = ArchShard(0)
            shard.start()
            try:
                result = await shard.submit(certify_unit("arm"))
                assert result == "ok"
                assert shard.units_run == 1
                assert shard.archs_seen == {"arm"}
                assert shard.stats()["queue_depth"] == 0
            finally:
                await shard.stop()
        asyncio.run(main())

    def test_units_execute_fifo_per_shard(self):
        order = []

        def make(tag):
            def run():
                order.append(tag)
                return tag
            return WorkUnit(stage=STAGE_CONFIG, run=run, arch="arm",
                            config_target="allyesconfig",
                            paths=("allyesconfig",))

        async def main():
            pool = ShardPool(2)
            pool.start()
            try:
                shard = pool.shard_for("arm")
                results = await asyncio.gather(
                    *[shard.submit(make(i)) for i in range(5)])
                assert results == list(range(5))
                assert order == list(range(5))
            finally:
                await pool.stop()
        asyncio.run(main())


class TestOpsQuarantine:
    def test_absorb_routes_to_owning_shard(self):
        async def main():
            pool = ShardPool(4)
            request_quarantine = Quarantine()
            request_quarantine.record("arm", "config")
            pool.absorb_quarantine(request_quarantine)
            owner = pool.shard_for("arm")
            assert owner.quarantine.is_quarantined("arm")
            assert owner.quarantine.reason("arm") == "config"
            for shard in pool.shards:
                if shard is not owner:
                    assert not shard.quarantine.archs()
        asyncio.run(main())

    def test_merge_folds_strikes_and_keeps_first_reason(self):
        left = Quarantine()
        right = Quarantine()
        left.record("mips", "compile")
        right.record("mips", "compile")
        right.record("mips", "compile")
        left.merge(right)
        # strikes fold additively; benching only copies, it is never
        # re-derived (the ops aggregate must not look like a verdict)
        assert left._strikes["mips"] == 3
        assert not left.is_quarantined("mips")
        # one more recorded failure trips the already-loaded breaker
        left.record("mips", "compile")
        assert left.is_quarantined("mips")
        first = Quarantine()
        first.note("arm", "config")
        second = Quarantine()
        second.note("arm", "preprocess")
        first.merge(second)
        assert first.reason("arm") == "config"

    def test_note_is_idempotent(self):
        quarantine = Quarantine()
        quarantine.note("arm", "config")
        quarantine.note("arm", "compile")
        assert quarantine.reason("arm") == "config"
        assert quarantine.archs() == ["arm"]
