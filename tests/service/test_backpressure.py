"""Admission control: backpressure, overload rejection, drain races."""

import asyncio

import pytest

from repro.errors import ServiceDrainingError, ServiceOverloadedError
from repro.service import CheckRequest, CheckService, ServiceConfig


class TestAdmission:
    def test_submit_nowait_rejects_when_full(self, small_corpus,
                                             checkable_commits):
        async def main():
            service = CheckService(
                small_corpus,
                config=ServiceConfig(shards=1,
                                     max_pending_requests=1))
            await service.start()
            try:
                first = service.submit_nowait(
                    CheckRequest(commit_id=checkable_commits[0].id))
                # let the first request seize the admission slot
                await asyncio.sleep(0)
                with pytest.raises(ServiceOverloadedError):
                    service.submit_nowait(CheckRequest(
                        commit_id=checkable_commits[1].id))
                assert service.metrics.counter(
                    "service.rejected").value == 1
                result = await first
                assert result.verdict
            finally:
                await service.drain()
        asyncio.run(main())

    def test_submit_backpressures_instead_of_failing(self,
                                                     small_corpus,
                                                     checkable_commits):
        async def main():
            service = CheckService(
                small_corpus,
                config=ServiceConfig(shards=2,
                                     max_pending_requests=2))
            await service.start()
            try:
                commit_ids = [commit.id
                              for commit in checkable_commits[:6]]
                results = await asyncio.gather(*[
                    service.submit(CheckRequest(commit_id=commit_id))
                    for commit_id in commit_ids])
                assert [result.commit_id for result in results] == \
                    commit_ids
                assert all(result.verdict for result in results)
            finally:
                await service.drain()
            # the slot cap was respected the whole way through
            assert service.metrics.gauge(
                "service.requests.in_flight").value == 0
            assert service.requests_completed == 6
        asyncio.run(main())

    def test_unstarted_service_rejects(self, small_corpus,
                                       checkable_commits):
        async def main():
            service = CheckService(small_corpus)
            with pytest.raises(ServiceDrainingError):
                await service.submit(CheckRequest(
                    commit_id=checkable_commits[0].id))
        asyncio.run(main())

    def test_drain_waits_for_admitted_but_queued_requests(
            self, small_corpus, checkable_commits):
        async def main():
            service = CheckService(
                small_corpus,
                config=ServiceConfig(shards=1,
                                     max_pending_requests=1))
            await service.start()
            tasks = [
                asyncio.get_running_loop().create_task(
                    service.submit(CheckRequest(commit_id=commit.id)))
                for commit in checkable_commits[:3]]
            await asyncio.sleep(0)
            # two of the three are still waiting for the single slot;
            # drain must let all of them finish, not strand them
            await service.drain()
            results = await asyncio.gather(*tasks)
            assert len(results) == 3
            assert all(result.verdict for result in results)
            assert service.requests_completed == 3
        asyncio.run(main())
