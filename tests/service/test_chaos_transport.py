"""Transport chaos: dead children, dropped sockets, hung workers.

Supervision must be transport-uniform — a killed worker process or a
severed connection is detected, the claimed assignment is requeued
idempotently, the worker restarts under the backoff budget, and the
verdict-bearing records stay byte-identical to an undisturbed run.
Chaos decisions are drawn on the coordinator (keyed by worker slot and
lifetime pickup sequence, the ArchShard discipline) and executed in
the child for real: ``os._exit``, a closed socket, a parked process.

The journal tests close the loop the paper cares about: kill-and-
resume under every transport yields exactly one durable verdict per
commit — crash recovery plus requeue never duplicates or loses one.
"""

import pytest

from repro.evalsuite.runner import EvaluationSession
from repro.faults.chaos import transport_chaos_plan
from repro.faults.plan import (
    KIND_SOCKET_DROP,
    KIND_WORKER_HANG,
    KIND_WORKER_KILL,
    FaultPlan,
    FaultSpec,
)
from repro.obs.events import (
    EVENT_SHARD_CRASH,
    EVENT_SHARD_HANG,
    EVENT_WORKER_REQUEUE,
    EVENT_WORKER_SPAWNED,
    EventLog,
)
from repro.service import (
    CheckService,
    ServiceConfig,
    SupervisorConfig,
)

LIMIT = 3

#: fast supervisor tunables for hang tests: a parked worker is real
#: wall-clock, so the deadline must be short but dominate a legitimate
#: (fast, simulated) check
FAST_SUPERVISOR = SupervisorConfig(hang_deadline_seconds=3.0,
                                   backoff_base_seconds=0.01,
                                   backoff_max_seconds=0.05)


def first_pickup_plan(kind: str) -> FaultPlan:
    """Fault exactly worker 0's first lifetime pickup with ``kind``."""
    return FaultPlan(seed="chaos-transport",
                     specs=[FaultSpec(kind=kind, arch="worker-0",
                                      path="pickup-1")])


@pytest.fixture(scope="module")
def clean_records(small_corpus, checkable_commits):
    service = CheckService(small_corpus)
    results = service.check_commits(
        [commit.id for commit in checkable_commits[:LIMIT]])
    return [result.record for result in results]


def run_chaos(corpus, commits, *, transport, plan,
              supervisor=None, jobs=2):
    events = EventLog()
    config = ServiceConfig(transport=transport, jobs=jobs,
                           fault_plan=plan, events=events,
                           supervisor=supervisor)
    service = CheckService(corpus, config=config)
    results = service.check_commits([commit.id for commit in commits])
    return service, events, results


class TestWorkerKill:
    @pytest.mark.parametrize("transport", ["mp", "socket"])
    def test_kill_requeues_without_losing_verdicts(
            self, small_corpus, checkable_commits, clean_records,
            transport):
        service, events, results = run_chaos(
            small_corpus, checkable_commits[:LIMIT],
            transport=transport,
            plan=first_pickup_plan(KIND_WORKER_KILL))
        # no verdict lost, none duplicated, none changed
        assert [result.record for result in results] == clean_records
        assert len({result.request_id for result in results}) == LIMIT
        stats = service.stats()["supervisor"]
        assert stats["crashes_detected"] == 1
        assert stats["requeued_jobs"] == 1
        assert stats["restarts"] == 1
        assert stats["breaker_open_shards"] == []
        assert events.counts[EVENT_SHARD_CRASH] == 1
        assert events.counts[EVENT_WORKER_REQUEUE] == 1
        # initial spawns + one restart respawn
        assert events.counts[EVENT_WORKER_SPAWNED] == 2 + 1
        requeue = events.events(EVENT_WORKER_REQUEUE)[0]
        assert requeue.attrs["cause"] == "crash"
        assert requeue.attrs["worker"] == 0

    def test_pickup_counter_survives_restart(self, small_corpus,
                                             checkable_commits,
                                             clean_records):
        """A respawned process must not re-draw its predecessor's
        faults: pickups are slot-lifetime-monotone, so a plan aimed at
        pickup-1 fires exactly once even though the slot restarts."""
        service, events, results = run_chaos(
            small_corpus, checkable_commits[:LIMIT],
            transport="mp", jobs=1,
            plan=first_pickup_plan(KIND_WORKER_KILL))
        assert [result.record for result in results] == clean_records
        assert service.stats()["supervisor"]["crashes_detected"] == 1
        slot = service.stats()["shards"][0]
        # LIMIT successful pickups + the killed one
        assert slot["pickups"] == LIMIT + 1
        assert slot["restarts"] == 1


class TestSocketDrop:
    def test_dropped_connection_is_a_crash(self, small_corpus,
                                           checkable_commits,
                                           clean_records):
        service, events, results = run_chaos(
            small_corpus, checkable_commits[:LIMIT],
            transport="socket",
            plan=first_pickup_plan(KIND_SOCKET_DROP))
        assert [result.record for result in results] == clean_records
        stats = service.stats()["supervisor"]
        assert stats["crashes_detected"] == 1
        assert stats["requeued_jobs"] == 1
        assert events.counts[EVENT_SHARD_CRASH] == 1


class TestWorkerHang:
    @pytest.mark.parametrize("transport", ["mp", "socket"])
    def test_hung_worker_is_reaped_and_requeued(
            self, small_corpus, checkable_commits, clean_records,
            transport):
        service, events, results = run_chaos(
            small_corpus, checkable_commits[:LIMIT],
            transport=transport,
            plan=first_pickup_plan(KIND_WORKER_HANG),
            supervisor=FAST_SUPERVISOR)
        assert [result.record for result in results] == clean_records
        stats = service.stats()["supervisor"]
        assert stats["hangs_detected"] == 1
        assert stats["requeued_jobs"] == 1
        assert events.counts[EVENT_SHARD_HANG] == 1
        hang = events.events(EVENT_SHARD_HANG)[0]
        assert hang.attrs["deadline_seconds"] == \
            FAST_SUPERVISOR.hang_deadline_seconds


class TestBreakerExhaustion:
    def test_all_breakers_open_degrades_to_inline_drain(
            self, small_corpus, checkable_commits, clean_records):
        """Killing every pickup exhausts every slot's restart budget;
        the coordinator's inline drain loop still finishes the run
        with byte-identical verdicts."""
        plan = FaultPlan(seed="chaos-storm",
                         specs=[FaultSpec(kind=KIND_WORKER_KILL)])
        supervisor = SupervisorConfig(hang_deadline_seconds=30.0,
                                      max_restarts_per_shard=1,
                                      backoff_base_seconds=0.01,
                                      backoff_max_seconds=0.02)
        service, events, results = run_chaos(
            small_corpus, checkable_commits[:LIMIT],
            transport="mp", jobs=2, plan=plan, supervisor=supervisor)
        assert [result.record for result in results] == clean_records
        stats = service.stats()["supervisor"]
        assert stats["breakers_opened"] == 2
        assert sorted(stats["breaker_open_shards"]) == [0, 1]
        health = service.health()
        assert health["status"] == "down"  # drained by check_commits
        transport = service.transport
        assert transport.inline_jobs == LIMIT


class TestRateBasedStorm:
    def test_transport_chaos_plan_validates(self):
        with pytest.raises(ValueError):
            transport_chaos_plan("seed")
        plan = transport_chaos_plan("seed", kill_rate=0.5,
                                    drop_rate=0.25, times=2)
        kinds = {spec.kind for spec in plan.specs}
        assert kinds == {KIND_WORKER_KILL, KIND_SOCKET_DROP}

    def test_seeded_storm_is_deterministic_and_identical(
            self, small_corpus, checkable_commits, clean_records):
        """A rate-based storm (some pickups die, drawn from the plan
        seed) perturbs scheduling only: records match the clean run,
        and rerunning the same seed reproduces the same crash count."""
        plan = transport_chaos_plan("storm-7", kill_rate=0.4, times=4)
        outcomes = []
        for _ in range(2):
            service, _, results = run_chaos(
                small_corpus, checkable_commits[:LIMIT],
                transport="mp", jobs=2, plan=plan)
            assert [result.record for result in results] == \
                clean_records
            outcomes.append(
                service.stats()["supervisor"]["crashes_detected"])
        assert outcomes[0] == outcomes[1]


class TestJournalDedup:
    @pytest.mark.parametrize("transport", ["mp", "socket"])
    def test_kill_and_resume_keeps_dedup_keys_unique(
            self, tmp_path, small_corpus, transport):
        """Chaos kills + journal resume never duplicate or lose a
        verdict: after a faulted run and a resumed run, the journal
        holds exactly one record per commit under its dedup key, and
        the final records match an undisturbed sequential run."""
        journal = str(tmp_path / f"verdicts-{transport}.jsonl")
        reference = EvaluationSession(small_corpus).run(limit=LIMIT)
        config = ServiceConfig(
            transport=transport, jobs=2,
            fault_plan=first_pickup_plan(KIND_WORKER_KILL))
        faulted = EvaluationSession(small_corpus).run(
            limit=LIMIT, service=config, journal=journal)
        assert faulted.canonical_records() == \
            reference.canonical_records()
        assert faulted.service_stats["supervisor"][
            "crashes_detected"] == 1

        # every verdict journaled exactly once, keyed by commit: the
        # raw WAL frames are read back, so a duplicate append (requeue
        # racing a verdict) would be visible even though the ledger's
        # dedup map would mask it
        from repro.journal import Journal
        replay = Journal(journal).replay()
        keys = [entry["k"] for entry in replay.records
                if "k" in entry]
        assert len(keys) == LIMIT
        assert len(keys) == len(set(keys))
        assert replay.truncated_bytes == 0

        # resume replays everything; nothing reruns, bytes unchanged
        resumed = EvaluationSession(small_corpus).run(
            limit=LIMIT, service=ServiceConfig(transport=transport,
                                               jobs=2),
            journal=journal, resume=True)
        assert resumed.canonical_records() == \
            reference.canonical_records()
        assert resumed.journal_stats["resumed"] == len(keys)
