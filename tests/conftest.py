"""Session-scoped corpora shared across the pipeline-level test suites.

Corpus construction (synthetic history + kernel-like tree) is the
dominant fixture cost in the evalsuite, buildcache, obs and faults
tests, and several modules used to build near-identical corpora under
different seeds. The shared instances live here instead.

Sharing is safe because a built corpus is immutable from the runner's
point of view: every :class:`EvaluationRunner` run checks commits out
into throwaway worktrees and never edits the repository or tree in
place (the session-scoped ``corpus`` in ``tests/evalsuite/conftest.py``
has relied on this from the start).
"""

import pytest

from repro.workload.corpus import CorpusSpec, build_corpus


@pytest.fixture(scope="session")
def small_corpus():
    """The standard pipeline-test corpus: 120 history / 60 eval commits.

    Used by the parallel-runner, observability and fault-injection
    suites; anything asserting cross-run invariants (jobs, cache,
    observe, faults) should run over this corpus so failures reproduce
    identically across suites.
    """
    return build_corpus(CorpusSpec(seed="shared-small",
                                   history_commits=120,
                                   eval_commits=60,
                                   regular_developers=8))


@pytest.fixture(scope="session")
def midsize_corpus():
    """A slightly larger corpus: 160 history / 80 eval commits.

    Big enough for warm-cache hit rates to stabilise above 90%, so the
    cache acceptance surface uses it.
    """
    return build_corpus(CorpusSpec(seed="shared-midsize",
                                   history_commits=160,
                                   eval_commits=80,
                                   regular_developers=10))
