"""Smoke tests: every example script runs to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(monkeypatch, capsys, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py")
        assert "CERTIFIED" in out
        assert "safe to post the patch" in out

    def test_patch_audit(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "patch_audit.py")
        assert "lines-not-compiled" in out
        assert "allmodconfig" in out
        assert "architectures that helped" in out

    def test_janitor_survey(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "janitor_survey.py")
        assert "Table I" in out
        assert "Table II" in out
        assert "recovered" in out

    def test_evaluation_replay_small(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "evaluation_replay.py",
                          ["--commits", "50", "--seed", "example-smoke"])
        assert "Table III" in out
        assert "Fig 5" in out
        assert "CDF" in out

    def test_zero_day_bot_small(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "zero_day_bot.py",
                          ["--commits", "30", "--configs", "2"])
        assert "0-day bot" in out
        assert "JMake" in out

    def test_fleet_watch_small(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "fleet_watch.py",
                          ["--commits", "30", "--seed", "example-fleet"])
        assert "watch drained" in out
        assert "janitor view" in out
        assert "file_cv=" in out

    def test_undertaker_scan(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "undertaker_scan.py")
        assert "dead" in out
        assert "arch-dependent" in out
        assert "ground truth" in out
