"""Tests for .config parsing/serialization and autoconf macros."""

import pytest

from repro.errors import KconfigError
from repro.kconfig.ast import Tristate
from repro.kconfig.configfile import Config, parse_config_text


class TestParse:
    def test_tristate_values(self):
        config = parse_config_text(
            "CONFIG_A=y\nCONFIG_B=m\nCONFIG_C=n\n")
        assert config.tristate("A") == Tristate.Y
        assert config.tristate("B") == Tristate.M
        assert config.tristate("C") == Tristate.N

    def test_not_set_comment(self):
        config = parse_config_text("# CONFIG_FOO is not set\n")
        assert config.tristate("FOO") == Tristate.N
        assert "FOO" in config.values

    def test_string_value(self):
        config = parse_config_text('CONFIG_LOCALVERSION="-rc1"\n')
        assert config.scalar_values["LOCALVERSION"] == "-rc1"

    def test_int_value(self):
        config = parse_config_text("CONFIG_LOG_SHIFT=17\n")
        assert config.scalar_values["LOG_SHIFT"] == "17"

    def test_blank_and_comment_lines_skipped(self):
        config = parse_config_text("\n# a note\n\nCONFIG_A=y\n")
        assert config.tristate("A") == Tristate.Y

    def test_garbage_line_raises(self):
        with pytest.raises(KconfigError):
            parse_config_text("NOT_A_CONFIG_LINE\n")

    def test_missing_equals_raises(self):
        with pytest.raises(KconfigError):
            parse_config_text("CONFIG_A\n")

    def test_later_line_wins(self):
        config = parse_config_text(
            "CONFIG_A=y\n# CONFIG_A is not set\n")
        assert config.tristate("A") == Tristate.N


class TestAutoconf:
    def test_y_defines_plain_macro(self):
        config = Config(values={"PCI": Tristate.Y})
        assert config.autoconf_macros() == {"CONFIG_PCI": "1"}

    def test_m_defines_module_macro(self):
        config = Config(values={"E1000": Tristate.M})
        assert config.autoconf_macros() == {"CONFIG_E1000_MODULE": "1"}

    def test_n_defines_nothing(self):
        config = Config(values={"OFF": Tristate.N})
        assert config.autoconf_macros() == {}

    def test_scalars_become_values(self):
        config = Config(scalar_values={"LOG_SHIFT": "17"})
        assert config.autoconf_macros() == {"CONFIG_LOG_SHIFT": "17"}


class TestQueries:
    def test_enabled_builtin_modular(self):
        config = Config(values={"A": Tristate.Y, "B": Tristate.M,
                                "C": Tristate.N})
        assert config.enabled("A") and config.enabled("B")
        assert not config.enabled("C")
        assert config.builtin("A") and not config.builtin("B")
        assert config.modular("B") and not config.modular("A")

    def test_unknown_symbol_is_n(self):
        assert Config().tristate("GHOST") == Tristate.N

    def test_enabled_count(self):
        config = Config(values={"A": Tristate.Y, "B": Tristate.M,
                                "C": Tristate.N})
        assert config.enabled_count() == 2
