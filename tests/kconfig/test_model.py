"""Tests for the config model."""

import pytest

from repro.errors import KconfigError
from repro.kconfig.model import ConfigModel
from repro.kconfig.parser import parse_kconfig


def model_from(text, files=None):
    return ConfigModel.from_kconfig(text, provider=(files or {}).get)


class TestLookup:
    def test_contains_and_get(self):
        model = model_from("config A\n\tbool\nconfig B\n\ttristate\n")
        assert "A" in model
        assert model.get("B").name == "B"
        assert len(model) == 2

    def test_get_unknown_raises(self):
        with pytest.raises(KconfigError):
            model_from("config A\n\tbool\n").get("NOPE")

    def test_names_sorted(self):
        model = model_from("config Z\n\tbool\nconfig A\n\tbool\n")
        assert model.names() == ["A", "Z"]

    def test_boolean_vs_scalar(self):
        model = model_from(
            "config A\n\tbool\nconfig B\n\ttristate\nconfig C\n\tint\n"
            "\tdefault 4\n")
        assert [s.name for s in model.boolean_symbols()] == ["A", "B"]
        assert [s.name for s in model.tristate_symbols()] == ["B"]


class TestRedeclaration:
    def test_merge_selects(self):
        text = ("config A\n\tbool\n\tselect X\n"
                "config A\n\tbool\n\tselect Y\n")
        model = model_from(text)
        assert model.get("A").selects == ["X", "Y"]
        assert len(model) == 1


class TestChoiceGroups:
    def test_groups_enumerated(self):
        text = ("choice\nconfig LE\n\tbool\nconfig BE\n\tbool\nendchoice\n")
        model = model_from(text)
        groups = model.choice_groups()
        assert len(groups) == 1
        members = next(iter(groups.values()))
        assert [m.name for m in members] == ["LE", "BE"]


class TestReverseDeps:
    def test_selectors_of(self):
        text = ("config USB\n\tbool\n\tselect CRC32\n"
                "config CRC32\n\tbool\n")
        model = model_from(text)
        assert [s.name for s in model.selectors_of("CRC32")] == ["USB"]

    def test_undefined_references(self):
        text = ("config A\n\tbool\n\tdepends on GHOST\n"
                "config B\n\tbool\n\tselect PHANTOM\n")
        model = model_from(text)
        assert model.undefined_references() == {"GHOST", "PHANTOM"}
