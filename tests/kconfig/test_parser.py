"""Tests for the Kconfig language parser."""

import pytest

from repro.errors import KconfigError
from repro.kconfig.ast import SymbolType, Tristate
from repro.kconfig.parser import parse_expr, parse_kconfig


class TestConfigEntries:
    def test_bool_with_prompt(self):
        symbols = parse_kconfig('config PCI\n\tbool "PCI support"\n')
        assert len(symbols) == 1
        assert symbols[0].name == "PCI"
        assert symbols[0].type is SymbolType.BOOL
        assert symbols[0].prompt == "PCI support"

    def test_tristate(self):
        symbols = parse_kconfig('config E1000\n\ttristate "Intel NIC"\n')
        assert symbols[0].type is SymbolType.TRISTATE

    def test_int_with_default(self):
        symbols = parse_kconfig(
            'config LOG_BUF_SHIFT\n\tint "Log size"\n\tdefault 17\n')
        assert symbols[0].type is SymbolType.INT
        assert symbols[0].default_value == "17"

    def test_string_with_default(self):
        symbols = parse_kconfig(
            'config LOCALVERSION\n\tstring\n\tdefault "-dirty"\n')
        assert symbols[0].default_value == "-dirty"

    def test_depends_on(self):
        symbols = parse_kconfig(
            "config A\n\tbool\n\tdepends on B && !C\n")
        dep = symbols[0].depends_on
        assert dep is not None
        assert dep.symbols() == {"B", "C"}

    def test_multiple_depends_anded(self):
        symbols = parse_kconfig(
            "config A\n\tbool\n\tdepends on B\n\tdepends on C\n")
        assert symbols[0].depends_on.symbols() == {"B", "C"}

    def test_select(self):
        symbols = parse_kconfig(
            "config A\n\tbool\n\tselect B\n\tselect C if D\n")
        assert symbols[0].selects == ["B", "C"]

    def test_default_y(self):
        symbols = parse_kconfig("config A\n\tbool\n\tdefault y\n")
        assert symbols[0].default is not None
        assert symbols[0].default.evaluate({}) == Tristate.Y

    def test_help_text_collected(self):
        text = ("config A\n\tbool\n\thelp\n"
                "\t  This is help.\n\t  More help.\n"
                "config B\n\tbool\n")
        symbols = parse_kconfig(text)
        assert "This is help." in symbols[0].help_text
        assert len(symbols) == 2

    def test_source_file_recorded(self):
        symbols = parse_kconfig("config A\n\tbool\n", path="drivers/Kconfig")
        assert symbols[0].source_file == "drivers/Kconfig"

    def test_comments_and_menus_ignored(self):
        text = ('# a comment\nmainmenu "Linux"\nmenu "Drivers"\n'
                "config A\n\tbool\nendmenu\n")
        symbols = parse_kconfig(text)
        assert [s.name for s in symbols] == ["A"]

    def test_unknown_attribute_raises(self):
        with pytest.raises(KconfigError):
            parse_kconfig("config A\n\tbool\n\tfrobnicate yes\n")

    def test_attribute_without_config_raises(self):
        with pytest.raises(KconfigError):
            parse_kconfig("\tselect B\n")


class TestChoice:
    def test_members_tagged(self):
        text = ("choice\n\tprompt \"CPU\"\n"
                "config CPU_LITTLE\n\tbool \"LE\"\n"
                "config CPU_BIG\n\tbool \"BE\"\n"
                "endchoice\n"
                "config OTHER\n\tbool\n")
        symbols = parse_kconfig(text)
        by_name = {s.name: s for s in symbols}
        assert by_name["CPU_LITTLE"].choice_group is not None
        assert by_name["CPU_LITTLE"].choice_group == \
            by_name["CPU_BIG"].choice_group
        assert by_name["OTHER"].choice_group is None

    def test_named_choice(self):
        text = "choice ENDIAN\nconfig LE\n\tbool\nendchoice\n"
        symbols = parse_kconfig(text)
        assert symbols[0].choice_group == "ENDIAN"

    def test_unterminated_choice_raises(self):
        with pytest.raises(KconfigError):
            parse_kconfig("choice\nconfig A\n\tbool\n")

    def test_stray_endchoice_raises(self):
        with pytest.raises(KconfigError):
            parse_kconfig("endchoice\n")


class TestSource:
    def test_source_directive(self):
        files = {"drivers/Kconfig": "config DRIVER_A\n\tbool\n"}
        symbols = parse_kconfig(
            'config TOP\n\tbool\nsource "drivers/Kconfig"\n',
            provider=files.get)
        assert [s.name for s in symbols] == ["TOP", "DRIVER_A"]
        assert symbols[1].source_file == "drivers/Kconfig"

    def test_missing_source_raises(self):
        with pytest.raises(KconfigError):
            parse_kconfig('source "gone/Kconfig"\n', provider=lambda p: None)

    def test_source_without_provider_raises(self):
        with pytest.raises(KconfigError):
            parse_kconfig('source "x/Kconfig"\n')

    def test_nested_sources(self):
        files = {
            "a/Kconfig": 'config A\n\tbool\nsource "b/Kconfig"\n',
            "b/Kconfig": "config B\n\tbool\n",
        }
        symbols = parse_kconfig('source "a/Kconfig"\n', provider=files.get)
        assert [s.name for s in symbols] == ["A", "B"]

    def test_source_cycle_limited(self):
        files = {"a/Kconfig": 'source "a/Kconfig"\n'}
        with pytest.raises(KconfigError):
            parse_kconfig('source "a/Kconfig"\n', provider=files.get)


class TestExpressions:
    def test_symbol(self):
        expr = parse_expr("FOO")
        assert expr.evaluate({"FOO": Tristate.Y}) == Tristate.Y
        assert expr.evaluate({}) == Tristate.N

    def test_not(self):
        expr = parse_expr("!FOO")
        assert expr.evaluate({}) == Tristate.Y
        assert expr.evaluate({"FOO": Tristate.Y}) == Tristate.N
        assert expr.evaluate({"FOO": Tristate.M}) == Tristate.M

    def test_and_is_min(self):
        expr = parse_expr("A && B")
        assert expr.evaluate({"A": Tristate.Y, "B": Tristate.M}) == Tristate.M

    def test_or_is_max(self):
        expr = parse_expr("A || B")
        assert expr.evaluate({"A": Tristate.N, "B": Tristate.M}) == Tristate.M

    def test_parentheses(self):
        expr = parse_expr("A && (B || C)")
        assert expr.evaluate({"A": Tristate.Y, "C": Tristate.Y}) == Tristate.Y

    def test_constants(self):
        assert parse_expr("y").evaluate({}) == Tristate.Y
        assert parse_expr("n").evaluate({}) == Tristate.N
        assert parse_expr("m").evaluate({}) == Tristate.M

    def test_equals_y(self):
        expr = parse_expr("FOO = y")
        assert expr.evaluate({"FOO": Tristate.Y}) == Tristate.Y

    def test_equals_n_means_not(self):
        expr = parse_expr("FOO = n")
        assert expr.evaluate({}) == Tristate.Y
        assert expr.evaluate({"FOO": Tristate.Y}) == Tristate.N

    def test_not_equals(self):
        expr = parse_expr("FOO != y")
        assert expr.evaluate({}) == Tristate.Y

    def test_empty_raises(self):
        with pytest.raises(KconfigError):
            parse_expr("")

    def test_trailing_tokens_raise(self):
        with pytest.raises(KconfigError):
            parse_expr("A B")

    def test_unbalanced_paren_raises(self):
        with pytest.raises(KconfigError):
            parse_expr("(A && B")
