"""Property-based tests on the configuration solvers.

Random dependency forests are generated (acyclic by construction:
symbol i may only depend on symbols j < i), then solver invariants are
checked: every assignment respects the model, allyesconfig dominates
allnoconfig, and targeted configurations are sound.
"""

from hypothesis import given, settings, strategies as st

from repro.kconfig.ast import Tristate
from repro.kconfig.model import ConfigModel
from repro.kconfig.solver import (
    allmodconfig,
    allnoconfig,
    allyesconfig,
    targeted_config,
)


@st.composite
def random_model(draw):
    """An acyclic Kconfig model with mixed deps, selects, and a choice."""
    count = draw(st.integers(min_value=2, max_value=10))
    lines = []
    for index in range(count):
        name = f"S{index}"
        kind = draw(st.sampled_from(["bool", "tristate"]))
        lines.append(f"config {name}")
        lines.append(f"\t{kind} \"{name.lower()}\"")
        if index > 0 and draw(st.booleans()):
            dep_index = draw(st.integers(min_value=0, max_value=index - 1))
            negate = draw(st.booleans())
            dep = f"!S{dep_index}" if negate else f"S{dep_index}"
            lines.append(f"\tdepends on {dep}")
        if index > 0 and draw(st.booleans()):
            target = draw(st.integers(min_value=0, max_value=index - 1))
            lines.append(f"\tselect S{target}")
    return ConfigModel.from_kconfig("\n".join(lines) + "\n")


class TestSolverInvariants:
    @given(random_model())
    @settings(max_examples=60, deadline=4000)
    def test_allyes_respects_positive_dependencies(self, model):
        """Every enabled, unselected symbol with *positive* dependencies
        has them satisfied at the fixpoint.

        Negative dependencies are excluded deliberately: a symbol can be
        enabled while ``!X`` holds and have X switched on later by a
        ``select`` — the same dependency-violating behaviour real
        Kconfig's select mechanism is notorious for (its docs warn that
        select forces a symbol regardless of dependencies)."""
        config = allyesconfig(model)
        selected = set()
        for symbol in model.symbols():
            if config.enabled(symbol.name):
                selected.update(symbol.selects)
        for symbol in model.symbols():
            if not config.enabled(symbol.name) or \
                    symbol.name in selected:
                continue
            if symbol.depends_on is None or \
                    "!" in str(symbol.depends_on):
                continue
            assert symbol.dependencies_met(config.values), symbol.name

    @given(random_model())
    @settings(max_examples=60, deadline=4000)
    def test_allno_subset_of_allyes_modulo_negation(self, model):
        """allnoconfig never enables a visible symbol allyesconfig
        leaves off, unless negative dependencies make the models
        genuinely non-monotone."""
        ayes = allyesconfig(model)
        anno = allnoconfig(model)
        assert anno.enabled_count() <= ayes.enabled_count() or any(
            symbol.depends_on is not None and
            "!" in str(symbol.depends_on)
            for symbol in model.symbols())

    @given(random_model())
    @settings(max_examples=60, deadline=4000)
    def test_allmod_matches_allyes_on_monotone_models(self, model):
        """Without negative dependencies the enabled *sets* of
        allmodconfig and allyesconfig coincide (only y flips to m).

        With negations all bets are off, faithfully to real Kconfig:
        ``!m == m`` makes ``depends on !X`` satisfiable when X is
        modular but not when built-in, and the order the fixpoint
        visits symbols decides which side of a negation wins — the
        enabled sets become incomparable. (Both directions of
        divergence were exhibited by Hypothesis against an exact-match
        and a superset version of this property.)"""
        has_negation = any(
            symbol.depends_on is not None and "!" in str(symbol.depends_on)
            for symbol in model.symbols())
        if has_negation:
            return
        ayes = {name for name in model.names()
                if allyesconfig(model).enabled(name)}
        amod_config = allmodconfig(model)
        amod = {name for name in model.names()
                if amod_config.enabled(name)}
        assert amod == ayes

    @given(random_model(), st.data())
    @settings(max_examples=60, deadline=4000)
    def test_targeted_config_sound(self, model, data):
        """When targeted_config succeeds, every want-on symbol is
        enabled with its dependencies satisfied (or selected), and
        every want-off symbol is off."""
        names = model.names()
        want_on = set(data.draw(st.lists(st.sampled_from(names),
                                         max_size=3, unique=True)))
        remaining = [n for n in names if n not in want_on]
        want_off = set(data.draw(st.lists(
            st.sampled_from(remaining), max_size=2, unique=True))) \
            if remaining else set()
        config = targeted_config(model, want_on, want_off)
        if config is None:
            return  # greedy solver declined; nothing to verify
        for name in want_on:
            assert config.enabled(name), name
        for name in want_off:
            assert not config.enabled(name), name
        selected = set()
        for symbol in model.symbols():
            if config.enabled(symbol.name):
                selected.update(symbol.selects)
        for symbol in model.symbols():
            if config.enabled(symbol.name) and \
                    symbol.name not in selected:
                assert symbol.dependencies_met(config.values), symbol.name

    @given(random_model())
    @settings(max_examples=40, deadline=4000)
    def test_solvers_deterministic(self, model):
        assert allyesconfig(model).values == allyesconfig(model).values
        assert allnoconfig(model).values == allnoconfig(model).values
