"""Tests for allyesconfig / allmodconfig / defconfig solvers."""

from hypothesis import given, strategies as st

from repro.kconfig.ast import Tristate
from repro.kconfig.model import ConfigModel
from repro.kconfig.solver import allmodconfig, allyesconfig, defconfig


def model_from(text, files=None):
    return ConfigModel.from_kconfig(text, provider=(files or {}).get)


BASIC = """\
config PCI
	bool "PCI"
config NET
	bool "Networking"
config E1000
	tristate "Intel NIC"
	depends on PCI && NET
config IMPOSSIBLE
	bool
	depends on PCI && !PCI
"""


class TestAllyesconfig:
    def test_independent_symbols_all_y(self):
        config = allyesconfig(model_from(BASIC))
        assert config.tristate("PCI") == Tristate.Y
        assert config.tristate("NET") == Tristate.Y

    def test_dependent_symbol_enabled_after_deps(self):
        config = allyesconfig(model_from(BASIC))
        assert config.tristate("E1000") == Tristate.Y

    def test_contradictory_dependency_stays_n(self):
        """Undertaker-style dead symbol: depends on X && !X."""
        config = allyesconfig(model_from(BASIC))
        assert config.tristate("IMPOSSIBLE") == Tristate.N

    def test_dependency_chain(self):
        text = ("config A\n\tbool\n"
                "config B\n\tbool\n\tdepends on A\n"
                "config C\n\tbool\n\tdepends on B\n")
        config = allyesconfig(model_from(text))
        assert config.tristate("C") == Tristate.Y

    def test_negative_dependency_blocked_by_allyes(self):
        """The paper's #ifndef pathology (§VII): allyesconfig sets
        variables to yes, so `depends on !X` symbols stay off."""
        text = ("config X\n\tbool\n"
                "config ONLY_WITHOUT_X\n\tbool\n\tdepends on !X\n")
        config = allyesconfig(model_from(text))
        assert config.tristate("X") == Tristate.Y
        assert config.tristate("ONLY_WITHOUT_X") == Tristate.N

    def test_choice_picks_exactly_one(self):
        """Table IV: choice groups are why allyesconfig can't set all."""
        text = ("choice\nconfig CPU_LE\n\tbool\nconfig CPU_BE\n\tbool\n"
                "endchoice\n")
        config = allyesconfig(model_from(text))
        values = [config.tristate("CPU_LE"), config.tristate("CPU_BE")]
        assert values.count(Tristate.Y) == 1
        assert values.count(Tristate.N) == 1

    def test_choice_first_eligible_member_wins(self):
        text = ("config GATE\n\tbool\n\tdepends on NOPE\n"
                "choice\n"
                "config FIRST\n\tbool\n\tdepends on GATE\n"
                "config SECOND\n\tbool\nendchoice\n")
        config = allyesconfig(model_from(text))
        assert config.tristate("FIRST") == Tristate.N
        assert config.tristate("SECOND") == Tristate.Y

    def test_select_forces_target(self):
        text = ("config USB\n\tbool\n\tselect CRC32\n"
                "config CRC32\n\tbool\n\tdepends on NEVER\n")
        config = allyesconfig(model_from(text))
        # select ignores the target's own dependencies, as in Kconfig.
        assert config.tristate("CRC32") == Tristate.Y

    def test_scalar_defaults_kept(self):
        text = "config LOG_SHIFT\n\tint\n\tdefault 17\n"
        config = allyesconfig(model_from(text))
        assert config.scalar_values["LOG_SHIFT"] == "17"

    def test_tristates_become_y(self):
        config = allyesconfig(model_from(BASIC))
        assert config.tristate("E1000") == Tristate.Y  # not M

    def test_autoconf_macros(self):
        config = allyesconfig(model_from(BASIC))
        macros = config.autoconf_macros()
        assert macros["CONFIG_PCI"] == "1"
        assert "CONFIG_IMPOSSIBLE" not in macros


class TestAllmodconfig:
    def test_tristates_become_m(self):
        config = allmodconfig(model_from(BASIC))
        assert config.tristate("E1000") == Tristate.M
        assert config.tristate("PCI") == Tristate.Y  # bools stay y

    def test_module_autoconf_macro(self):
        config = allmodconfig(model_from(BASIC))
        macros = config.autoconf_macros()
        assert macros.get("CONFIG_E1000_MODULE") == "1"
        assert "CONFIG_E1000" not in macros

    def test_tristate_dependency_on_module_satisfied(self):
        text = ("config CORE\n\ttristate\n"
                "config DRV\n\ttristate\n\tdepends on CORE\n")
        config = allmodconfig(model_from(text))
        assert config.tristate("DRV") == Tristate.M


class TestDefconfig:
    DEF_TEXT = "CONFIG_PCI=y\n# CONFIG_NET is not set\n"

    def test_seed_respected(self):
        config = defconfig(model_from(BASIC), self.DEF_TEXT)
        assert config.tristate("PCI") == Tristate.Y
        assert config.tristate("NET") == Tristate.N

    def test_unseeded_defaults_apply(self):
        text = ("config A\n\tbool\n\tdefault y\n"
                "config B\n\tbool\n")
        config = defconfig(model_from(text), "")
        assert config.tristate("A") == Tristate.Y
        assert config.tristate("B") == Tristate.N

    def test_explicit_not_set_beats_default(self):
        text = "config A\n\tbool\n\tdefault y\n"
        config = defconfig(model_from(text), "# CONFIG_A is not set\n")
        assert config.tristate("A") == Tristate.N

    def test_seed_symbol_unknown_to_model_ignored(self):
        config = defconfig(model_from(BASIC), "CONFIG_GHOST=y\n")
        assert config.tristate("GHOST") == Tristate.N

    def test_select_applied_from_seed(self):
        text = ("config USB\n\tbool\n\tselect CRC32\n"
                "config CRC32\n\tbool\n")
        config = defconfig(model_from(text), "CONFIG_USB=y\n")
        assert config.tristate("CRC32") == Tristate.Y

    def test_conditional_default(self):
        text = ("config BASE\n\tbool\n\tdefault y\n"
                "config DEP\n\tbool\n\tdefault y if BASE\n")
        config = defconfig(model_from(text), "")
        assert config.tristate("DEP") == Tristate.Y


class TestConfigSerialization:
    def test_roundtrip(self):
        from repro.kconfig.configfile import parse_config_text
        config = allyesconfig(model_from(BASIC))
        text = config.to_config_text()
        reparsed = parse_config_text(text)
        assert reparsed.values == config.values

    def test_not_set_lines_present(self):
        config = allyesconfig(model_from(BASIC))
        assert "# CONFIG_IMPOSSIBLE is not set" in config.to_config_text()


class TestPropertyBased:
    @given(st.integers(min_value=1, max_value=12), st.integers(0, 2**30))
    def test_fixpoint_monotone_chain(self, length, seed):
        """Any pure dependency chain fully enables under allyesconfig."""
        lines = ["config S0\n\tbool\n"]
        for index in range(1, length):
            lines.append(
                f"config S{index}\n\tbool\n\tdepends on S{index - 1}\n")
        config = allyesconfig(model_from("".join(lines)))
        for index in range(length):
            assert config.tristate(f"S{index}") == Tristate.Y

    @given(st.integers(min_value=2, max_value=8))
    def test_choice_invariant_one_y(self, members):
        body = "".join(f"config M{i}\n\tbool\n" for i in range(members))
        text = f"choice\n{body}endchoice\n"
        config = allyesconfig(model_from(text))
        values = [config.tristate(f"M{i}") for i in range(members)]
        assert values.count(Tristate.Y) == 1
