"""Tests for the diffconfig-style configuration diff."""

from repro.kconfig.ast import Tristate
from repro.kconfig.configfile import Config, config_diff


def cfg(**values):
    config = Config()
    for name, letter in values.items():
        config.set(name, Tristate.from_letter(letter))
    return config


class TestConfigDiff:
    def test_no_changes(self):
        assert config_diff(cfg(A="y"), cfg(A="y")) == []

    def test_value_change(self):
        assert config_diff(cfg(A="y"), cfg(A="n")) == ["A y -> n"]

    def test_added_symbol(self):
        assert config_diff(cfg(), cfg(B="m")) == ["+B m"]

    def test_dropped_symbol(self):
        assert config_diff(cfg(B="m"), cfg()) == ["-B m"]

    def test_scalar_change(self):
        old = Config(scalar_values={"LOG": "17"})
        new = Config(scalar_values={"LOG": "18"})
        assert config_diff(old, new) == ["LOG '17' -> '18'"]

    def test_targeted_vs_allyes_explains_rescue(self):
        """The intended use: show what a covering config flipped."""
        from repro.kconfig.model import ConfigModel
        from repro.kconfig.solver import allyesconfig, targeted_config
        model = ConfigModel.from_kconfig(
            "config EXTRA\n\tbool\n\tdefault y\n"
            "config LEAN\n\tbool\n\tdepends on !EXTRA\n")
        allyes = allyesconfig(model)
        targeted = targeted_config(model, {"LEAN"}, {"EXTRA"})
        diff = config_diff(allyes, targeted)
        assert "EXTRA y -> n" in diff
        assert "LEAN n -> y" in diff
