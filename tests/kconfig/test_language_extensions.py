"""Tests for menuconfig, if/endif blocks, range, and allnoconfig."""

import pytest

from repro.errors import KconfigError
from repro.kconfig.ast import Tristate
from repro.kconfig.model import ConfigModel
from repro.kconfig.parser import parse_kconfig
from repro.kconfig.solver import allnoconfig, allyesconfig


def model_from(text):
    return ConfigModel.from_kconfig(text)


class TestMenuconfig:
    def test_parsed_like_config(self):
        symbols = parse_kconfig(
            'menuconfig NETDEVICES\n\tbool "Network devices"\n')
        assert symbols[0].name == "NETDEVICES"
        assert symbols[0].prompt == "Network devices"


class TestIfBlocks:
    def test_wraps_dependencies(self):
        text = ("config NET\n\tbool\n"
                "if NET\n"
                "config VLAN\n\tbool\n"
                "endif\n"
                "config UNRELATED\n\tbool\n")
        model = model_from(text)
        assert model.get("VLAN").depends_on is not None
        assert "NET" in model.get("VLAN").depends_on.symbols()
        assert model.get("UNRELATED").depends_on is None

    def test_combines_with_own_depends(self):
        text = ("config NET\n\tbool\nconfig PCI\n\tbool\n"
                "if NET\nconfig E100\n\tbool\n\tdepends on PCI\nendif\n")
        model = model_from(text)
        deps = model.get("E100").depends_on.symbols()
        assert deps == {"NET", "PCI"}

    def test_nested_if(self):
        text = ("config A\n\tbool\nconfig B\n\tbool\n"
                "if A\nif B\nconfig C\n\tbool\nendif\nendif\n")
        model = model_from(text)
        assert model.get("C").depends_on.symbols() == {"A", "B"}

    def test_unterminated_if_raises(self):
        with pytest.raises(KconfigError):
            parse_kconfig("if A\nconfig B\n\tbool\n")

    def test_stray_endif_raises(self):
        with pytest.raises(KconfigError):
            parse_kconfig("endif\n")

    def test_solver_respects_if_guard(self):
        text = ("config GATE\n\tbool\n\tdepends on NEVER\n"
                "if GATE\nconfig GUARDED\n\tbool\nendif\n")
        config = allyesconfig(model_from(text))
        assert config.tristate("GUARDED") == Tristate.N


class TestRange:
    def test_recorded(self):
        symbols = parse_kconfig(
            "config LOG_BUF_SHIFT\n\tint\n\trange 12 25\n\tdefault 17\n")
        assert symbols[0].value_range == ("12", "25")
        assert symbols[0].default_value == "17"


class TestAllnoconfig:
    BASIC = ("config VISIBLE\n\tbool \"prompt\"\n\tdefault y\n"
             "config HIDDEN\n\tbool\n\tdefault y\n"
             "config SELECTOR\n\tbool\n\tdefault y\n\tselect FORCED\n"
             "config FORCED\n\tbool\n"
             "config COUNT\n\tint\n\tdefault 4\n")

    def test_visible_symbols_off(self):
        config = allnoconfig(model_from(self.BASIC))
        assert config.tristate("VISIBLE") == Tristate.N

    def test_promptless_defaults_kept(self):
        config = allnoconfig(model_from(self.BASIC))
        assert config.tristate("HIDDEN") == Tristate.Y

    def test_selects_propagate(self):
        config = allnoconfig(model_from(self.BASIC))
        assert config.tristate("FORCED") == Tristate.Y

    def test_scalars_kept(self):
        config = allnoconfig(model_from(self.BASIC))
        assert config.scalar_values["COUNT"] == "4"

    def test_build_system_target(self):
        """allnoconfig is reachable through make_config."""
        from repro.kbuild.build import BuildSystem
        from repro.kernel.generator import generate_tree
        tree = generate_tree()
        build = BuildSystem(tree.provider(),
                            path_lister=lambda: sorted(tree.files))
        config = build.make_config("x86_64", "allnoconfig")
        # driver symbols have prompts: all off
        assert not config.enabled("NETDRV_NETDRV0")
        allyes = build.make_config("x86_64", "allyesconfig")
        assert config.enabled_count() < allyes.enabled_count()
