"""The acceptance surface: cached runs are byte-identical to uncached.

A 50-commit evaluation window is checked three ways — uncached, cached
cold, and cached warm (second run over the same shared cache, which is
where hit rates approach 100%) — and every verdict-bearing field must
agree exactly, floats included.
"""

import pytest

from repro.buildcache.cache import BuildCache, CachePolicy
from repro.cc.toolchain import ToolchainRegistry
from repro.evalsuite.runner import EvaluationRunner

LIMIT = 50


@pytest.fixture(scope="module")
def corpus(midsize_corpus):
    """The shared session corpus (see ``tests/conftest.py``)."""
    return midsize_corpus


@pytest.fixture(scope="module")
def uncached(corpus):
    return EvaluationRunner(corpus, cache=False).run(limit=LIMIT)


class TestCachedEqualsUncached:
    def test_cold_cache_byte_identical(self, corpus, uncached):
        cached = EvaluationRunner(corpus).run(limit=LIMIT)
        assert cached.canonical_records() == uncached.canonical_records()

    def test_warm_cache_byte_identical(self, corpus, uncached):
        shared = BuildCache()
        EvaluationRunner(corpus, cache=shared).run(limit=LIMIT)
        warm = EvaluationRunner(corpus, cache=shared).run(limit=LIMIT)
        assert warm.canonical_records() == uncached.canonical_records()
        assert warm.cache_stats.kind("preprocess").hit_rate > 0.9

    def test_primed_cache_byte_identical(self, corpus, uncached):
        primed = BuildCache()
        primed.prime(corpus.tree, ToolchainRegistry())
        cached = EvaluationRunner(corpus, cache=primed).run(limit=LIMIT)
        assert cached.canonical_records() == uncached.canonical_records()

    def test_cache_stats_populated(self, corpus):
        result = EvaluationRunner(corpus).run(limit=LIMIT)
        stats = result.cache_stats
        assert stats is not None
        assert stats.kind("preprocess").probes > 0
        assert stats.kind("config").probes > 0

    def test_no_cache_run_has_no_stats(self, uncached):
        assert uncached.cache_stats is None


class TestParallelCached:
    def test_parallel_matches_serial_cached(self, corpus):
        serial = EvaluationRunner(corpus).run(limit=30)
        parallel = EvaluationRunner(corpus).run(limit=30, jobs=3)
        assert len(parallel.patches) == len(serial.patches)
        for a, b in zip(serial.patches, parallel.patches):
            assert a.commit_id == b.commit_id
            assert a.certified == b.certified
            assert a.elapsed_seconds == pytest.approx(b.elapsed_seconds)
            assert a.invocation_counts == b.invocation_counts
            assert [f.status for f in a.files] == \
                [f.status for f in b.files]

    def test_parallel_aggregates_worker_stats(self, corpus):
        result = EvaluationRunner(corpus).run(limit=30, jobs=3)
        assert result.cache_stats is not None
        assert result.cache_stats.kind("preprocess").probes > 0


class TestProbeClockPolicy:
    def test_probe_clock_keeps_verdicts_compresses_time(self, corpus,
                                                        uncached):
        shared = BuildCache(CachePolicy(clock="probe"))
        EvaluationRunner(corpus, cache=shared).run(limit=LIMIT)
        warm = EvaluationRunner(corpus, cache=shared).run(limit=LIMIT)
        verdicts = [(p.commit_id, p.certified,
                     [f.status for f in p.files]) for p in warm.patches]
        baseline = [(p.commit_id, p.certified,
                     [f.status for f in p.files])
                    for p in uncached.patches]
        assert verdicts == baseline
        assert sum(warm.overall_durations()) < \
            sum(uncached.overall_durations())


class TestJobsValidation:
    def test_jobs_zero_rejected(self, corpus):
        with pytest.raises(ValueError, match="positive"):
            EvaluationRunner(corpus).run(limit=1, jobs=0)

    def test_jobs_negative_rejected(self, corpus):
        with pytest.raises(ValueError, match="positive"):
            EvaluationRunner(corpus).run(limit=1, jobs=-2)
