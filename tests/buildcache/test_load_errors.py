"""Tests for persistent-cache load failure reporting (obs satellite)."""

import pickle

import pytest

from repro.buildcache.cache import BuildCache, _PICKLE_VERSION


class TestLoadErrors:
    def test_missing_file_is_quiet(self, tmp_path, caplog):
        with caplog.at_level("DEBUG", logger="repro.buildcache"):
            cache = BuildCache.load(str(tmp_path / "absent.cache"))
        assert cache.stats.load_errors == 0
        assert not any(record.levelname == "WARNING"
                       for record in caplog.records)

    def test_corrupt_pickle_counts_and_warns(self, tmp_path, caplog):
        path = tmp_path / "rotten.cache"
        path.write_bytes(b"\x80\x04this is not a pickle at all")
        with caplog.at_level("WARNING", logger="repro.buildcache"):
            cache = BuildCache.load(str(path))
        assert cache.stats.load_errors == 1
        warning = next(record for record in caplog.records
                       if record.levelname == "WARNING")
        message = warning.getMessage()
        assert "starting empty" in message
        assert str(path) in message

    def test_truncated_pickle_counts(self, tmp_path):
        source = tmp_path / "good.cache"
        cache = BuildCache()
        cache.save(str(source))
        truncated = tmp_path / "cut.cache"
        truncated.write_bytes(source.read_bytes()[:20])
        loaded = BuildCache.load(str(truncated))
        assert loaded.stats.load_errors == 1

    def test_version_mismatch_counts(self, tmp_path, caplog):
        path = tmp_path / "old.cache"
        with open(path, "wb") as handle:
            pickle.dump({"version": -1}, handle)
        with caplog.at_level("WARNING", logger="repro.buildcache"):
            cache = BuildCache.load(str(path))
        assert cache.stats.load_errors == 1
        assert "incompatible payload" in caplog.text
        assert str(_PICKLE_VERSION) in caplog.text

    def test_non_dict_payload_counts(self, tmp_path):
        path = tmp_path / "list.cache"
        with open(path, "wb") as handle:
            pickle.dump([1, 2, 3], handle)
        assert BuildCache.load(str(path)).stats.load_errors == 1

    def test_load_errors_render_in_stats(self, tmp_path):
        path = tmp_path / "bad.cache"
        path.write_bytes(b"junk")
        cache = BuildCache.load(str(path))
        assert "load errors : 1" in cache.stats.render()
        pristine = BuildCache()
        assert "load errors" not in pristine.stats.render()

    def test_good_round_trip_stays_clean(self, tmp_path):
        path = str(tmp_path / "fine.cache")
        BuildCache().save(path)
        assert BuildCache.load(path).stats.load_errors == 0
