"""Commit-driven invalidation: a header edit touches exactly the
sources whose include closure contains it, nothing else."""

from tests.buildcache.conftest import make_build_system


def _preprocess_all(tree, cache):
    build = make_build_system(tree, cache)
    x86 = build.make_config("x86_64", "allyesconfig")
    arm = build.make_config("arm", "allyesconfig")
    build.make_i(["drivers/net/e1000.c"], "x86_64", x86)   # linux/kernel.h
    build.make_i(["kernel/sched.c"], "x86_64", x86)        # no includes
    build.make_i(["arch/x86/kernel/setup.c"], "x86_64", x86)  # asm/io.h
    build.make_i(["drivers/net/amba_net.c"], "arm", arm)   # asm/amba.h
    return build


class TestExactFanout:
    def test_depgraph_names_exactly_the_dependents(self, tree, cache):
        _preprocess_all(tree, cache)
        perturbed = cache.on_commit(["include/linux/kernel.h"])
        assert perturbed == {"drivers/net/e1000.c"}

    def test_header_edit_invalidates_only_closure_members(self, tree,
                                                          cache):
        _preprocess_all(tree, cache)
        tree["include/linux/kernel.h"] = "#define KERN_INFO \"9\"\n"
        cache.on_commit(["include/linux/kernel.h"])

        warm = make_build_system(tree, cache)
        x86 = warm.make_config("x86_64", "allyesconfig")
        arm = warm.make_config("arm", "allyesconfig")
        dependent = warm.make_i(["drivers/net/e1000.c"], "x86_64", x86)[0]
        assert not dependent.cached
        for path, arch, config in (("kernel/sched.c", "x86_64", x86),
                                   ("arch/x86/kernel/setup.c", "x86_64",
                                    x86),
                                   ("drivers/net/amba_net.c", "arm",
                                    arm)):
            result = warm.make_i([path], arch, config)[0]
            assert result.cached, f"{path} should be unaffected"

    def test_source_edit_invalidates_only_itself(self, tree, cache):
        _preprocess_all(tree, cache)
        tree["kernel/sched.c"] = "int schedule(void) { return 1; }\n"
        perturbed = cache.on_commit(["kernel/sched.c"])
        assert perturbed == {"kernel/sched.c"}

        warm = make_build_system(tree, cache)
        x86 = warm.make_config("x86_64", "allyesconfig")
        assert not warm.make_i(["kernel/sched.c"], "x86_64", x86)[0].cached
        assert warm.make_i(["drivers/net/e1000.c"], "x86_64",
                           x86)[0].cached

    def test_created_file_shadowing_include_invalidates(self, tree, cache):
        """e1000.c includes <linux/kernel.h>; a new file earlier on the
        include search path must invalidate even though no *existing*
        file changed (the negative-probe manifest entries)."""
        build = make_build_system(tree, cache)
        x86 = build.make_config("x86_64", "allyesconfig")
        cold = build.make_i(["drivers/net/e1000.c"], "x86_64", x86)[0]
        probed_absent = cold.preprocess_result.missing_includes
        if not probed_absent:  # include resolved at the first candidate
            return
        tree[probed_absent[0]] = "#define KERN_INFO \"shadow\"\n"
        warm = make_build_system(tree, cache)
        x86 = warm.make_config("x86_64", "allyesconfig")
        assert not warm.make_i(["drivers/net/e1000.c"], "x86_64",
                               x86)[0].cached
