"""Fixtures for the build-cache tests.

Reuses the small hand-written kernel-like tree from the kbuild tests; a
mutable dict doubles as the worktree so tests can simulate commits by
editing file texts between builds.
"""

import pytest

from repro.buildcache.cache import BuildCache, CachePolicy
from repro.kbuild.build import BuildSystem

from tests.kbuild.conftest import TREE


@pytest.fixture
def tree():
    return dict(TREE)


@pytest.fixture
def cache():
    return BuildCache()


def make_build_system(tree, cache, **kwargs):
    return BuildSystem(
        tree.get,
        bootstrap_paths={"kernel/bounds.c"},
        rebuild_trigger_paths=set(),
        path_lister=lambda: sorted(tree),
        cache=cache,
        **kwargs,
    )


@pytest.fixture
def build_system(tree, cache):
    return make_build_system(tree, cache)


@pytest.fixture
def probe_build_system(tree):
    probe_cache = BuildCache(CachePolicy(clock="probe"))
    return make_build_system(tree, probe_cache)
