"""Tests for digests, environment fingerprints, and closure manifests."""

from repro.buildcache.fingerprint import (
    ABSENT,
    RecordingProvider,
    blob_digest,
    env_fingerprint,
    manifest_digest,
    manifest_for,
    manifest_valid,
)
from repro.cc.toolchain import ToolchainRegistry
from repro.kconfig.ast import Tristate
from repro.kconfig.configfile import Config


class TestBlobDigest:
    def test_deterministic(self):
        assert blob_digest("int x;\n") == blob_digest("int x;\n")

    def test_content_sensitive(self):
        assert blob_digest("int x;\n") != blob_digest("int y;\n")

    def test_empty_text_ok(self):
        assert blob_digest("")


class TestEnvFingerprint:
    def _config(self, **symbols):
        config = Config()
        for name, letter in symbols.items():
            config.set(name, Tristate.from_letter(letter))
        return config

    def test_same_inputs_same_fingerprint(self):
        registry = ToolchainRegistry()
        x86 = registry.get("x86_64")
        a = env_fingerprint(x86, self._config(PCI="y"), modular=False)
        b = env_fingerprint(x86, self._config(PCI="y"), modular=False)
        assert a == b

    def test_architecture_changes_fingerprint(self):
        registry = ToolchainRegistry()
        config = self._config(PCI="y")
        assert env_fingerprint(registry.get("x86_64"), config,
                               modular=False) != \
            env_fingerprint(registry.get("arm"), config, modular=False)

    def test_config_values_change_fingerprint(self):
        registry = ToolchainRegistry()
        x86 = registry.get("x86_64")
        assert env_fingerprint(x86, self._config(PCI="y"),
                               modular=False) != \
            env_fingerprint(x86, self._config(PCI="y", NET="y"),
                            modular=False)

    def test_modular_flag_changes_fingerprint(self):
        registry = ToolchainRegistry()
        x86 = registry.get("x86_64")
        config = self._config(PCI="y")
        assert env_fingerprint(x86, config, modular=False) != \
            env_fingerprint(x86, config, modular=True)

    def test_config_name_does_not_matter(self):
        registry = ToolchainRegistry()
        x86 = registry.get("x86_64")
        a = self._config(PCI="y")
        b = self._config(PCI="y")
        b.name = "some_defconfig"
        assert env_fingerprint(x86, a, modular=False) == \
            env_fingerprint(x86, b, modular=False)


class TestManifest:
    def test_valid_while_unchanged(self):
        files = {"a.h": "#define A 1\n", "b.h": "#define B 2\n"}
        manifest = manifest_for(["a.h", "b.h"], files.get)
        assert manifest_valid(manifest, files.get)

    def test_edit_invalidates(self):
        files = {"a.h": "#define A 1\n"}
        manifest = manifest_for(["a.h"], files.get)
        files["a.h"] = "#define A 2\n"
        assert not manifest_valid(manifest, files.get)

    def test_deletion_invalidates(self):
        files = {"a.h": "#define A 1\n"}
        manifest = manifest_for(["a.h"], files.get)
        del files["a.h"]
        assert not manifest_valid(manifest, files.get)

    def test_absent_probe_recorded_and_creation_invalidates(self):
        files = {"a.h": "#define A 1\n"}
        manifest = manifest_for(["a.h"], files.get, absent=["local/a.h"])
        assert ("local/a.h", ABSENT) in manifest
        assert manifest_valid(manifest, files.get)
        # creating the file that was probed-absent shadows the include
        files["local/a.h"] = "#define A 9\n"
        assert not manifest_valid(manifest, files.get)

    def test_duplicates_collapse(self):
        files = {"a.h": "x"}
        manifest = manifest_for(["a.h", "a.h"], files.get)
        assert len(manifest) == 1

    def test_manifest_digest_order_sensitive(self):
        a = (("x", "1"), ("y", "2"))
        b = (("y", "2"), ("x", "1"))
        assert manifest_digest(a) != manifest_digest(b)


class TestRecordingProvider:
    def test_records_reads_and_misses(self):
        files = {"a": "1", "b": "2"}
        recording = RecordingProvider(files.get)
        assert recording("a") == "1"
        assert recording("missing") is None
        assert recording("b") == "2"
        assert recording.read_paths == ["a", "b"]
        assert recording.missing_paths == ["missing"]

    def test_manifest_covers_absent(self):
        files = {"a": "1"}
        recording = RecordingProvider(files.get)
        recording("a")
        recording("gone")
        manifest = recording.manifest()
        assert dict(manifest)["gone"] == ABSENT
        assert manifest_valid(manifest, files.get)
        files["gone"] = "now here"
        assert not manifest_valid(manifest, files.get)
