"""Tests for the incremental include-dependency graph."""

from repro.buildcache.depgraph import IncludeDependencyGraph


class TestRecordAndQuery:
    def test_source_is_its_own_dependent(self):
        graph = IncludeDependencyGraph()
        graph.record("a.c", ["a.c", "a.h"])
        assert graph.dependents_of(["a.c"]) == {"a.c"}

    def test_header_maps_to_dependents(self):
        graph = IncludeDependencyGraph()
        graph.record("a.c", ["a.c", "common.h"])
        graph.record("b.c", ["b.c", "common.h"])
        graph.record("c.c", ["c.c", "other.h"])
        assert graph.dependents_of(["common.h"]) == {"a.c", "b.c"}

    def test_closure_includes_source_implicitly(self):
        graph = IncludeDependencyGraph()
        graph.record("a.c", ["x.h"])
        assert "a.c" in graph.closure_of("a.c")

    def test_rerecord_replaces_edges(self):
        graph = IncludeDependencyGraph()
        graph.record("a.c", ["a.c", "old.h"])
        graph.record("a.c", ["a.c", "new.h"])
        assert graph.dependents_of(["old.h"]) == set()
        assert graph.dependents_of(["new.h"]) == {"a.c"}


class TestNoteChanged:
    def test_returns_perturbed_sources(self):
        graph = IncludeDependencyGraph()
        graph.record("a.c", ["a.c", "common.h"])
        graph.record("b.c", ["b.c", "common.h"])
        graph.record("c.c", ["c.c"])
        assert graph.note_changed(["common.h"]) == {"a.c", "b.c"}

    def test_bumps_generations(self):
        graph = IncludeDependencyGraph()
        graph.record("a.c", ["a.c", "h.h"])
        assert graph.generation("a.c") == 0
        graph.note_changed(["h.h"])
        graph.note_changed(["h.h"])
        assert graph.generation("a.c") == 2

    def test_unknown_paths_are_noops(self):
        graph = IncludeDependencyGraph()
        graph.record("a.c", ["a.c"])
        assert graph.note_changed(["never/seen.h"]) == set()

    def test_fanout_is_exact(self):
        """Only sources whose closure intersects the diff are touched."""
        graph = IncludeDependencyGraph()
        for index in range(10):
            graph.record(f"f{index}.c", [f"f{index}.c", f"f{index}.h"])
        graph.record("all.c", ["all.c"] + [f"f{i}.h" for i in range(10)])
        assert graph.note_changed(["f3.h"]) == {"f3.c", "all.c"}
        assert graph.generation("f4.c") == 0
