"""Tests for the BuildCache through the BuildSystem integration."""

import pytest

from repro.buildcache.cache import BuildCache, CachePolicy
from repro.kbuild.build import BuildError

from tests.buildcache.conftest import make_build_system


class TestPreprocessCaching:
    def test_second_build_system_hits(self, tree, cache):
        first = make_build_system(tree, cache)
        config = first.make_config("x86_64", "allyesconfig")
        results_cold = first.make_i(["drivers/net/e1000.c"], "x86_64",
                                    config)
        assert not results_cold[0].cached

        second = make_build_system(tree, cache)
        config2 = second.make_config("x86_64", "allyesconfig")
        results_warm = second.make_i(["drivers/net/e1000.c"], "x86_64",
                                     config2)
        assert results_warm[0].cached
        assert results_warm[0].i_text == results_cold[0].i_text
        assert cache.stats.kind("preprocess").hits == 1

    def test_replay_clock_charges_full_cost(self, tree, cache):
        """Simulated timings must be byte-identical to an uncached run."""
        cold = make_build_system(tree, cache)
        config = cold.make_config("x86_64", "allyesconfig")
        cold.make_i(["drivers/net/e1000.c"], "x86_64", config)
        cold_total = cold.clock.total("make_i")

        warm = make_build_system(tree, cache)
        config = warm.make_config("x86_64", "allyesconfig")
        warm.make_i(["drivers/net/e1000.c"], "x86_64", config)
        assert warm.clock.total("make_i") == cold_total

        uncached = make_build_system(tree, None)
        config = uncached.make_config("x86_64", "allyesconfig")
        uncached.make_i(["drivers/net/e1000.c"], "x86_64", config)
        assert uncached.clock.total("make_i") == cold_total

    def test_probe_clock_charges_less_on_hits(self, tree):
        shared = BuildCache(CachePolicy(clock="probe"))
        cold = make_build_system(tree, shared)
        config = cold.make_config("x86_64", "allyesconfig")
        cold.make_i(["drivers/net/e1000.c"], "x86_64", config)
        cold_total = cold.clock.total("make_i")

        warm = make_build_system(tree, shared)
        config = warm.make_config("x86_64", "allyesconfig")
        warm.make_i(["drivers/net/e1000.c"], "x86_64", config)
        assert warm.clock.total("make_i") < cold_total
        assert shared.stats.kind("preprocess").sim_seconds_saved > 0

    def test_header_edit_misses_then_revives(self, tree, cache):
        first = make_build_system(tree, cache)
        config = first.make_config("x86_64", "allyesconfig")
        first.make_i(["drivers/net/e1000.c"], "x86_64", config)
        original = tree["include/linux/kernel.h"]

        tree["include/linux/kernel.h"] = "#define KERN_INFO \"7\"\n"
        edited = make_build_system(tree, cache)
        config = edited.make_config("x86_64", "allyesconfig")
        results = edited.make_i(["drivers/net/e1000.c"], "x86_64", config)
        assert not results[0].cached  # closure manifest no longer matches

        tree["include/linux/kernel.h"] = original
        reverted = make_build_system(tree, cache)
        config = reverted.make_config("x86_64", "allyesconfig")
        results = reverted.make_i(["drivers/net/e1000.c"], "x86_64",
                                  config)
        assert results[0].cached  # the old entry revived verbatim

    def test_env_differences_do_not_cross_pollute(self, tree, cache):
        build = make_build_system(tree, cache)
        yes = build.make_config("x86_64", "allyesconfig")
        small = build.make_config("x86_64", "small_defconfig")
        result = build.make_i(["arch/x86/kernel/setup.c"], "x86_64",
                              yes)[0]
        assert result.ok
        other = build.make_i(["arch/x86/kernel/setup.c"], "x86_64",
                             small)[0]
        # different autoconf macro sets -> separate entries, no hit
        assert not other.cached


class TestObjectCaching:
    def test_object_hit_returns_equal_artifact(self, tree, cache):
        first = make_build_system(tree, cache)
        config = first.make_config("x86_64", "allyesconfig")
        cold = first.make_o("drivers/net/e1000.c", "x86_64", config)

        second = make_build_system(tree, cache)
        config = second.make_config("x86_64", "allyesconfig")
        warm = second.make_o("drivers/net/e1000.c", "x86_64", config)
        assert cache.stats.kind("object").hits == 1
        assert warm.symbols == cold.symbols
        assert warm.token_count == cold.token_count
        assert warm.strings == cold.strings

    def test_object_replay_clock_identical(self, tree, cache):
        first = make_build_system(tree, cache)
        config = first.make_config("x86_64", "allyesconfig")
        first.make_o("drivers/net/e1000.c", "x86_64", config)
        cold_total = first.clock.total("make_o")

        second = make_build_system(tree, cache)
        config = second.make_config("x86_64", "allyesconfig")
        second.make_o("drivers/net/e1000.c", "x86_64", config)
        assert second.clock.total("make_o") == cold_total

    def test_compile_failure_cached_with_same_message(self, tree, cache):
        tree["drivers/net/wifi.c"] = "int wifi_init(void) { return 0` ; }\n"
        first = make_build_system(tree, cache)
        config = first.make_config("x86_64", "allyesconfig")
        with pytest.raises(BuildError) as cold:
            first.make_o("drivers/net/wifi.c", "x86_64", config)
        assert cold.value.kind == "compile_failed"

        second = make_build_system(tree, cache)
        config = second.make_config("x86_64", "allyesconfig")
        with pytest.raises(BuildError) as warm:
            second.make_o("drivers/net/wifi.c", "x86_64", config)
        assert warm.value.kind == "compile_failed"
        assert str(warm.value) == str(cold.value)
        assert cache.stats.kind("object").hits == 1

    def test_check_failures_not_polluted_by_cache(self, tree, cache):
        build = make_build_system(tree, cache)
        small = build.make_config("x86_64", "small_defconfig")
        with pytest.raises(BuildError) as error:
            build.make_o("drivers/net/e1000.c", "x86_64", small)
        assert error.value.kind == "no_rule"


class TestConfigAndModelCaching:
    def test_config_shared_across_build_systems(self, tree, cache):
        first = make_build_system(tree, cache)
        config_a = first.make_config("x86_64", "allyesconfig")
        second = make_build_system(tree, cache)
        config_b = second.make_config("x86_64", "allyesconfig")
        assert cache.stats.kind("config").hits == 1
        assert config_b.values == config_a.values
        # replay clock: charge identical to an uncached solve
        assert second.clock.total("config") == first.clock.total("config")

    def test_architectures_never_conflated(self, tree, cache):
        build = make_build_system(tree, cache)
        x86 = build.make_config("x86_64", "allyesconfig")
        arm = build.make_config("arm", "allyesconfig")
        assert x86.builtin("X86") and not x86.enabled("ARM_AMBA")
        assert arm.builtin("ARM_AMBA") and not arm.enabled("X86")

        fresh = make_build_system(tree, cache)
        assert fresh.make_config("x86_64",
                                 "allyesconfig").builtin("X86")
        assert fresh.make_config("arm",
                                 "allyesconfig").builtin("ARM_AMBA")

    def test_kconfig_edit_invalidates_model(self, tree, cache):
        first = make_build_system(tree, cache)
        first.make_config("x86_64", "allyesconfig")

        tree["Kconfig"] += "config NEW_SYM\n\tbool\n\tdefault y\n"
        second = make_build_system(tree, cache)
        config = second.make_config("x86_64", "allyesconfig")
        assert config.builtin("NEW_SYM")

    def test_defconfig_seed_keyed(self, tree, cache):
        first = make_build_system(tree, cache)
        small = first.make_config("x86_64", "small_defconfig")
        assert not small.enabled("NET")

        tree["arch/x86/configs/small_defconfig"] = \
            "CONFIG_PCI=y\nCONFIG_NET=y\n"
        second = make_build_system(tree, cache)
        edited = second.make_config("x86_64", "small_defconfig")
        assert edited.enabled("NET")


class TestPolicyBounds:
    def test_max_variants_evicts_oldest(self, tree):
        cache = BuildCache(CachePolicy(max_variants=1))
        original = tree["include/linux/kernel.h"]
        for text in ("#define KERN_INFO \"7\"\n", original):
            tree["include/linux/kernel.h"] = text
            build = make_build_system(tree, cache)
            config = build.make_config("x86_64", "allyesconfig")
            build.make_i(["drivers/net/e1000.c"], "x86_64", config)
        assert cache.stats.kind("preprocess").evictions >= 1

    def test_max_entries_lru(self):
        cache = BuildCache(CachePolicy(max_entries=1))
        cache.put_makefile("a/Makefile", "obj-y += a.o\n", "parsed-a")
        cache.put_makefile("b/Makefile", "obj-y += b.o\n", "parsed-b")
        assert len(cache) == 1
        assert cache.stats.kind("makefile").evictions == 1
        assert cache.get_makefile("a/Makefile", "obj-y += a.o\n") is None
        assert cache.get_makefile("b/Makefile",
                                  "obj-y += b.o\n") == "parsed-b"


class TestOnCommit:
    def test_counts_invalidations_without_dropping(self, tree, cache):
        build = make_build_system(tree, cache)
        config = build.make_config("x86_64", "allyesconfig")
        build.make_i(["drivers/net/e1000.c"], "x86_64", config)
        size_before = len(cache)
        perturbed = cache.on_commit(["include/linux/kernel.h"])
        assert "drivers/net/e1000.c" in perturbed
        assert cache.stats.kind("preprocess").invalidations >= 1
        assert len(cache) == size_before  # entries stay for revival


class TestPersistence:
    def test_save_load_roundtrip(self, tree, cache, tmp_path):
        build = make_build_system(tree, cache)
        config = build.make_config("x86_64", "allyesconfig")
        build.make_i(["drivers/net/e1000.c"], "x86_64", config)
        path = tmp_path / "cache.pickle"
        cache.save(str(path))

        loaded = BuildCache.load(str(path))
        assert len(loaded) == len(cache)
        warm = make_build_system(tree, loaded)
        config = warm.make_config("x86_64", "allyesconfig")
        results = warm.make_i(["drivers/net/e1000.c"], "x86_64", config)
        assert results[0].cached

    def test_load_missing_file_gives_fresh_cache(self, tmp_path):
        loaded = BuildCache.load(str(tmp_path / "absent.pickle"))
        assert len(loaded) == 0

    def test_load_garbage_gives_fresh_cache(self, tmp_path):
        # different leading bytes decode as different pickle opcodes and
        # raise different exception types; all must fall back cleanly
        for i, garbage in enumerate((b"not a pickle at all",
                                     b"garbage not a pickle\n",
                                     b"\x80\x05broken")):
            path = tmp_path / f"garbage-{i}.pickle"
            path.write_bytes(garbage)
            assert len(BuildCache.load(str(path))) == 0
