"""Tests for patch stats and log author filtering."""

from repro.vcs.diff import Patch, diff_texts
from repro.vcs.objects import Signature, Tree
from repro.vcs.repository import Repository


class TestPatchStats:
    def test_counts(self):
        old = "a\nb\nc\n"
        new = "a\nB\nc\nd\n"
        patch = Patch(files=[diff_texts("f.c", old, new,
                                        ignore_whitespace=False)])
        stats = patch.stats()
        assert stats.files_changed == 1
        assert stats.insertions == 2   # B and d
        assert stats.deletions == 1    # b

    def test_empty_patch(self):
        stats = Patch().stats()
        assert (stats.files_changed, stats.insertions,
                stats.deletions) == (0, 0, 0)

    def test_render(self):
        old, new = "a\n", "b\n"
        patch = Patch(files=[diff_texts("f.c", old, new)])
        assert "1 file(s) changed" in patch.stats().render()


class TestAuthorFilter:
    def make_repo(self):
        repo = Repository()
        files = {"a.c": "int a;\n"}
        repo.commit(Tree(files), Signature(
            "Base", "base@x.org", "2015-01-01T00:00:00"), "base")
        for index, (name, email) in enumerate(
                [("Alice", "alice@x.org"), ("Bob", "bob@x.org"),
                 ("Alice", "alice@x.org")]):
            files = dict(files)
            files["a.c"] = f"int a{index};\n"
            repo.commit(Tree(files), Signature(
                name, email, f"2015-01-0{index + 2}T00:00:00"),
                f"change {index}")
        return repo

    def test_filter_by_email(self):
        repo = self.make_repo()
        assert len(repo.log(author="alice@x.org")) == 2
        assert len(repo.log(author="bob@x.org")) == 1

    def test_filter_by_name(self):
        repo = self.make_repo()
        assert len(repo.log(author="Alice")) == 2

    def test_unknown_author_empty(self):
        repo = self.make_repo()
        assert repo.log(author="nobody@x.org") == []
