"""Tests for unified diff generation, parsing, and application."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PatchApplyError, PatchFormatError
from repro.vcs.diff import (
    LineKind,
    Patch,
    apply_file_diff,
    diff_texts,
    parse_patch,
)

OLD = """\
int a;
int b;
int c;
int d;
int e;
"""

NEW = """\
int a;
int b;
int c2;
int d;
int e;
"""


class TestDiffTexts:
    def test_none_for_equal_texts(self):
        assert diff_texts("f.c", OLD, OLD) is None

    def test_single_change(self):
        file_diff = diff_texts("f.c", OLD, NEW)
        assert file_diff is not None
        assert file_diff.path == "f.c"
        assert len(file_diff.hunks) == 1
        hunk = file_diff.hunks[0]
        assert [line.text for line in hunk.removed_lines()] == ["int c;"]
        assert [line.text for line in hunk.added_lines()] == ["int c2;"]

    def test_new_linenos_match_new_text(self):
        file_diff = diff_texts("f.c", OLD, NEW)
        added = file_diff.hunks[0].added_lines()[0]
        assert added.new_lineno == 3
        assert NEW.split("\n")[added.new_lineno - 1] == "int c2;"

    def test_whitespace_only_change_suppressed_with_w(self):
        changed = OLD.replace("int b;", "int  b ;")
        assert diff_texts("f.c", OLD, changed, ignore_whitespace=True) is None

    def test_whitespace_only_change_visible_without_w(self):
        changed = OLD.replace("int b;", "int  b ;")
        file_diff = diff_texts("f.c", OLD, changed, ignore_whitespace=False)
        assert file_diff is not None

    def test_pure_addition_hunk(self):
        new = OLD + "int f;\n"
        file_diff = diff_texts("f.c", OLD, new)
        hunk = file_diff.hunks[-1]
        assert hunk.is_pure_addition()
        assert not hunk.is_pure_removal()

    def test_pure_removal_hunk(self):
        new = OLD.replace("int e;\n", "")
        file_diff = diff_texts("f.c", OLD, new)
        hunk = file_diff.hunks[-1]
        assert hunk.is_pure_removal()

    def test_multiple_hunks_for_distant_changes(self):
        old = "\n".join(f"line{i};" for i in range(40)) + "\n"
        new = old.replace("line2;", "line2x;").replace("line35;", "line35x;")
        file_diff = diff_texts("f.c", old, new)
        assert len(file_diff.hunks) == 2


class TestRoundTrip:
    def test_render_parse_roundtrip(self):
        file_diff = diff_texts("dir/f.c", OLD, NEW)
        patch = Patch(files=[file_diff])
        reparsed = parse_patch(patch.render())
        assert reparsed.paths() == ["dir/f.c"]
        hunk = reparsed.files[0].hunks[0]
        assert [line.text for line in hunk.added_lines()] == ["int c2;"]
        assert hunk.added_lines()[0].new_lineno == 3

    def test_apply_reproduces_new_text(self):
        file_diff = diff_texts("f.c", OLD, NEW)
        assert apply_file_diff(OLD, file_diff) == NEW

    def test_apply_pure_addition(self):
        new = "int z;\n" + OLD
        file_diff = diff_texts("f.c", OLD, new)
        assert apply_file_diff(OLD, file_diff) == new

    def test_apply_pure_removal(self):
        new = OLD.replace("int a;\n", "")
        file_diff = diff_texts("f.c", OLD, new)
        assert apply_file_diff(OLD, file_diff) == new

    @given(st.lists(st.sampled_from(
        ["int a;", "int b;", "char *s;", "return 0;", "", "/* c */"]),
        min_size=1, max_size=30),
        st.lists(st.sampled_from(
            ["int a;", "long q;", "char *s;", "break;", "", "// x"]),
            min_size=1, max_size=30))
    def test_apply_diff_reconstructs_any_pair(self, old_lines, new_lines):
        old = "\n".join(old_lines) + "\n"
        new = "\n".join(new_lines) + "\n"
        file_diff = diff_texts("f.c", old, new, ignore_whitespace=False)
        if file_diff is None:
            assert old == new
        else:
            assert apply_file_diff(old, file_diff) == new


class TestParseErrors:
    def test_hunk_outside_file(self):
        with pytest.raises(PatchFormatError):
            parse_patch("@@ -1,1 +1,1 @@\n-x\n+y\n")

    def test_count_mismatch(self):
        bad = ("--- a/f.c\n+++ b/f.c\n"
               "@@ -1,2 +1,1 @@\n-x\n+y\n")
        with pytest.raises(PatchFormatError):
            parse_patch(bad)

    def test_git_show_preamble_skipped(self):
        text = ("commit abc123\nAuthor: A <a@x>\n\n    fix stuff\n\n"
                + Patch(files=[diff_texts("f.c", OLD, NEW)]).render())
        patch = parse_patch(text)
        assert patch.paths() == ["f.c"]

    def test_no_newline_marker_tolerated(self):
        file_diff = diff_texts("f.c", OLD, NEW)
        rendered = Patch(files=[file_diff]).render()
        rendered += "\\ No newline at end of file\n"
        patch = parse_patch(rendered)
        assert patch.paths() == ["f.c"]


class TestApplyErrors:
    def test_context_mismatch(self):
        file_diff = diff_texts("f.c", OLD, NEW)
        with pytest.raises(PatchApplyError):
            apply_file_diff(OLD.replace("int b;", "int q;"), file_diff)

    def test_runs_past_eof(self):
        file_diff = diff_texts("f.c", OLD, NEW)
        with pytest.raises(PatchApplyError):
            apply_file_diff("int a;\n", file_diff)


class TestHunkAccessors:
    def test_changed_new_linenos(self):
        file_diff = diff_texts("f.c", OLD, NEW)
        assert file_diff.changed_new_linenos() == [3]

    def test_header_format(self):
        file_diff = diff_texts("f.c", OLD, NEW)
        header = file_diff.hunks[0].header
        assert header.startswith("@@ -")
        assert header.endswith("@@")

    def test_context_lines_have_both_numbers(self):
        file_diff = diff_texts("f.c", OLD, NEW)
        for line in file_diff.hunks[0].lines:
            if line.kind is LineKind.CONTEXT:
                assert line.old_lineno is not None
                assert line.new_lineno is not None
