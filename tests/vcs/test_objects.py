"""Tests for trees and commits."""

import pytest

from repro.vcs.objects import Commit, Signature, Tree


def sig(name="Dev", email="dev@example.org", date="2015-11-10T00:00:00"):
    return Signature(name=name, email=email, date=date)


class TestTree:
    def test_ids_depend_on_content(self):
        a = Tree({"f.c": "int x;\n"})
        b = Tree({"f.c": "int y;\n"})
        assert a.id != b.id

    def test_ids_stable_across_insertion_order(self):
        a = Tree(dict([("a.c", "1"), ("b.c", "2")]))
        b = Tree(dict([("b.c", "2"), ("a.c", "1")]))
        assert a.id == b.id

    def test_rejects_absolute_paths(self):
        with pytest.raises(ValueError):
            Tree({"/etc/passwd": "x"})

    def test_rejects_parent_escapes(self):
        with pytest.raises(ValueError):
            Tree({"a/../b.c": "x"})

    def test_with_files_returns_new_tree(self):
        base = Tree({"a.c": "1"})
        updated = base.with_files({"b.c": "2"})
        assert "b.c" not in base
        assert updated["b.c"] == "2"
        assert updated["a.c"] == "1"

    def test_without_files(self):
        base = Tree({"a.c": "1", "b.c": "2"})
        trimmed = base.without_files(["a.c"])
        assert "a.c" not in trimmed
        assert "b.c" in trimmed

    def test_glob_by_suffix_and_prefix(self):
        tree = Tree({
            "drivers/net/a.c": "",
            "drivers/net/a.h": "",
            "fs/ext4/b.c": "",
        })
        assert tree.glob(suffix=".c") == ["drivers/net/a.c", "fs/ext4/b.c"]
        assert tree.glob(prefix="drivers") == ["drivers/net/a.c",
                                               "drivers/net/a.h"]
        assert tree.glob(prefix="drivers/", suffix=".h") == ["drivers/net/a.h"]

    def test_iteration_is_sorted(self):
        tree = Tree({"z.c": "", "a.c": ""})
        assert list(tree) == ["a.c", "z.c"]

    def test_get_default(self):
        tree = Tree({})
        assert tree.get("missing") is None
        assert tree.get("missing", "dflt") == "dflt"


class TestCommit:
    def test_id_changes_with_message(self):
        tree = Tree({"a.c": "1"})
        c1 = Commit(tree=tree, author=sig(), message="one")
        c2 = Commit(tree=tree, author=sig(), message="two")
        assert c1.id != c2.id

    def test_merge_detection(self):
        tree = Tree({})
        root = Commit(tree=tree, author=sig(), message="root")
        merge = Commit(tree=tree, author=sig(), message="merge",
                       parents=(root.id, root.id))
        assert not root.is_merge
        assert merge.is_merge

    def test_subject_is_first_line(self):
        commit = Commit(tree=Tree({}), author=sig(),
                        message="fix: things\n\nLong body.")
        assert commit.subject == "fix: things"
