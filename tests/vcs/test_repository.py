"""Tests for repository history, log filtering, and worktrees."""

import pytest

from repro.errors import VcsError
from repro.vcs.diff import diff_texts, Patch
from repro.vcs.objects import Signature, Tree
from repro.vcs.repository import LogOptions, Repository


def sig(name="Dev", email="dev@example.org", date="2015-11-10T00:00:00"):
    return Signature(name=name, email=email, date=date)


@pytest.fixture
def repo_with_history():
    repo = Repository()
    t0 = Tree({"a.c": "int a;\n", "b.c": "int b;\n"})
    c0 = repo.commit(t0, sig("Base"), "initial")
    repo.tag("v4.3", c0.id)

    t1 = t0.with_files({"a.c": "int a2;\n"})
    c1 = repo.commit(t1, sig("Alice"), "change a")

    t2 = t1.with_files({"b.c": "int  b ;\n"})  # whitespace-only
    c2 = repo.commit(t2, sig("Bob"), "reformat b")

    merge = repo.commit(t2, sig("Linus"), "Merge branch",
                        parents=(c2.id, c1.id))

    t3 = t2.with_files({"c.c": "int c;\n"})  # pure addition (not a mod)
    c3 = repo.commit(t3, sig("Carol"), "add c.c")

    t4 = t3.with_files({"c.c": "int c2;\n"})
    c4 = repo.commit(t4, sig("Dan"), "modify c.c")
    repo.tag("v4.4", c4.id)
    return repo, (c0, c1, c2, merge, c3, c4)


class TestCommitGraph:
    def test_implicit_parent_chain(self, repo_with_history):
        repo, commits = repo_with_history
        c0, c1 = commits[0], commits[1]
        assert c1.parents == (c0.id,)

    def test_unknown_parent_rejected(self):
        repo = Repository()
        with pytest.raises(VcsError):
            repo.commit(Tree({}), sig(), "bad", parents=("deadbeef",))

    def test_resolve_by_prefix(self, repo_with_history):
        repo, commits = repo_with_history
        target = commits[1]
        assert repo.resolve(target.id[:12]).id == target.id

    def test_resolve_unknown(self, repo_with_history):
        repo, _ = repo_with_history
        with pytest.raises(VcsError):
            repo.resolve("zzzz")

    def test_tag_resolution(self, repo_with_history):
        repo, commits = repo_with_history
        assert repo.resolve("v4.3").id == commits[0].id

    def test_head(self, repo_with_history):
        repo, commits = repo_with_history
        assert repo.head().id == commits[-1].id

    def test_empty_repo_head_raises(self):
        with pytest.raises(VcsError):
            Repository().head()


class TestLog:
    def test_log_filters_match_paper_invocation(self, repo_with_history):
        """-w --diff-filter=M --no-merges between the tags."""
        repo, commits = repo_with_history
        selected = repo.log(since="v4.3", until="v4.4")
        messages = [commit.message for commit in selected]
        # whitespace-only commit dropped by -w; merge dropped; addition
        # dropped by --diff-filter=M.
        assert messages == ["change a", "modify c.c"]

    def test_log_without_whitespace_filter(self, repo_with_history):
        repo, _ = repo_with_history
        options = LogOptions(ignore_whitespace=False)
        selected = repo.log(since="v4.3", until="v4.4", options=options)
        assert "reformat b" in [commit.message for commit in selected]

    def test_log_keeps_merges_when_asked(self, repo_with_history):
        repo, _ = repo_with_history
        options = LogOptions(no_merges=False, modifications_only=False)
        selected = repo.log(since="v4.3", until="v4.4", options=options)
        assert "Merge branch" in [commit.message for commit in selected]

    def test_log_full_range(self, repo_with_history):
        # The root commit has no parent, so --diff-filter=M drops it too.
        repo, _ = repo_with_history
        selected = repo.log()
        assert [commit.message for commit in selected] == \
            ["change a", "modify c.c"]


class TestCommitsAfter:
    """The fleet pull surface: cursor-based incremental streaming."""

    def test_none_cursor_streams_from_the_root(self,
                                               repo_with_history):
        repo, _ = repo_with_history
        assert [c.id for c in repo.commits_after()] == \
            [c.id for c in repo.log()]

    def test_cursor_excludes_itself(self, repo_with_history):
        repo, commits = repo_with_history
        pulled = repo.commits_after(commits[0].id)
        assert commits[0].id not in [c.id for c in pulled]

    def test_limit_truncates(self, repo_with_history):
        repo, _ = repo_with_history
        assert len(repo.commits_after(limit=1)) == 1

    def test_bad_limit_raises(self, repo_with_history):
        repo, _ = repo_with_history
        with pytest.raises(VcsError, match="limit"):
            repo.commits_after(limit=0)

    def test_cursor_walk_covers_the_stream_exactly_once(
            self, repo_with_history):
        repo, _ = repo_with_history
        cursor, seen = None, []
        while True:
            pulled = repo.commits_after(cursor, limit=1)
            if not pulled:
                break
            seen.extend(c.id for c in pulled)
            cursor = pulled[-1].id
        assert seen == [c.id for c in repo.log()]

    def test_new_commits_show_up_on_the_next_pull(self,
                                                  repo_with_history):
        repo, commits = repo_with_history
        cursor = repo.head().id
        assert repo.commits_after(cursor) == []
        t_new = repo.head().tree.with_files({"c.c": "int c3;\n"})
        fresh = repo.commit(t_new, sig("Eve"), "modify c.c again")
        assert [c.id for c in repo.commits_after(cursor)] == [fresh.id]


class TestShow:
    def test_show_produces_patch(self, repo_with_history):
        repo, commits = repo_with_history
        patch = repo.show(commits[1])
        assert patch.paths() == ["a.c"]
        added = patch.files[0].hunks[0].added_lines()
        assert [line.text for line in added] == ["int a2;"]

    def test_show_by_id_string(self, repo_with_history):
        repo, commits = repo_with_history
        patch = repo.show(commits[1].id)
        assert patch.paths() == ["a.c"]

    def test_show_root_commit_has_no_modifications(self, repo_with_history):
        repo, commits = repo_with_history
        assert repo.show(commits[0]).files == []


class TestWorktree:
    def test_checkout_reads_tree(self, repo_with_history):
        repo, commits = repo_with_history
        tree = repo.checkout(commits[1])
        assert tree.read("a.c") == "int a2;\n"

    def test_overlay_write_and_reset(self, repo_with_history):
        repo, commits = repo_with_history
        worktree = repo.checkout(commits[1])
        worktree.write("a.c", "MUTATED\n")
        assert worktree.read("a.c") == "MUTATED\n"
        worktree.reset_hard()
        assert worktree.read("a.c") == "int a2;\n"

    def test_untracked_survives_reset_only_if_not_cleaned(self,
                                                          repo_with_history):
        repo, commits = repo_with_history
        worktree = repo.checkout(commits[1])
        worktree.write_untracked("a.i", "preprocessed")
        assert worktree.read("a.i") == "preprocessed"
        worktree.clean()
        assert not worktree.exists("a.i")

    def test_overlay_untracked_rejected(self, repo_with_history):
        repo, commits = repo_with_history
        worktree = repo.checkout(commits[1])
        with pytest.raises(VcsError):
            worktree.write("nonexistent.c", "x")

    def test_missing_read_raises(self, repo_with_history):
        repo, commits = repo_with_history
        worktree = repo.checkout(commits[1])
        with pytest.raises(VcsError):
            worktree.read("missing.c")

    def test_apply_patch_mutates_overlay(self, repo_with_history):
        repo, commits = repo_with_history
        worktree = repo.checkout(commits[0])
        file_diff = diff_texts("a.c", "int a;\n", "int a; /* note */\n")
        worktree.apply_patch(Patch(files=[file_diff]))
        assert worktree.read("a.c") == "int a; /* note */\n"

    def test_file_provider_view(self, repo_with_history):
        repo, commits = repo_with_history
        worktree = repo.checkout(commits[0])
        provider = worktree.as_file_provider()
        assert provider("a.c") == "int a;\n"
        assert provider("missing.h") is None

    def test_paths_union(self, repo_with_history):
        repo, commits = repo_with_history
        worktree = repo.checkout(commits[0])
        worktree.write_untracked("gen.i", "")
        assert "gen.i" in worktree.paths()
        assert "a.c" in worktree.paths()
