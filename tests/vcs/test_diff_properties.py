"""Property-based tests: unified diffs round-trip losslessly.

For arbitrary (old, new) text pairs, ``diff_texts`` → ``render`` →
``parse_patch`` → ``apply_file_diff`` must reproduce ``new`` exactly —
the pipeline trusts this chain for every commit it checks (§V-A's
``git show`` / changed-line extraction).
"""

import string

from hypothesis import given, settings, strategies as st

from repro.vcs.diff import Patch, apply_file_diff, diff_texts, parse_patch

# Source-shaped lines plus arbitrary printable junk (no newlines).
LINE_POOL = [
    "int a;",
    "int b = 3;",
    "\tfoo(a, b);",
    "#define M1 7",
    "/* a comment line */",
    "#ifdef CONFIG_X",
    "#endif",
    "",
    "\treturn a;",
]

line_strategy = st.one_of(
    st.sampled_from(LINE_POOL),
    st.text(alphabet=string.ascii_letters + string.digits + " \t+-@#/*",
            max_size=20))


def text_of(lines):
    return "".join(line + "\n" for line in lines)


texts = st.lists(line_strategy, max_size=25).map(text_of)


class TestDiffRoundTrip:
    @given(texts, texts)
    @settings(max_examples=120)
    def test_render_parse_apply_recovers_new(self, old, new):
        file_diff = diff_texts("f.c", old, new)
        if file_diff is None:
            assert old == new
            return
        parsed = parse_patch(file_diff.render())
        assert parsed.paths() == ["f.c"]
        assert apply_file_diff(old, parsed.file("f.c")) == new

    @given(texts, texts)
    @settings(max_examples=80)
    def test_changed_linenos_survive_the_round_trip(self, old, new):
        file_diff = diff_texts("f.c", old, new)
        if file_diff is None:
            return
        parsed = parse_patch(file_diff.render())
        assert parsed.file("f.c").changed_new_linenos() == \
            file_diff.changed_new_linenos()

    @given(texts, texts)
    @settings(max_examples=80)
    def test_stats_survive_the_round_trip(self, old, new):
        file_diff = diff_texts("f.c", old, new)
        if file_diff is None:
            return
        parsed = parse_patch(file_diff.render())
        assert parsed.stats() == Patch(files=[file_diff]).stats()

    @given(texts, texts, st.integers(min_value=0, max_value=5))
    @settings(max_examples=80)
    def test_any_context_width_applies(self, old, new, context):
        file_diff = diff_texts("f.c", old, new, context=context)
        if file_diff is None:
            assert old == new
            return
        parsed = parse_patch(file_diff.render())
        assert apply_file_diff(old, parsed.file("f.c")) == new

    @given(texts)
    @settings(max_examples=60)
    def test_identical_texts_yield_no_diff(self, text):
        assert diff_texts("f.c", text, text) is None

    @given(texts)
    @settings(max_examples=60)
    def test_whitespace_only_changes_ignored_with_w(self, text):
        """The ``git log -w`` behaviour the paper's protocol relies on."""
        padded = "".join(
            line.replace(" ", "  ") + " \t\n"
            for line in text.splitlines())
        assert diff_texts("f.c", text, padded,
                          ignore_whitespace=True) is None

    @given(texts, texts)
    @settings(max_examples=60)
    def test_changed_linenos_point_at_added_lines(self, old, new):
        file_diff = diff_texts("f.c", old, new)
        if file_diff is None:
            return
        new_lines = new.splitlines()
        for lineno in file_diff.changed_new_linenos():
            assert 1 <= lineno <= len(new_lines)
        added = {line.text
                 for hunk in file_diff.hunks
                 for line in hunk.added_lines()}
        for lineno in file_diff.changed_new_linenos():
            assert new_lines[lineno - 1] in added
