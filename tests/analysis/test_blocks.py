"""Tests for conditional-block extraction and presence conditions."""

from repro.analysis.blocks import BlockCondition, extract_blocks
from repro.kconfig.ast import Tristate

SAMPLE = """\
int always;
#ifdef CONFIG_PCI
int pci_code;
#ifdef CONFIG_NET
int pci_net_code;
#endif
#else
int no_pci_code;
#endif
#ifndef CONFIG_EMBEDDED
int rich_code;
#endif
#if 0
int dead_code;
#endif
#ifdef MODULE
int module_code;
#endif
#if defined(CONFIG_A) && defined(CONFIG_B)
int ab_code;
#elif defined(CONFIG_C)
int c_code;
#else
int neither_code;
#endif
"""


def blocks_by_start(text=SAMPLE):
    return {block.start: block
            for block in extract_blocks("f.c", text)}


def presence_holds(block, **values):
    assignment = {name: Tristate.Y for name, on in values.items() if on}
    return block.presence.evaluate(assignment) != Tristate.N


class TestExtraction:
    def test_block_count(self):
        assert len(extract_blocks("f.c", SAMPLE)) == 9

    def test_body_lines_innermost(self):
        by_start = blocks_by_start()
        outer = by_start[2]     # ifdef CONFIG_PCI
        inner = by_start[4]     # ifdef CONFIG_NET
        assert 3 in outer.body_lines
        assert 5 in inner.body_lines
        assert 5 not in outer.body_lines  # innermost attribution

    def test_else_block(self):
        by_start = blocks_by_start()
        else_block = by_start[7]
        assert else_block.directive == "else"
        assert 8 in else_block.body_lines

    def test_environment_kind_for_module(self):
        by_start = blocks_by_start()
        module_block = by_start[16]
        assert module_block.condition_kind is BlockCondition.ENVIRONMENT
        assert module_block.presence is None
        assert module_block.atoms == ["MODULE"]

    def test_constant_kind_for_if_zero(self):
        by_start = blocks_by_start()
        dead = by_start[13]
        assert dead.condition_kind is BlockCondition.CONSTANT
        assert dead.presence.evaluate({}) == Tristate.N


class TestPresenceConditions:
    def test_simple_ifdef(self):
        block = blocks_by_start()[2]
        assert presence_holds(block, CONFIG_PCI=True) or \
            block.presence.evaluate({"PCI": Tristate.Y}) == Tristate.Y
        assert block.presence.evaluate({}) == Tristate.N

    def test_nested_requires_both(self):
        inner = blocks_by_start()[4]
        assert inner.presence.evaluate(
            {"PCI": Tristate.Y, "NET": Tristate.Y}) == Tristate.Y
        assert inner.presence.evaluate({"PCI": Tristate.Y}) == Tristate.N

    def test_else_negates(self):
        else_block = blocks_by_start()[7]
        assert else_block.presence.evaluate({}) == Tristate.Y
        assert else_block.presence.evaluate(
            {"PCI": Tristate.Y}) == Tristate.N

    def test_ifndef(self):
        block = blocks_by_start()[10]
        assert block.presence.evaluate({}) == Tristate.Y
        assert block.presence.evaluate(
            {"EMBEDDED": Tristate.Y}) == Tristate.N

    def test_defined_conjunction(self):
        block = blocks_by_start()[19]
        assert block.presence.evaluate(
            {"A": Tristate.Y, "B": Tristate.Y}) == Tristate.Y
        assert block.presence.evaluate({"A": Tristate.Y}) == Tristate.N

    def test_elif_excludes_prior_branch(self):
        block = blocks_by_start()[21]
        assert block.presence.evaluate({"C": Tristate.Y}) == Tristate.Y
        assert block.presence.evaluate(
            {"A": Tristate.Y, "B": Tristate.Y,
             "C": Tristate.Y}) == Tristate.N

    def test_final_else_of_chain(self):
        block = blocks_by_start()[23]
        assert block.presence.evaluate({}) == Tristate.Y
        assert block.presence.evaluate({"C": Tristate.Y}) == Tristate.N


class TestEdgeCases:
    def test_unbalanced_tolerated(self):
        blocks = extract_blocks("f.c", "#ifdef CONFIG_A\nint x;\n")
        assert len(blocks) == 1

    def test_stray_else_ignored(self):
        blocks = extract_blocks("f.c", "#else\nint x;\n#endif\n")
        assert blocks == []

    def test_opaque_if_expression(self):
        blocks = extract_blocks(
            "f.c", "#if CONFIG_HZ > 100\nint fast;\n#endif\n")
        assert blocks[0].condition_kind is BlockCondition.OPAQUE
        assert blocks[0].atoms == ["HZ"]
