"""Tests for Undertaker-style dead/undead block detection."""

import pytest

from repro.analysis.deadblocks import BlockVerdict, DeadBlockAnalyzer
from repro.kconfig.model import ConfigModel

KCONFIG = """\
config PCI
	bool "PCI"
config NET
	bool "Networking"
config RARE
	bool
	depends on PCI && !PCI
choice
config CPU_LE
	bool "le"
config CPU_BE
	bool "be"
endchoice
"""


@pytest.fixture
def analyzer():
    return DeadBlockAnalyzer(ConfigModel.from_kconfig(KCONFIG))


def verdicts(analyzer, source):
    return [(a.block.start, a.verdict, a.reason)
            for a in analyzer.analyze_file("f.c", source)]


class TestDeadDetection:
    def test_if_zero_dead(self, analyzer):
        results = verdicts(analyzer, "#if 0\nint x;\n#endif\n")
        assert results[0][1] is BlockVerdict.DEAD
        assert "#if 0" in results[0][2]

    def test_undefined_symbol_dead(self, analyzer):
        results = verdicts(analyzer,
                           "#ifdef CONFIG_GHOST\nint x;\n#endif\n")
        assert results[0][1] is BlockVerdict.DEAD
        assert "never defined" in results[0][2]

    def test_contradiction_dead(self, analyzer):
        source = ("#ifdef CONFIG_PCI\n"
                  "#ifndef CONFIG_PCI\nint x;\n#endif\n#endif\n")
        results = verdicts(analyzer, source)
        inner = [r for r in results if r[0] == 2][0]
        assert inner[1] is BlockVerdict.DEAD
        assert "contradiction" in inner[2]

    def test_unsatisfiable_dependency_dead(self, analyzer):
        results = verdicts(analyzer,
                           "#ifdef CONFIG_RARE\nint x;\n#endif\n")
        assert results[0][1] is BlockVerdict.DEAD
        assert "unsatisfiable" in results[0][2]


class TestUndeadDetection:
    def test_if_one_undead(self, analyzer):
        results = verdicts(analyzer, "#if 1\nint x;\n#endif\n")
        assert results[0][1] is BlockVerdict.UNDEAD

    def test_ifndef_ghost_undead(self, analyzer):
        results = verdicts(analyzer,
                           "#ifndef CONFIG_GHOST\nint x;\n#endif\n")
        assert results[0][1] is BlockVerdict.UNDEAD


class TestConfigurable:
    def test_plain_symbol(self, analyzer):
        results = verdicts(analyzer,
                           "#ifdef CONFIG_PCI\nint x;\n#endif\n")
        assert results[0][1] is BlockVerdict.CONFIGURABLE

    def test_choice_member(self, analyzer):
        results = verdicts(analyzer,
                           "#ifdef CONFIG_CPU_BE\nint x;\n#endif\n")
        assert results[0][1] is BlockVerdict.CONFIGURABLE

    def test_nested_conjunction(self, analyzer):
        source = ("#ifdef CONFIG_PCI\n#ifdef CONFIG_NET\n"
                  "int x;\n#endif\n#endif\n")
        results = verdicts(analyzer, source)
        assert all(v is BlockVerdict.CONFIGURABLE for _, v, _ in results)


class TestEnvironment:
    def test_module_block(self, analyzer):
        results = verdicts(analyzer, "#ifdef MODULE\nint x;\n#endif\n")
        assert results[0][1] is BlockVerdict.ENVIRONMENT
        assert "MODULE" in results[0][2]

    def test_nested_under_module(self, analyzer):
        source = ("#ifdef MODULE\n#ifdef CONFIG_PCI\n"
                  "int x;\n#endif\n#endif\n")
        results = verdicts(analyzer, source)
        inner = [r for r in results if r[0] == 2][0]
        assert inner[1] is BlockVerdict.ENVIRONMENT


class TestArchDependent:
    def test_multi_model_rescues_arch_symbols(self):
        """A block on an arch-only symbol is ARCH_DEPENDENT, not DEAD,
        when the analyzer knows the other architectures' models."""
        from repro.kbuild.build import BuildSystem
        from repro.kernel.generator import generate_tree
        tree = generate_tree()
        build = BuildSystem(tree.provider(),
                            path_lister=lambda: sorted(tree.files))
        source = "#ifdef CONFIG_ARM_SPECIAL_BUS\nint bus;\n#endif\n"

        solo = DeadBlockAnalyzer(build.config_model("x86_64"))
        assert solo.analyze_file("f.c", source)[0].verdict is \
            BlockVerdict.DEAD

        multi = DeadBlockAnalyzer(
            build.config_model("x86_64"),
            extra_models={"arm": build.config_model("arm")})
        analyzed = multi.analyze_file("f.c", source)[0]
        assert analyzed.verdict is BlockVerdict.ARCH_DEPENDENT
        assert "arm" in analyzed.reason


class TestOnGeneratedTree:
    def test_tree_hazards_classified(self):
        """The generated tree's hazard blocks get the right verdicts."""
        from repro.kbuild.build import BuildSystem
        from repro.kernel.generator import generate_tree
        from repro.kernel.layout import HazardKind
        tree = generate_tree()
        build = BuildSystem(tree.provider(),
                            path_lister=lambda: sorted(tree.files))
        analyzer = DeadBlockAnalyzer(build.config_model("x86_64"))

        never_set = next(p for p, info in sorted(tree.info.items())
                         if HazardKind.NEVER_SET in info.hazards
                         and info.kind == "driver_c")
        analyzed = analyzer.analyze_file(never_set,
                                         tree.files[never_set])
        dead = [a for a in analyzed if a.verdict is BlockVerdict.DEAD]
        assert dead, "never-set hazard block must be dead"

        choice_file = next(p for p, info in sorted(tree.info.items())
                           if HazardKind.CHOICE_UNSET in info.hazards
                           and info.kind == "driver_c")
        analyzed = analyzer.analyze_file(choice_file,
                                         tree.files[choice_file])
        configurable = [a for a in analyzed
                        if a.verdict is BlockVerdict.CONFIGURABLE]
        assert configurable, \
            "choice-member block must be configurable, not dead"
