"""Tests for covering-configuration generation and the JMake extension."""

import pytest

from repro.analysis.covergen import covering_configs
from repro.core.jmake import JMake, JMakeOptions
from repro.core.report import FileStatus
from repro.kconfig.ast import Tristate
from repro.kconfig.model import ConfigModel
from repro.kconfig.solver import targeted_config
from repro.kernel.generator import generate_tree
from repro.kernel.layout import HazardKind
from repro.vcs.diff import Patch, diff_texts

KCONFIG = """\
config PCI
	bool "PCI"
config NET
	bool "Networking"
config EXTRA
	bool
	default y
choice
config CPU_LE
	bool "le"
config CPU_BE
	bool "be"
endchoice
config DRIVER
	tristate "drv"
	depends on PCI
"""


@pytest.fixture
def model():
    return ConfigModel.from_kconfig(KCONFIG)


class TestTargetedConfig:
    def test_simple_on(self, model):
        config = targeted_config(model, {"PCI"}, set())
        assert config.tristate("PCI") == Tristate.Y

    def test_dependency_pulled_in(self, model):
        config = targeted_config(model, {"DRIVER"}, set())
        assert config.tristate("DRIVER") == Tristate.Y
        assert config.tristate("PCI") == Tristate.Y

    def test_off_request_respected(self, model):
        config = targeted_config(model, {"NET"}, {"EXTRA"})
        assert config.tristate("NET") == Tristate.Y
        assert config.tristate("EXTRA") == Tristate.N

    def test_conflicting_request_unsat(self, model):
        assert targeted_config(model, {"DRIVER"}, {"PCI"}) is None

    def test_undefined_symbol_unsat(self, model):
        assert targeted_config(model, {"GHOST"}, set()) is None

    def test_choice_member_enabled_exclusively(self, model):
        config = targeted_config(model, {"CPU_BE"}, set())
        assert config.tristate("CPU_BE") == Tristate.Y
        assert config.tristate("CPU_LE") == Tristate.N

    def test_both_choice_members_unsat(self, model):
        assert targeted_config(model, {"CPU_LE", "CPU_BE"}, set()) is None

    def test_select_conflict_unsat(self):
        model = ConfigModel.from_kconfig(
            "config A\n\tbool\n\tselect B\nconfig B\n\tbool\n")
        assert targeted_config(model, {"A"}, {"B"}) is None


class TestCoveringConfigs:
    SOURCE = ("#ifdef CONFIG_CPU_BE\nint be;\n#endif\n"
              "#ifndef CONFIG_EXTRA\nint lean;\n#endif\n"
              "#ifdef CONFIG_GHOST\nint ghost;\n#endif\n"
              "#ifdef CONFIG_PCI\nint pci;\n#endif\n")

    def test_plan_reaches_reachable_blocks(self, model):
        plan = covering_configs(model, "f.c", self.SOURCE)
        # the PCI block is covered by allyesconfig (-1); CPU_BE and the
        # #ifndef EXTRA block each need a generated configuration
        assert plan.block_assignments[10] == -1            # CONFIG_PCI
        assert plan.block_assignments[1] >= 0              # CPU_BE
        assert plan.block_assignments[4] >= 0              # !EXTRA
        assert 7 in plan.unreachable                       # GHOST: dead

    def test_generated_configs_actually_include_blocks(self, model):
        from repro.analysis.blocks import extract_blocks
        plan = covering_configs(model, "f.c", self.SOURCE)
        blocks = {block.start: block
                  for block in extract_blocks("f.c", self.SOURCE)}
        for start, index in plan.block_assignments.items():
            if index < 0:
                continue
            config = plan.configs[index]
            presence = blocks[start].presence
            assert presence.evaluate(config.values) != Tristate.N

    def test_configs_shared_when_compatible(self, model):
        source = ("#ifdef CONFIG_CPU_BE\nint a;\n#endif\n"
                  "#ifdef CONFIG_CPU_BE\nint b;\n#endif\n")
        plan = covering_configs(model, "f.c", source)
        assert len(plan.configs) == 1

    def test_max_configs_cap(self, model):
        plan = covering_configs(model, "f.c", self.SOURCE, max_configs=0)
        assert plan.configs == []


class TestJMakeExtension:
    """E-A5: the §VII configuration-generation extension end to end."""

    @pytest.fixture(scope="class")
    def tree(self):
        return generate_tree()

    def run_check(self, tree, path, old, new, **options):
        original = tree.files[path]
        edited = original.replace(old, new)
        assert edited != original
        files = dict(tree.files)
        files[path] = edited
        worktree = JMake.worktree_for_files(files)
        patch = Patch(files=[diff_texts(path, original, edited)])
        jmake = JMake.from_generated_tree(
            tree, options=JMakeOptions(**options))
        return jmake.check_patch(worktree, patch)

    def first_with(self, tree, kind):
        return next(path for path, info in sorted(tree.info.items())
                    if kind in info.hazards and info.kind == "driver_c")

    def test_choice_unset_rescued(self, tree):
        path = self.first_with(tree, HazardKind.CHOICE_UNSET)
        baseline = self.run_check(tree, path, "\treturn dev->id + 2;",
                                  "\treturn dev->id + 3;")
        assert baseline.file_reports[path].status is \
            FileStatus.LINES_NOT_COMPILED
        extended = self.run_check(tree, path, "\treturn dev->id + 2;",
                                  "\treturn dev->id + 3;",
                                  use_targeted_configs=True)
        assert extended.file_reports[path].status is FileStatus.OK

    def test_ifndef_rescued(self, tree):
        path = self.first_with(tree, HazardKind.IFNDEF)
        extended = self.run_check(tree, path, "_fallback(void)",
                                  "_fallback_v2(void)",
                                  use_targeted_configs=True)
        assert extended.file_reports[path].status is FileStatus.OK

    def test_never_set_still_fails(self, tree):
        """No configuration can rescue a dead block: the extension must
        not fabricate one."""
        path = self.first_with(tree, HazardKind.NEVER_SET)
        extended = self.run_check(tree, path, "\treturn dev->id - 1;",
                                  "\treturn dev->id - 9;",
                                  use_targeted_configs=True)
        assert extended.file_reports[path].status is \
            FileStatus.LINES_NOT_COMPILED

    def test_if_zero_still_fails(self, tree):
        path = self.first_with(tree, HazardKind.IF_ZERO)
        extended = self.run_check(tree, path, "\treturn 1;",
                                  "\treturn 2;",
                                  use_targeted_configs=True)
        assert extended.file_reports[path].status is \
            FileStatus.LINES_NOT_COMPILED
