"""Tests for the jmake command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_exits_zero_and_reports(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out
        assert "useful architectures" in out


class TestJanitors:
    def test_janitors_prints_tables(self, capsys):
        assert main(["janitors", "--commits", "300",
                     "--seed", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "file cv" in out
        assert "ground-truth janitors recovered" in out


class TestEvaluate:
    def test_evaluate_prints_all_artifacts(self, capsys):
        assert main(["evaluate", "--commits", "60", "--limit", "25",
                     "--seed", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Table IV" in out
        for marker in ("Fig 4a", "Fig 4b", "Fig 4c", "Fig 5", "Fig 6",
                       "Architecture choice", "Mutation counts",
                       "Summary", "Bootstrap-file limitation"):
            assert marker in out, marker

    def test_evaluate_no_configs_flag(self, capsys):
        assert main(["evaluate", "--commits", "40", "--limit", "10",
                     "--seed", "cli-test", "--no-configs"]) == 0
        assert "Summary" in capsys.readouterr().out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
