"""Tests for the jmake command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_exits_zero_and_reports(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out
        assert "useful architectures" in out


class TestJanitors:
    def test_janitors_prints_tables(self, capsys):
        assert main(["janitors", "--commits", "300",
                     "--seed", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "file cv" in out
        assert "ground-truth janitors recovered" in out


class TestEvaluate:
    def test_evaluate_prints_all_artifacts(self, capsys):
        assert main(["evaluate", "--commits", "60", "--limit", "25",
                     "--seed", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Table IV" in out
        for marker in ("Fig 4a", "Fig 4b", "Fig 4c", "Fig 5", "Fig 6",
                       "Architecture choice", "Mutation counts",
                       "Summary", "Bootstrap-file limitation"):
            assert marker in out, marker

    def test_evaluate_no_configs_flag(self, capsys):
        assert main(["evaluate", "--commits", "40", "--limit", "10",
                     "--seed", "cli-test", "--no-configs"]) == 0
        assert "Summary" in capsys.readouterr().out

    def test_evaluate_cache_stats_flag(self, capsys):
        assert main(["evaluate", "--commits", "40", "--limit", "10",
                     "--seed", "cli-test", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "Build cache statistics" in out
        assert "preprocess" in out

    def test_evaluate_no_cache_flag_suppresses_stats(self, capsys):
        assert main(["evaluate", "--commits", "40", "--limit", "10",
                     "--seed", "cli-test", "--no-cache",
                     "--cache-stats"]) == 0
        assert "Build cache statistics" not in capsys.readouterr().out

    def test_evaluate_cache_file_roundtrip(self, capsys, tmp_path):
        cache_file = str(tmp_path / "jmake.cache")
        argv = ["evaluate", "--commits", "40", "--limit", "10",
                "--seed", "cli-test", "--cache-file", cache_file,
                "--cache-stats"]
        assert main(argv) == 0
        assert "build cache written to" in capsys.readouterr().out
        assert main(argv) == 0  # warm second run loads the pickle
        assert "100.0%" in capsys.readouterr().out

    def test_evaluate_rejects_bad_jobs(self, capsys):
        assert main(["evaluate", "--commits", "40", "--limit", "5",
                     "--seed", "cli-test", "--jobs", "0"]) == 2
        err = capsys.readouterr().err
        assert "--jobs must be a positive integer" in err


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
