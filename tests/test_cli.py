"""Tests for the jmake command-line interface."""

import json
import logging

import pytest

from repro.cli import main
from repro.obs.logcfg import ROOT_LOGGER


class TestDemo:
    def test_demo_exits_zero_and_reports(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out
        assert "useful architectures" in out


class TestJanitors:
    def test_janitors_prints_tables(self, capsys):
        assert main(["janitors", "--commits", "300",
                     "--seed", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "file cv" in out
        assert "ground-truth janitors recovered" in out


class TestEvaluate:
    def test_evaluate_prints_all_artifacts(self, capsys):
        assert main(["evaluate", "--commits", "60", "--limit", "25",
                     "--seed", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Table IV" in out
        for marker in ("Fig 4a", "Fig 4b", "Fig 4c", "Fig 5", "Fig 6",
                       "Architecture choice", "Mutation counts",
                       "Summary", "Bootstrap-file limitation"):
            assert marker in out, marker

    def test_evaluate_no_configs_flag(self, capsys):
        assert main(["evaluate", "--commits", "40", "--limit", "10",
                     "--seed", "cli-test", "--no-configs"]) == 0
        assert "Summary" in capsys.readouterr().out

    def test_evaluate_cache_stats_flag(self, capsys):
        assert main(["evaluate", "--commits", "40", "--limit", "10",
                     "--seed", "cli-test", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "Build cache statistics" in out
        assert "preprocess" in out

    def test_evaluate_no_cache_flag_suppresses_stats(self, capsys):
        assert main(["evaluate", "--commits", "40", "--limit", "10",
                     "--seed", "cli-test", "--no-cache",
                     "--cache-stats"]) == 0
        assert "Build cache statistics" not in capsys.readouterr().out

    def test_evaluate_cache_file_roundtrip(self, capsys, tmp_path):
        cache_file = str(tmp_path / "jmake.cache")
        argv = ["evaluate", "--commits", "40", "--limit", "10",
                "--seed", "cli-test", "--cache-file", cache_file,
                "--cache-stats"]
        assert main(argv) == 0
        assert "build cache written to" in capsys.readouterr().out
        assert main(argv) == 0  # warm second run loads the pickle
        assert "100.0%" in capsys.readouterr().out

    def test_evaluate_rejects_bad_jobs(self, capsys):
        assert main(["evaluate", "--commits", "40", "--limit", "5",
                     "--seed", "cli-test", "--jobs", "0"]) == 2
        err = capsys.readouterr().err
        assert "--jobs must be a positive integer" in err

    def test_evaluate_writes_trace_and_metrics(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(["evaluate", "--commits", "40", "--limit", "5",
                     "--seed", "cli-test",
                     "--trace-out", str(trace_path),
                     "--metrics-out", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "metrics written to" in out
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        roots = [event for event in trace["traceEvents"]
                 if event.get("name") == "jmake.check_commit"]
        assert len(roots) == 5  # one span tree per checked commit
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["patches.checked"] == 5
        assert any(name.startswith("cache.")
                   for name in metrics["counters"])

    def test_evaluate_output_identical_with_observability(self, capsys,
                                                          tmp_path):
        argv = ["evaluate", "--commits", "40", "--limit", "5",
                "--seed", "cli-test"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace-out",
                            str(tmp_path / "t.json")]) == 0
        observed = [line for line in capsys.readouterr().out.splitlines()
                    if not line.startswith("trace written")]
        assert observed == plain.splitlines()


class TestJournal:
    ARGV = ["evaluate", "--commits", "40", "--limit", "8",
            "--seed", "cli-test"]

    def test_journaled_run_prints_durability_stats(self, capsys,
                                                   tmp_path):
        journal = str(tmp_path / "run.jnl")
        assert main(self.ARGV + ["--journal", journal]) == 0
        out = capsys.readouterr().out
        assert f"journal {journal}: 8 verdict(s) durable" in out
        assert "(0 resumed, 8 fresh" in out

    def test_chaos_kill_then_resume(self, capsys, tmp_path):
        journal = str(tmp_path / "run.jnl")
        assert main(self.ARGV + ["--journal", journal,
                                 "--chaos-kill-after", "3"]) == 3
        err = capsys.readouterr().err
        assert "simulated" in err.lower()
        assert f"resume with: jmake evaluate --journal {journal} " \
               f"--resume" in err
        assert main(self.ARGV + ["--journal", journal,
                                 "--resume"]) == 0
        out = capsys.readouterr().out
        assert "(3 resumed, 5 fresh" in out
        assert "Summary" in out

    def test_resumed_output_matches_the_uninterrupted_run(self, capsys,
                                                          tmp_path):
        assert main(self.ARGV) == 0
        plain = capsys.readouterr().out
        journal = str(tmp_path / "run.jnl")
        assert main(self.ARGV + ["--journal", journal,
                                 "--chaos-kill-after", "4"]) == 3
        capsys.readouterr()
        assert main(self.ARGV + ["--journal", journal,
                                 "--resume"]) == 0
        resumed = [line for line in capsys.readouterr().out.splitlines()
                   if not line.startswith("journal ")]
        assert resumed == plain.splitlines()

    def test_resume_requires_journal(self, capsys):
        assert main(self.ARGV + ["--resume"]) == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_chaos_kill_requires_journal(self, capsys):
        assert main(self.ARGV + ["--chaos-kill-after", "2"]) == 2
        err = capsys.readouterr().err
        assert "--chaos-kill-after requires --journal" in err

    def test_chaos_kill_rejects_nonpositive_offset(self, capsys,
                                                   tmp_path):
        assert main(self.ARGV + ["--journal",
                                 str(tmp_path / "run.jnl"),
                                 "--chaos-kill-after", "0"]) == 2

    def test_resume_refuses_another_runs_journal(self, capsys,
                                                 tmp_path):
        # a clean error, not a traceback: the journal names the run
        # it belongs to
        journal = str(tmp_path / "run.jnl")
        assert main(self.ARGV + ["--journal", journal,
                                 "--chaos-kill-after", "2"]) == 3
        capsys.readouterr()
        other = ["evaluate", "--commits", "40", "--limit", "8",
                 "--seed", "cli-other", "--journal", journal,
                 "--resume"]
        assert main(other) == 2
        assert "different run" in capsys.readouterr().err


class TestTrace:
    def _some_commit(self):
        from repro.workload.corpus import CorpusSpec, build_corpus
        corpus = build_corpus(CorpusSpec(seed="cli-test",
                                         history_commits=200,
                                         eval_commits=40))
        return corpus.eval_window_commits()[0].id

    def test_trace_renders_span_tree(self, capsys, tmp_path):
        commit = self._some_commit()
        out_path = tmp_path / "one.json"
        assert main(["trace", commit, "--commits", "40",
                     "--seed", "cli-test", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "jmake.check_commit" in out
        assert "spans:" in out
        assert "verdict:" in out
        trace = json.loads(out_path.read_text())
        assert trace["traceEvents"]

    def test_trace_accepts_unique_prefix(self, capsys):
        commit = self._some_commit()
        assert main(["trace", commit[:10], "--commits", "40",
                     "--seed", "cli-test"]) == 0
        assert "jmake.check_commit" in capsys.readouterr().out

    def test_trace_unknown_commit_exits_two(self, capsys):
        assert main(["trace", "doesnotexist", "--commits", "40",
                     "--seed", "cli-test"]) == 2
        err = capsys.readouterr().err
        assert "jmake trace:" in err
        assert "hint:" in err


class TestStats:
    """``jmake stats`` reads sink files produced by ``jmake serve``."""

    def _registry(self):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        registry.counter("service.requests.completed").inc(4)
        registry.gauge("service.queue_depth").set(1)
        histogram = registry.histogram("service.request.wall_seconds",
                                       (0.1, 1.0))
        for value in (0.05, 0.5, 0.6):
            histogram.observe(value)
        return registry

    def test_reads_latest_snapshot_from_a_jsonl_sink(self, capsys,
                                                     tmp_path):
        from repro.obs.sinks import JsonlSink
        from repro.obs.timeseries import Snapshotter
        path = tmp_path / "metrics.jsonl"
        sink = JsonlSink(str(path))
        snapshotter = Snapshotter(self._registry(), clock=lambda: 2.0,
                                  sinks=[sink])
        snapshotter.sample()
        snapshotter.sample()
        sink.close()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 snapshot(s), latest seq=2" in out
        assert "service.requests.completed" in out
        assert "p50=" in out and "p99=" in out

    def test_reads_an_openmetrics_exposition(self, capsys, tmp_path):
        from repro.obs.sinks import OpenMetricsSink
        from repro.obs.timeseries import Snapshotter
        path = tmp_path / "metrics.prom"
        Snapshotter(self._registry(), clock=lambda: 2.0,
                    sinks=[OpenMetricsSink(str(path))]).sample()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "snapshot seq=1" in out
        assert "jmake_service_requests_completed" in out

    def test_summarizes_an_event_sink_by_kind(self, capsys, tmp_path):
        from repro.obs.events import EventLog
        from repro.obs.sinks import JsonlSink
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        log = EventLog(clock=lambda: 0.0, sinks=[sink])
        log.emit("service.started")
        log.emit("shard.crash", shard=0)
        log.emit("shard.crash", shard=1)
        sink.close()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 event(s), latest seq=3" in out
        assert "shard.crash" in out

    def test_missing_file_exits_two(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path / "absent.prom")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_malformed_exposition_exits_two(self, capsys, tmp_path):
        path = tmp_path / "broken.prom"
        path.write_text("jmake_x_total 3\n")   # no TYPE, no EOF
        assert main(["stats", str(path)]) == 2
        assert "jmake stats:" in capsys.readouterr().err


class TestLogLevel:
    def _drop_handler(self):
        root = logging.getLogger(ROOT_LOGGER)
        for handler in [h for h in root.handlers
                        if getattr(h, "_repro_handler", False)]:
            root.removeHandler(handler)
        root.setLevel(logging.NOTSET)

    def test_log_level_wires_repro_hierarchy(self, capsys):
        try:
            assert main(["--log-level", "info", "evaluate",
                         "--commits", "40", "--limit", "3",
                         "--seed", "cli-test"]) == 0
            err = capsys.readouterr().err
            assert "INFO repro.evalsuite.runner: checking" in err
        finally:
            self._drop_handler()

    def test_log_level_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["--log-level", "loud", "demo"])


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestWatch:
    """``jmake watch``: continuous ingest into the verdict store."""

    WATCH = ["watch", "--commits", "30", "--seed", "cli-watch",
             "--batch-size", "3", "--limit", "6", "--no-fsync"]

    def test_window_watch_drains_and_reports(self, capsys, tmp_path):
        out_dir = tmp_path / "fleet"
        assert main(self.WATCH + ["--out-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "watch drained: 6 commit(s) pulled" in out
        assert "6 checked fresh, 0 replayed" in out
        assert "6 verdict(s) durable (0 recovered, 6 fresh)" in out
        assert (out_dir / "verdicts.sqlite").exists()
        assert (out_dir / "run.jnl").exists()

    def test_rerun_replays_the_journal(self, capsys, tmp_path):
        argv = self.WATCH + ["--out-dir", str(tmp_path / "fleet")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 checked fresh, 6 replayed" in out
        # the replayed verdicts are already stored: nothing re-lands
        assert "0 ingested this run, 0 duplicate(s)" in out
        assert "6 verdict(s) durable (6 recovered, 0 fresh)" in out

    def test_chaos_kill_resume_dump_is_byte_identical(self, capsys,
                                                      tmp_path):
        plain_dir = tmp_path / "plain"
        assert main(self.WATCH + ["--out-dir", str(plain_dir)]) == 0
        capsys.readouterr()
        crash_dir = tmp_path / "crash"
        assert main(self.WATCH + ["--out-dir", str(crash_dir),
                                  "--chaos-kill-after", "4"]) == 3
        err = capsys.readouterr().err
        assert "simulated" in err.lower()
        assert f"resume with: jmake watch --out-dir {crash_dir} " \
               f"--resume" in err
        assert main(self.WATCH + ["--out-dir", str(crash_dir),
                                  "--resume"]) == 0
        out = capsys.readouterr().out
        assert "4 replayed" in out
        assert main(["query", str(plain_dir / "verdicts.sqlite"),
                     "--canonical"]) == 0
        plain_dump = capsys.readouterr().out
        assert main(["query", str(crash_dir / "verdicts.sqlite"),
                     "--canonical"]) == 0
        assert capsys.readouterr().out == plain_dump
        assert plain_dump.startswith("verdict-store canonical dump\n")

    def test_watch_requires_store_and_journal_paths(self, capsys):
        assert main(["watch", "--commits", "30",
                     "--seed", "cli-watch"]) == 2
        assert "needs --out-dir" in capsys.readouterr().err

    def test_watch_rejects_bad_shards(self, capsys, tmp_path):
        assert main(self.WATCH + ["--out-dir", str(tmp_path / "f"),
                                  "--shards", "0"]) == 2
        err = capsys.readouterr().err
        assert "--shards must be a positive integer" in err

    def test_watch_rejects_zero_traffic(self, capsys, tmp_path):
        assert main(self.WATCH + ["--out-dir", str(tmp_path / "f"),
                                  "--source", "synthetic",
                                  "--traffic", "0"]) == 2


class TestQuery:
    """``jmake query``: the read surface over a populated store."""

    @pytest.fixture(scope="class")
    def fleet_store(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("fleet")
        assert main(["watch", "--commits", "30", "--seed", "cli-query",
                     "--batch-size", "3", "--limit", "6", "--no-fsync",
                     "--out-dir", str(out_dir)]) == 0
        return str(out_dir / "verdicts.sqlite")

    def test_default_listing(self, capsys, fleet_store):
        assert main(["query", fleet_store]) == 0
        out = capsys.readouterr().out
        assert "6 verdict(s) (6 stored)" in out

    def test_json_mode_emits_canonical_records(self, capsys,
                                               fleet_store):
        assert main(["query", fleet_store, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 6
        assert all(r["schema_version"] == 4 for r in records)
        assert all(r["author"]["email"] for r in records)

    def test_files_flag_adds_per_file_rows(self, capsys, fleet_store):
        assert main(["query", fleet_store, "--files"]) == 0
        out = capsys.readouterr().out
        assert " arch=" in out
        assert " i_ok=" in out

    def test_tristate_filters(self, capsys, fleet_store):
        assert main(["query", fleet_store,
                     "--fully-checked", "yes"]) == 0
        fully = capsys.readouterr().out
        assert main(["query", fleet_store, "--certified", "no"]) == 0
        capsys.readouterr()
        assert "verdict(s)" in fully

    def test_janitor_report(self, capsys, fleet_store):
        assert main(["query", fleet_store, "--janitors",
                     "--min-patches", "1", "--min-files", "1"]) == 0
        out = capsys.readouterr().out
        assert "janitor(s)" in out
        assert "file_cv=" in out

    def test_missing_store_exits_two(self, capsys, tmp_path):
        assert main(["query", str(tmp_path / "absent.sqlite")]) == 2
        assert "no such store" in capsys.readouterr().err

    def test_bad_predicate_exits_two(self, capsys, fleet_store):
        assert main(["query", fleet_store, "--limit", "0"]) == 2
        assert "limit" in capsys.readouterr().err


class TestOutputFlagNotices:
    """The unified --out-dir umbrella: old per-sink flags keep working
    but print a deprecation notice on stderr (never stdout — the
    recovery CI job diffs stdout)."""

    def test_evaluate_journal_flag_notices_on_stderr(self, capsys,
                                                     tmp_path):
        journal = str(tmp_path / "run.jnl")
        assert main(["evaluate", "--commits", "40", "--limit", "4",
                     "--seed", "cli-test", "--journal", journal]) == 0
        captured = capsys.readouterr()
        assert "--journal is deprecated" in captured.err
        assert "prefer --out-dir" in captured.err
        assert "deprecated" not in captured.out

    def test_evaluate_out_dir_places_the_journal(self, capsys,
                                                 tmp_path):
        out_dir = tmp_path / "outs"
        assert main(["evaluate", "--commits", "40", "--limit", "4",
                     "--seed", "cli-test",
                     "--out-dir", str(out_dir)]) == 0
        captured = capsys.readouterr()
        assert "deprecated" not in captured.err
        assert (out_dir / "run.jnl").exists()
        assert f"journal {out_dir / 'run.jnl'}:" in captured.out

    def test_serve_sink_flags_notice_and_still_work(self, capsys,
                                                    tmp_path):
        stats = str(tmp_path / "stats.json")
        assert main(["serve", "--commits", "30", "--limit", "2",
                     "--seed", "cli-test", "--shards", "2",
                     "--stats-out", stats]) == 0
        captured = capsys.readouterr()
        assert "--stats-out is deprecated" in captured.err
        assert f"stats written to {stats}" in captured.out
        assert json.loads((tmp_path / "stats.json").read_text())

    def test_serve_out_dir_fans_out_every_sink(self, capsys, tmp_path):
        out_dir = tmp_path / "serve-outs"
        assert main(["serve", "--commits", "30", "--limit", "2",
                     "--seed", "cli-test", "--shards", "2",
                     "--out-dir", str(out_dir)]) == 0
        captured = capsys.readouterr()
        assert "deprecated" not in captured.err
        for name in ("stats.json", "metrics.jsonl", "events.jsonl"):
            assert (out_dir / name).exists(), name
