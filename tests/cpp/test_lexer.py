"""Tests for comment stripping and tokenization."""

from hypothesis import given, strategies as st

from repro.cpp.lexer import (
    CommentStripper,
    Token,
    TokenKind,
    strip_comments,
    tokenize,
    untokenize,
)


class TestTokenize:
    def test_identifiers_and_punctuation(self):
        tokens = tokenize("foo(bar, 12)")
        kinds = [token.kind for token in tokens if not token.is_ws]
        assert kinds == [TokenKind.IDENT, TokenKind.PUNCT, TokenKind.IDENT,
                         TokenKind.PUNCT, TokenKind.NUMBER, TokenKind.PUNCT]

    def test_multichar_operators_win(self):
        tokens = [t.text for t in tokenize("a<<=b##c")]
        assert "<<=" in tokens
        assert "##" in tokens

    def test_string_literal_is_one_token(self):
        tokens = tokenize('printf("a, b(c)")')
        strings = [t for t in tokens if t.kind is TokenKind.STRING]
        assert [t.text for t in strings] == ['"a, b(c)"']

    def test_string_with_escapes(self):
        tokens = tokenize(r'"a\"b"')
        assert tokens[0].text == r'"a\"b"'
        assert tokens[0].kind is TokenKind.STRING

    def test_char_literal(self):
        tokens = tokenize("'x' '\\n'")
        chars = [t for t in tokens if t.kind is TokenKind.CHAR]
        assert len(chars) == 2

    def test_mutation_char_is_other(self):
        tokens = tokenize('`"define:f.c:10"')
        assert tokens[0].kind is TokenKind.OTHER
        assert tokens[0].text == "`"
        assert tokens[1].kind is TokenKind.STRING

    def test_hex_number(self):
        tokens = tokenize("0xff & 0xf")
        assert tokens[0].text == "0xff"
        assert tokens[0].kind is TokenKind.NUMBER

    @given(st.text(alphabet=st.characters(blacklist_characters="\n\r"),
                   max_size=120))
    def test_untokenize_roundtrip(self, text):
        assert untokenize(tokenize(text)) == text


class TestCommentStripper:
    def test_line_comment(self):
        assert strip_comments("int x; // note\n") == "int x; \n"

    def test_block_comment_same_line(self):
        assert strip_comments("int /* c */ x;") == "int   x;"

    def test_block_comment_multi_line_preserves_lines(self):
        text = "a /* one\ntwo\nthree */ b\n"
        stripped = strip_comments(text)
        assert stripped.count("\n") == text.count("\n")
        assert "two" not in stripped
        assert stripped.startswith("a ")
        assert " b" in stripped

    def test_comment_markers_in_string_ignored(self):
        text = 'char *s = "/* not a comment */";\n'
        assert strip_comments(text) == text

    def test_line_comment_marker_in_string_ignored(self):
        text = 'char *u = "http://example.org";\n'
        assert strip_comments(text) == text

    def test_quote_in_char_literal(self):
        text = "char q = '\"'; // trailing\n"
        assert strip_comments(text) == "char q = '\"'; \n"

    def test_stateful_across_lines(self):
        stripper = CommentStripper()
        assert stripper.strip_line("before/*open") == "before "
        assert stripper.in_block_comment
        assert stripper.strip_line("middle") == ""
        assert stripper.strip_line("end*/after") == "after"
        assert not stripper.in_block_comment

    def test_comment_then_code_then_comment(self):
        assert strip_comments("/*a*/ x /*b*/") == "  x  "

    def test_unterminated_string_does_not_hang(self):
        # Malformed source: lexer must terminate and keep the rest.
        stripped = strip_comments('char *s = "unterminated;\n')
        assert "unterminated" in stripped

    def test_division_not_comment(self):
        assert strip_comments("a = b / c;") == "a = b / c;"

    def test_nested_block_markers_not_nested(self):
        # C comments do not nest: the first */ ends the comment.
        assert strip_comments("/* a /* b */ c */") == "  c */"


class TestTokenProperties:
    def test_ws_flag(self):
        assert Token(TokenKind.WS, "  ").is_ws
        assert not Token(TokenKind.IDENT, "x").is_ws
