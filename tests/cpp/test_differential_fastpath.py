"""S4: byte-identity of the fast and reference preprocessing pipelines.

Preprocesses every translation unit of the full generated kernel tree
across architectures × configurations twice — once with every fast-path
level force-disabled (the original per-visit pipeline) and once with
them enabled — and asserts the results are *identical*: the ``.i``
text byte for byte, the emitted-line sets, the include lists, the
missing-include probe sequences, and any raised diagnostics. A third
warm pass re-runs the fast pipeline against populated caches so the
header-replay hits are themselves covered by the identity check.

This is the guard the ISSUE requires for the whole fast-path rewrite:
any divergence — a stale replay, an unsound expansion screen, a
condition fast path with different semantics — fails loudly here with
the exact file and field that drifted.
"""

import pytest

from repro.cpp import prepared
from repro.errors import ReproError
from repro.kbuild.build import BuildSystem
from repro.kernel.generator import generate_tree

ARCHES = ["x86_64", "powerpc", "arm"]
CONFIGS = ["allyesconfig", "allnoconfig"]


@pytest.fixture(scope="module")
def tree():
    return generate_tree()


@pytest.fixture(scope="module")
def tu_paths(tree):
    return sorted(path for path in tree.files if path.endswith(".c"))


def _compiler_for(tree, arch, config_target):
    build = BuildSystem(tree.provider(),
                        path_lister=lambda: sorted(tree.files))
    config = build.make_config(arch, config_target)
    return build._compiler(arch, config, modular_unit=False)


def _preprocess_all(compiler, tu_paths):
    """Every TU's observable result; errors are results too."""
    results = {}
    for path in tu_paths:
        try:
            r = compiler.preprocess(path)
            results[path] = (r.text, sorted(r.emitted_lines),
                            r.included_files, r.missing_includes)
        except ReproError as error:
            results[path] = ("ERROR", type(error).__name__, str(error))
    return results


def _assert_identical(reference, candidate, label):
    assert set(reference) == set(candidate)
    fields = ("text", "emitted_lines", "included_files",
              "missing_includes")
    for path, expected in reference.items():
        actual = candidate[path]
        if expected[0] == "ERROR" or actual[0] == "ERROR":
            assert actual == expected, f"{label}: {path} diagnostics drift"
            continue
        for field, want, got in zip(fields, expected, actual):
            assert got == want, f"{label}: {path} {field} drift"


@pytest.mark.parametrize("arch", ARCHES)
@pytest.mark.parametrize("config_target", CONFIGS)
def test_fastpath_is_byte_identical(tree, tu_paths, arch, config_target):
    label = f"{arch}/{config_target}"
    with prepared.fastpath_disabled():
        reference = _preprocess_all(
            _compiler_for(tree, arch, config_target), tu_paths)
    prepared.configure(True)  # cold caches
    try:
        compiler = _compiler_for(tree, arch, config_target)
        cold = _preprocess_all(compiler, tu_paths)
        _assert_identical(reference, cold, f"{label} cold")
        warm = _preprocess_all(compiler, tu_paths)
        _assert_identical(reference, warm, f"{label} warm")
        snap = prepared.stats_snapshot()
        assert snap["prepared"]["hits"] > 0
        assert snap["header_replay"]["hits"] > 0
    finally:
        prepared.configure(True)


def test_cross_config_runs_share_one_process_cache(tree, tu_paths):
    """Interleaved configs (the service's real access pattern) stay
    identical: replay variants keyed by read valuations must not leak
    one config's expansion into another's."""
    pairs = [(arch, cfg) for arch in ARCHES[:2] for cfg in CONFIGS]
    with prepared.fastpath_disabled():
        reference = {
            (arch, cfg): _preprocess_all(
                _compiler_for(tree, arch, cfg), tu_paths)
            for arch, cfg in pairs}
    prepared.configure(True)
    try:
        for round_label in ("cold", "warm"):
            for arch, cfg in pairs:
                candidate = _preprocess_all(
                    _compiler_for(tree, arch, cfg), tu_paths)
                _assert_identical(reference[(arch, cfg)], candidate,
                                  f"{arch}/{cfg} {round_label}")
    finally:
        prepared.configure(True)
