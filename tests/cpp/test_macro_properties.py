"""Property-based tests on macro expansion: termination and stability."""

from hypothesis import given, settings, strategies as st

from repro.cpp.macro import Macro, MacroTable

names = st.sampled_from(["A", "B", "C", "D", "E"])
bodies = st.sampled_from(["A", "B", "C + 1", "A B", "(B)", "7", ""])


class TestTermination:
    @given(st.dictionaries(names, bodies, min_size=1, max_size=5),
           st.text(alphabet="ABCDE ()+;", min_size=1, max_size=30))
    @settings(max_examples=100, deadline=2000)
    def test_arbitrary_macro_graphs_terminate(self, defs, text):
        """Any object-macro graph — cyclic or not — must expand in
        finite time thanks to blue-painting."""
        table = MacroTable()
        for name, body in defs.items():
            table.define(Macro(name=name, body=body))
        result = table.expand_text(text)
        assert isinstance(result, str)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=20)
    def test_deep_nesting_resolves(self, depth):
        table = MacroTable()
        for level in range(depth):
            table.define(Macro(name=f"L{level}",
                               body=f"L{level + 1}" if level < depth - 1
                               else "42"))
        assert table.expand_text("L0") == "42"


class TestStability:
    @given(st.text(alphabet="abcxyz0123 ()+*;,", max_size=60))
    @settings(max_examples=80)
    def test_no_macros_means_identity(self, text):
        assert MacroTable().expand_text(text) == text

    @given(st.dictionaries(names, bodies, min_size=1, max_size=5),
           st.text(alphabet="ABCDE ()+;", min_size=1, max_size=30))
    @settings(max_examples=60, deadline=2000)
    def test_expansion_deterministic(self, defs, text):
        def expand():
            table = MacroTable()
            for name, body in defs.items():
                table.define(Macro(name=name, body=body))
            return table.expand_text(text)
        assert expand() == expand()

    @given(st.dictionaries(names, bodies, min_size=1, max_size=4),
           st.text(alphabet="abc,;() ", min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_strings_always_opaque(self, defs, payload):
        table = MacroTable()
        for name, body in defs.items():
            table.define(Macro(name=name, body=body))
        literal = '"' + payload.replace('"', "") + '"'
        assert literal in table.expand_text(f"x = {literal};")
