"""Tests for __FILE__/__LINE__ positional builtins."""

from repro.cpp.preprocessor import Preprocessor


def pp(files, main="f.c", predefined=None):
    return Preprocessor(files.get, predefined=predefined or {}) \
        .preprocess(main)


class TestPositionalBuiltins:
    def test_line(self):
        result = pp({"f.c": "int a;\nint l = __LINE__;\n"})
        assert "int l = 2;" in result.text

    def test_file(self):
        result = pp({"drivers/a.c": 'const char *f = __FILE__;\n'},
                    main="drivers/a.c")
        assert 'const char *f = "drivers/a.c";' in result.text

    def test_line_in_included_file(self):
        files = {
            "main.c": '#include "inc.h"\n',
            "inc.h": "\nint l = __LINE__;\n",
        }
        result = pp(files, main="main.c")
        assert "int l = 2;" in result.text

    def test_not_replaced_inside_strings(self):
        result = pp({"f.c": 'char *s = "__LINE__";\n'})
        assert '"__LINE__"' in result.text

    def test_line_through_macro(self):
        source = ("#define WARN() report(__LINE__)\n"
                  "int a;\n"
                  "int b = WARN();\n")
        result = pp({"f.c": source})
        # __LINE__ resolves at the use line before expansion
        assert "int b = report(3);" in result.text

    def test_spliced_logical_line_uses_first_physical(self):
        result = pp({"f.c": "int l = \\\n__LINE__;\n"})
        assert "int l = 1;" in result.text
