"""Tests for #if expression evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.cpp.evaluator import evaluate_condition
from repro.cpp.macro import Macro, MacroTable
from repro.errors import PreprocessorError


def ev(expr, **defs):
    macros = MacroTable()
    for name, body in defs.items():
        macros.define(Macro(name=name, body=body))
    return evaluate_condition(expr, macros)


class TestLiterals:
    def test_zero_false(self):
        assert not ev("0")

    def test_nonzero_true(self):
        assert ev("1")
        assert ev("42")

    def test_hex(self):
        assert ev("0x10 == 16")

    def test_octal(self):
        assert ev("010 == 8")

    def test_suffixes(self):
        assert ev("1UL == 1")
        assert ev("0x10u == 16")

    def test_char_literal(self):
        assert ev("'A' == 65")
        assert ev("'\\n' == 10")

    def test_empty_raises(self):
        with pytest.raises(PreprocessorError):
            ev("")


class TestIdentifiers:
    def test_undefined_is_zero(self):
        assert not ev("SOME_UNDEFINED_THING")

    def test_defined_macro_value_used(self):
        assert ev("VERSION > 3", VERSION="4")

    def test_defined_operator(self):
        assert ev("defined(CONFIG_PCI)", CONFIG_PCI="1")
        assert not ev("defined(CONFIG_PCI)")

    def test_defined_without_parens(self):
        assert ev("defined CONFIG_PCI", CONFIG_PCI="1")

    def test_defined_not(self):
        assert ev("!defined(MODULE)")

    def test_defined_of_macro_expanding_to_zero(self):
        # defined() cares about definedness, not value.
        assert ev("defined(ZERO)", ZERO="0")


class TestOperators:
    def test_arithmetic(self):
        assert ev("2 + 3 * 4 == 14")
        assert ev("(2 + 3) * 4 == 20")
        assert ev("7 / 2 == 3")
        assert ev("7 % 3 == 1")
        assert ev("-7 / 2 == -3")  # C truncates toward zero
        assert ev("-7 % 2 == -1")

    def test_shifts(self):
        assert ev("1 << 4 == 16")
        assert ev("16 >> 2 == 4")

    def test_bitwise(self):
        assert ev("(0xf0 & 0x0f) == 0")
        assert ev("(0xf0 | 0x0f) == 0xff")
        assert ev("(1 ^ 1) == 0")
        assert ev("(~0 & 0xff) == 0xff")

    def test_comparisons(self):
        assert ev("1 < 2")
        assert ev("2 <= 2")
        assert ev("3 > 2")
        assert ev("3 >= 3")
        assert ev("1 != 2")

    def test_logical(self):
        assert ev("1 && 1")
        assert not ev("1 && 0")
        assert ev("0 || 1")
        assert not ev("0 || 0")
        assert ev("!0")

    def test_ternary(self):
        assert ev("1 ? 5 : 0")
        assert not ev("0 ? 5 : 0")
        assert ev("(0 ? 0 : 3) == 3")

    def test_unary_plus_minus(self):
        assert ev("+1")
        assert ev("-1")
        assert ev("- -1 == 1")

    def test_division_by_zero_raises(self):
        with pytest.raises(PreprocessorError):
            ev("1 / 0")
        with pytest.raises(PreprocessorError):
            ev("1 % 0")


class TestMacroInteraction:
    def test_kernel_version_style(self):
        assert ev("LINUX_VERSION_CODE >= KERNEL_VERSION",
                  LINUX_VERSION_CODE="0x040400", KERNEL_VERSION="0x040300")

    def test_function_macro_in_condition(self):
        macros = MacroTable()
        macros.define(Macro.parse_define("KV(a, b) ((a) * 256 + (b))"))
        assert evaluate_condition("KV(4, 4) > KV(4, 3)", macros)

    def test_config_enabled_pattern(self):
        # Simplified IS_ENABLED: config macros defined as 1.
        assert ev("defined(CONFIG_NET) && CONFIG_NET", CONFIG_NET="1")


class TestParseErrors:
    def test_unbalanced_paren(self):
        with pytest.raises(PreprocessorError):
            ev("(1 + 2")

    def test_trailing_garbage(self):
        with pytest.raises(PreprocessorError):
            ev("1 2")

    def test_missing_ternary_colon(self):
        with pytest.raises(PreprocessorError):
            ev("1 ? 2")


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    def test_addition_matches_python(self, a, b):
        assert ev(f"{a} + {b} == {a + b}")

    @given(st.integers(min_value=-100, max_value=100),
           st.integers(min_value=1, max_value=100))
    def test_truncating_division(self, a, b):
        expected = abs(a) // b
        if a < 0:
            expected = -expected
        assert ev(f"({a}) / {b} == ({expected})")

    @given(st.integers(min_value=-100, max_value=100),
           st.integers(min_value=1, max_value=100))
    def test_mod_identity(self, a, b):
        # (a/b)*b + a%b == a must hold with truncating division.
        assert ev(f"(({a}) / {b}) * {b} + (({a}) % {b}) == ({a})")

    @given(st.booleans(), st.booleans())
    def test_de_morgan(self, p, q):
        pi, qi = int(p), int(q)
        assert ev(f"(!({pi} && {qi})) == ((!{pi}) || (!{qi}))")
