"""Unit tests for the substrate fast path plumbing (repro.cpp.prepared).

The byte-identity guarantees are covered end-to-end by
test_differential_fastpath.py; these tests pin down the mechanics the
differential suite relies on: prepared-file classification, LRU
bounds, read recording, and replay validity.
"""

import pytest

from repro.cpp import prepared
from repro.cpp.macro import Macro, MacroTable
from repro.cpp.preprocessor import Preprocessor


@pytest.fixture(autouse=True)
def _fastpath_on():
    """Every test here runs with the fast path on and cold caches."""
    prepared.configure(True)
    yield
    prepared.configure(True)


# -- prepare_text -----------------------------------------------------------

class TestPrepareText:
    def test_classifies_directives_and_text(self):
        pfile = prepared.prepare_text(
            "#include <a.h>\n"
            "int x;\n"
            "   \n"
            "#define FOO 1\n")
        kinds = [line.directive for line in pfile.lines]
        assert kinds == ["include", None, None, "define"]
        assert pfile.lines[0].rest == "<a.h>"
        assert pfile.lines[3].rest == "FOO 1"
        assert not pfile.lines[1].blank
        assert pfile.lines[2].blank

    def test_splices_continued_lines(self):
        pfile = prepared.prepare_text("#define A \\\n  1\nint y;\n")
        assert pfile.lines[0].directive == "define"
        assert pfile.lines[0].rest == "A   1"
        assert (pfile.lines[0].start, pfile.lines[0].end) == (1, 2)
        assert (pfile.lines[1].start, pfile.lines[1].end) == (3, 3)
        assert pfile.line_count == 3

    def test_strips_block_comments_across_lines(self):
        pfile = prepared.prepare_text(
            "int a; /* open\n"
            "still comment\n"
            "close */ int b;\n")
        assert pfile.lines[0].text == "int a;  "
        assert pfile.lines[1].blank
        assert pfile.lines[2].text == " int b;"

    def test_commented_directive_is_text(self):
        pfile = prepared.prepare_text("/* #include <x.h> */\n")
        assert pfile.lines[0].directive is None
        assert pfile.leaf

    def test_leaf_detection(self):
        assert prepared.prepare_text("#define A 1\nint x;\n").leaf
        assert not prepared.prepare_text("#include <a.h>\n").leaf

    def test_null_directive(self):
        pfile = prepared.prepare_text("#\n# /* c */\n")
        assert [line.directive for line in pfile.lines] == ["", ""]


class TestPreparedFileCache:
    def test_same_content_shares_object(self):
        text = "int shared;\n"
        assert prepared.prepared_file(text) is prepared.prepared_file(text)
        snap = prepared.stats_snapshot()["prepared"]
        assert snap["hits"] >= 1 and snap["stores"] >= 1

    def test_lru_bound_holds(self):
        for i in range(prepared._PREPARED_CACHE_SIZE + 32):
            prepared.prepared_file(f"int v{i};\n")
        assert (prepared.stats_snapshot()["prepared_entries"]
                <= prepared._PREPARED_CACHE_SIZE)
        assert prepared.stats_snapshot()["prepared"]["evictions"] >= 32


# -- read recording ---------------------------------------------------------

class TestReadRecording:
    def test_records_reads_and_delta(self):
        macros = MacroTable({"CONFIG_A": "1"})
        recorder = macros.begin_recording()
        assert macros.is_defined("CONFIG_A")
        assert not macros.is_defined("CONFIG_B")
        macros.define(Macro.parse_define("LOCAL 7"))
        macros.undef("CONFIG_A")
        macros.end_recording()
        assert set(recorder.reads) == {"CONFIG_A", "CONFIG_B"}
        assert recorder.reads["CONFIG_B"] is None
        assert [op for op, _ in recorder.delta] == ["define", "undef"]

    def test_written_names_are_internal(self):
        macros = MacroTable({})
        recorder = macros.begin_recording()
        macros.define(Macro.parse_define("GUARD 1"))
        assert macros.is_defined("GUARD")  # read after own write
        macros.end_recording()
        assert "GUARD" not in recorder.reads

    def test_first_read_wins(self):
        macros = MacroTable({"X": "1"})
        recorder = macros.begin_recording()
        assert macros.is_defined("X")
        macros.undef("X")
        assert not macros.is_defined("X")  # post-write read, not recorded
        macros.end_recording()
        assert recorder.reads["X"] is not None


# -- header replay ----------------------------------------------------------

def _preprocess(files, main, predefined=None):
    return Preprocessor(files.get, include_paths=["include"],
                        predefined=predefined or {}).preprocess(main)


HEADER = ("#ifndef _H_\n"
          "#define _H_\n"
          "#ifdef CONFIG_A\n"
          "int a_mode;\n"
          "#else\n"
          "int default_mode;\n"
          "#endif\n"
          "#endif\n")


class TestHeaderReplay:
    def test_second_tu_replays(self):
        files = {"include/h.h": HEADER,
                 "a.c": '#include "include/h.h"\nint main_a;\n',
                 "b.c": '#include "include/h.h"\nint main_b;\n'}
        first = _preprocess(files, "a.c", {"CONFIG_A": "1"})
        hits_before = prepared.header_cache().stats.hits
        second = _preprocess(files, "b.c", {"CONFIG_A": "1"})
        assert prepared.header_cache().stats.hits > hits_before
        assert "int a_mode;" in second.text
        assert second.macros.is_defined("_H_")
        # replayed emitted_lines match a fresh run's for the header
        header_lines = {pair for pair in first.emitted_lines
                        if pair[0] == "include/h.h"}
        assert header_lines == {pair for pair in second.emitted_lines
                                if pair[0] == "include/h.h"}

    def test_config_change_is_a_new_variant(self):
        files = {"include/h.h": HEADER,
                 "a.c": '#include "include/h.h"\n'}
        with_a = _preprocess(files, "a.c", {"CONFIG_A": "1"})
        without_a = _preprocess(files, "a.c", {})
        assert "int a_mode;" in with_a.text
        assert "int default_mode;" in without_a.text
        # both valuations now replay
        hits_before = prepared.header_cache().stats.hits
        again = _preprocess(files, "a.c", {"CONFIG_A": "1"})
        assert again.text == with_a.text
        assert prepared.header_cache().stats.hits > hits_before

    def test_guard_second_inclusion_replays_empty(self):
        files = {"include/h.h": HEADER,
                 "a.c": ('#include "include/h.h"\n'
                         '#include "include/h.h"\n'
                         "int tail;\n")}
        result = _preprocess(files, "a.c", {"CONFIG_A": "1"})
        assert result.text.count("int a_mode;") == 1
        assert result.included_files == ["include/h.h", "include/h.h"]

    def test_content_change_misses(self):
        files = {"include/h.h": HEADER, "a.c": '#include "include/h.h"\n'}
        _preprocess(files, "a.c")
        files["include/h.h"] = HEADER.replace("default_mode", "new_mode")
        result = _preprocess(files, "a.c")
        assert "int new_mode;" in result.text

    def test_non_leaf_files_are_not_cached(self):
        files = {"include/inner.h": "int inner;\n",
                 "include/outer.h": '#include "inner.h"\n',
                 "a.c": '#include "include/outer.h"\n'}
        _preprocess(files, "a.c")
        _preprocess(files, "a.c")
        keys = {path for path, _ in prepared.header_cache()._slots}
        assert "include/outer.h" not in keys
        assert "include/inner.h" in keys

    def test_variant_bound_holds(self):
        cache = prepared.HeaderReplayCache(max_entries=4, max_variants=2)

        class _Rec:
            def __init__(self, n):
                self.reads = {"K": None if n else "x"}
                self.delta = []
                self.emitted_ranges = ()

        for n in range(5):
            cache.store("h.h", "text", _Rec(n % 3), f"out{n}\n")
        assert all(len(v) <= 2 for v in cache._slots.values())
        for n in range(6):
            cache.store(f"p{n}.h", "text", _Rec(0), "out\n")
        assert len(cache._slots) <= 4


# -- the global switch ------------------------------------------------------

class TestConfigure:
    def test_fastpath_disabled_restores(self):
        assert prepared.enabled()
        with prepared.fastpath_disabled():
            assert not prepared.enabled()
        assert prepared.enabled()

    def test_disabling_clears_caches(self):
        prepared.prepared_file("int x;\n")
        prepared.configure(False)
        try:
            assert prepared.stats_snapshot()["prepared_entries"] == 0
        finally:
            prepared.configure(True)

    def test_pinned_preprocessor_ignores_global_switch(self):
        files = {"a.c": "#define V 3\nint x = V;\n"}
        pinned = Preprocessor(files.get, fastpath=True)
        with prepared.fastpath_disabled():
            result = pinned.preprocess("a.c")
        assert "int x = 3;" in result.text
        assert prepared.stats_snapshot()["prepared"]["stores"] >= 1

    def test_render_stats_mentions_both_caches(self):
        text = prepared.render_stats()
        assert "prepared" in text and "header_replay" in text
