"""Tests for the preprocessor driver — the `.i` semantics JMake relies on."""

import pytest

from repro.cpp.preprocessor import Preprocessor
from repro.errors import IncludeNotFoundError, PreprocessorError

MUTATION = '`"define:drivers/x/f.c:49"'


def pp(files, main="f.c", include_paths=None, predefined=None):
    provider = lambda path: files.get(path)
    preprocessor = Preprocessor(provider, include_paths=include_paths or [],
                                predefined=predefined or {})
    return preprocessor.preprocess(main)


class TestBasics:
    def test_plain_code_passes_through(self):
        result = pp({"f.c": "int x;\nint y;\n"})
        assert "int x;" in result.text
        assert "int y;" in result.text

    def test_missing_main_file(self):
        with pytest.raises(IncludeNotFoundError):
            pp({}, main="nope.c")

    def test_line_marker_at_start(self):
        result = pp({"f.c": "int x;\n"})
        assert result.text.startswith('# 1 "f.c"\n')

    def test_comments_removed(self):
        result = pp({"f.c": "int x; /* gone */\n// also gone\nint y;\n"})
        assert "gone" not in result.text

    def test_emitted_lines_tracked(self):
        result = pp({"f.c": "int x;\n\nint y;\n"})
        assert ("f.c", 1) in result.emitted_lines
        assert ("f.c", 3) in result.emitted_lines


class TestMacros:
    def test_define_consumed_and_expanded(self):
        source = "#define N 4\nint a[N];\n"
        result = pp({"f.c": source})
        assert "#define" not in result.text
        assert "int a[4];" in result.text

    def test_macro_body_mutation_surfaces_at_use_site(self):
        """The core JMake trick (paper Fig. 2): the mutated #define line
        vanishes from the .i file but its token reappears at every use."""
        source = (f"#define HI(x) (((x) & 0xf) << 4) {MUTATION}\n"
                  "int v = HI(3);\n")
        result = pp({"f.c": source})
        assert MUTATION in result.text
        define_lines = [line for line in result.text.splitlines()
                        if "define" in line and "#" in line.split('"')[0]]
        assert not any(line.startswith("#define") for line in
                       result.text.splitlines())

    def test_unused_macro_mutation_never_surfaces(self):
        """Table IV row 'change in unused macro'."""
        source = f"#define UNUSED(x) ((x) + 1) {MUTATION}\nint v = 3;\n"
        result = pp({"f.c": source})
        assert MUTATION not in result.text

    def test_multiline_macro_via_continuation(self):
        source = ("#define SINGLE(x) \\\n"
                  "  (HI(x) | \\\n"
                  "   LO(x))\n"
                  "#define HI(x) ((x) << 4)\n"
                  "#define LO(x) ((x) << 0)\n"
                  "int v = SINGLE(2);\n")
        result = pp({"f.c": source})
        assert "int v = (((2) << 4) |    ((2) << 0));" in result.text

    def test_mutation_before_continuation_joins_macro_body(self):
        """§III-B: mutation placed just before the continuation char."""
        source = (f"#define M(x) {MUTATION} \\\n"
                  "  ((x) + 1)\n"
                  "int v = M(2);\n")
        result = pp({"f.c": source})
        assert MUTATION in result.text

    def test_undef(self):
        source = "#define N 4\n#undef N\nint a[N];\n"
        result = pp({"f.c": source})
        assert "int a[N];" in result.text

    def test_predefined_config_macros(self):
        result = pp({"f.c": "int vers = CONFIG_LEVEL;\n"},
                    predefined={"CONFIG_LEVEL": "3"})
        assert "int vers = 3;" in result.text


class TestConditionals:
    def test_ifdef_taken(self):
        source = "#ifdef CONFIG_PCI\nint pci;\n#endif\n"
        result = pp({"f.c": source}, predefined={"CONFIG_PCI": "1"})
        assert "int pci;" in result.text

    def test_ifdef_not_taken(self):
        source = "#ifdef CONFIG_PCI\nint pci;\n#endif\nint other;\n"
        result = pp({"f.c": source})
        assert "int pci;" not in result.text
        assert "int other;" in result.text

    def test_ifndef(self):
        source = "#ifndef MODULE\nint builtin;\n#else\nint module;\n#endif\n"
        result = pp({"f.c": source})
        assert "int builtin;" in result.text
        assert "int module;" not in result.text

    def test_else_branch(self):
        source = "#ifdef A\nint a;\n#else\nint b;\n#endif\n"
        result = pp({"f.c": source})
        assert "int b;" in result.text
        assert "int a;" not in result.text

    def test_elif_chain(self):
        source = ("#if defined(A)\nint a;\n"
                  "#elif defined(B)\nint b;\n"
                  "#elif defined(C)\nint c;\n"
                  "#else\nint d;\n#endif\n")
        result = pp({"f.c": source}, predefined={"B": "1"})
        assert "int b;" in result.text
        for other in ("int a;", "int c;", "int d;"):
            assert other not in result.text

    def test_if_zero_block_dropped(self):
        """Table IV row 'change under #if 0'."""
        source = f"#if 0\nint dead; {MUTATION}\n#endif\nint live;\n"
        result = pp({"f.c": source})
        assert MUTATION not in result.text
        assert "int live;" in result.text

    def test_nested_conditionals(self):
        source = ("#ifdef A\n#ifdef B\nint ab;\n#endif\nint a;\n#endif\n")
        result = pp({"f.c": source}, predefined={"A": "1"})
        assert "int a;" in result.text
        assert "int ab;" not in result.text

    def test_inactive_outer_suppresses_inner_else(self):
        source = ("#ifdef A\n#ifdef B\nint ab;\n#else\nint anb;\n#endif\n"
                  "#endif\n")
        result = pp({"f.c": source})
        assert "int ab;" not in result.text
        assert "int anb;" not in result.text

    def test_defines_in_untaken_branch_ignored(self):
        source = "#ifdef A\n#define N 4\n#endif\nint a[N];\n"
        result = pp({"f.c": source})
        assert "int a[N];" in result.text

    def test_unterminated_conditional_raises(self):
        with pytest.raises(PreprocessorError):
            pp({"f.c": "#ifdef A\nint x;\n"})

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessorError):
            pp({"f.c": "#endif\n"})

    def test_stray_else_raises(self):
        with pytest.raises(PreprocessorError):
            pp({"f.c": "#else\n"})

    def test_elif_after_else_raises(self):
        with pytest.raises(PreprocessorError):
            pp({"f.c": "#ifdef A\n#else\n#elif defined(B)\n#endif\n"})

    def test_duplicate_else_raises(self):
        with pytest.raises(PreprocessorError):
            pp({"f.c": "#ifdef A\n#else\n#else\n#endif\n"})

    def test_if_with_macro_condition(self):
        source = "#if N > 3\nint big;\n#endif\n"
        result = pp({"f.c": source}, predefined={"N": "5"})
        assert "int big;" in result.text


class TestIncludes:
    def test_quote_include_relative_to_file(self):
        files = {
            "drivers/net/main.c": '#include "local.h"\nint x = LOCAL;\n',
            "drivers/net/local.h": "#define LOCAL 9\n",
        }
        result = pp(files, main="drivers/net/main.c")
        assert "int x = 9;" in result.text
        assert "drivers/net/local.h" in result.included_files

    def test_angle_include_uses_search_paths(self):
        files = {
            "main.c": "#include <linux/kernel.h>\nint x = KMAX;\n",
            "include/linux/kernel.h": "#define KMAX 99\n",
        }
        result = pp(files, include_paths=["include"], main="main.c")
        assert "int x = 99;" in result.text

    def test_missing_include_raises(self):
        with pytest.raises(IncludeNotFoundError):
            pp({"main.c": '#include "gone.h"\n'}, main="main.c")

    def test_missing_arch_header_message(self):
        """The failure mode that makes files arch-specific (§III-C)."""
        files = {"main.c": "#include <asm/io.h>\nint x;\n"}
        with pytest.raises(IncludeNotFoundError) as excinfo:
            pp(files, include_paths=["arch/x86/include"], main="main.c")
        assert "asm/io.h" in str(excinfo.value)

    def test_include_inside_untaken_branch_skipped(self):
        files = {"main.c": "#ifdef A\n#include \"gone.h\"\n#endif\nint x;\n"}
        result = pp(files, main="main.c")
        assert "int x;" in result.text

    def test_include_emits_line_markers(self):
        files = {
            "main.c": '#include "inc.h"\nint after;\n',
            "inc.h": "int inside;\n",
        }
        result = pp(files, main="main.c")
        assert '# 1 "inc.h"' in result.text
        assert '# 2 "main.c"' in result.text

    def test_nested_includes(self):
        files = {
            "main.c": '#include "a.h"\nint x = A + B;\n',
            "a.h": '#include "b.h"\n#define A 1\n',
            "b.h": "#define B 2\n",
        }
        result = pp(files, main="main.c")
        assert "int x = 1 + 2;" in result.text
        assert result.included_files == ["a.h", "b.h"]

    def test_include_guard_idiom(self):
        files = {
            "main.c": '#include "g.h"\n#include "g.h"\nint x = G;\n',
            "g.h": "#ifndef G_H\n#define G_H\n#define G 5\n#endif\n",
        }
        result = pp(files, main="main.c")
        assert "int x = 5;" in result.text

    def test_include_cycle_depth_limited(self):
        files = {
            "a.h": '#include "b.h"\n',
            "b.h": '#include "a.h"\n',
            "main.c": '#include "a.h"\n',
        }
        with pytest.raises(PreprocessorError):
            pp(files, main="main.c")

    def test_computed_include(self):
        files = {
            "main.c": "#define TARGET <linux/kernel.h>\n"
                      "#include TARGET\nint x = KMAX;\n",
            "include/linux/kernel.h": "#define KMAX 7\n",
        }
        result = pp(files, include_paths=["include"], main="main.c")
        assert "int x = 7;" in result.text


class TestDirectivesMisc:
    def test_error_directive_raises_when_active(self):
        with pytest.raises(PreprocessorError) as excinfo:
            pp({"f.c": "#error unsupported arch\n"})
        assert "unsupported arch" in str(excinfo.value)

    def test_error_directive_skipped_when_inactive(self):
        result = pp({"f.c": "#ifdef A\n#error nope\n#endif\nint x;\n"})
        assert "int x;" in result.text

    def test_pragma_ignored(self):
        result = pp({"f.c": "#pragma pack(1)\nint x;\n"})
        assert "int x;" in result.text

    def test_warning_ignored(self):
        result = pp({"f.c": "#warning deprecated\nint x;\n"})
        assert "int x;" in result.text

    def test_null_directive_ignored(self):
        result = pp({"f.c": "#\nint x;\n"})
        assert "int x;" in result.text

    def test_unknown_directive_raises(self):
        with pytest.raises(PreprocessorError):
            pp({"f.c": "#frobnicate\n"})

    def test_directive_inside_block_comment_ignored(self):
        source = "/*\n#error not real\n*/\nint x;\n"
        result = pp({"f.c": source})
        assert "int x;" in result.text


class TestMutationSemantics:
    """End-to-end checks of the exact behaviours §III-A depends on."""

    def test_non_macro_mutation_passes_through(self):
        source = f'{MUTATION}\nint changed;\n'
        result = pp({"f.c": source})
        assert MUTATION in result.text

    def test_mutation_under_unset_config_vanishes(self):
        source = (f"#ifdef CONFIG_RARE_THING\n{MUTATION}\nint rare;\n"
                  "#endif\nint common;\n")
        result = pp({"f.c": source})
        assert MUTATION not in result.text

    def test_mutation_under_set_config_survives(self):
        source = (f"#ifdef CONFIG_RARE_THING\n{MUTATION}\nint rare;\n"
                  "#endif\n")
        result = pp({"f.c": source}, predefined={"CONFIG_RARE_THING": "1"})
        assert MUTATION in result.text

    def test_string_payload_not_macro_expanded(self):
        # "define" and the file name inside the payload must never be
        # rewritten even if macros with those names exist.
        source = ("#define define 111\n#define f 222\n"
                  f"{MUTATION}\n")
        result = pp({"f.c": source})
        assert MUTATION in result.text

    def test_header_mutation_seen_through_include(self):
        """§III-D: .h mutations show up in the .i of including .c files."""
        header_mutation = '`"define:inc.h:1"'
        files = {
            "main.c": '#include "inc.h"\nint v = HM(1);\n',
            "inc.h": f"#define HM(x) ((x) * 2) {header_mutation}\n",
        }
        result = pp(files, main="main.c")
        assert header_mutation in result.text
