"""Tests for macro parsing and expansion."""

import pytest

from repro.cpp.macro import Macro, MacroTable
from repro.errors import MacroError


def table(**defs):
    t = MacroTable()
    for name, spec in defs.items():
        t.define(Macro.parse_define(f"{name}{spec}"))
    return t


class TestParseDefine:
    def test_object_like(self):
        macro = Macro.parse_define("MAX_CHAN 16")
        assert macro.name == "MAX_CHAN"
        assert macro.body == "16"
        assert not macro.is_function_like

    def test_object_like_empty_body(self):
        macro = Macro.parse_define("CONFIG_PCI 1".split()[0])
        assert macro.name == "CONFIG_PCI"
        assert macro.body == ""

    def test_function_like(self):
        macro = Macro.parse_define("MUX(x) (((x) & 0xf) << 4)")
        assert macro.params == ("x",)
        assert macro.body == "(((x) & 0xf) << 4)"

    def test_function_like_multiple_params(self):
        macro = Macro.parse_define("ADD(a, b) ((a) + (b))")
        assert macro.params == ("a", "b")

    def test_zero_param_function_like(self):
        macro = Macro.parse_define("F() 42")
        assert macro.params == ()
        assert macro.is_function_like

    def test_space_before_paren_is_object_like(self):
        macro = Macro.parse_define("NEG (x)")
        assert not macro.is_function_like
        assert macro.body == "(x)"

    def test_variadic(self):
        macro = Macro.parse_define("pr_debug(fmt, ...) printk(fmt, __VA_ARGS__)")
        assert macro.variadic
        assert macro.params == ("fmt",)

    def test_empty_define_rejected(self):
        with pytest.raises(MacroError):
            Macro.parse_define("   ")

    def test_unterminated_params_rejected(self):
        with pytest.raises(MacroError):
            Macro.parse_define("F(a, b")

    def test_bad_param_rejected(self):
        with pytest.raises(MacroError):
            Macro.parse_define("F(a 1) x")


class TestObjectExpansion:
    def test_simple(self):
        t = table(N=" 4")
        assert t.expand_text("int a[N];") == "int a[4];"

    def test_nested(self):
        t = table(A=" B", B=" 7")
        assert t.expand_text("A") == "7"

    def test_self_reference_stops(self):
        t = MacroTable()
        t.define(Macro.parse_define("X X + 1"))
        assert t.expand_text("X") == "X + 1"

    def test_mutual_recursion_stops(self):
        t = table(A=" B", B=" A")
        # Each name is painted blue inside its own expansion.
        assert t.expand_text("A") in ("A", "B")

    def test_no_expansion_inside_strings(self):
        t = table(N=" 4")
        assert t.expand_text('char *s = "N";') == 'char *s = "N";'

    def test_no_expansion_inside_chars(self):
        t = table(N=" 4")
        assert t.expand_text("char c = 'N';") == "char c = 'N';"


class TestFunctionExpansion:
    def test_paper_example(self):
        """The das16cs MUX macros from Figure 1 of the paper."""
        t = MacroTable()
        t.define(Macro.parse_define("DAS16CS_AI_MUX_HI_CHAN(x) (((x) & 0xf) << 4)"))
        t.define(Macro.parse_define("DAS16CS_AI_MUX_LO_CHAN(x) (((x) & 0xf) << 0)"))
        t.define(Macro.parse_define(
            "DAS16CS_AI_MUX_SINGLE_CHAN(x) "
            "(DAS16CS_AI_MUX_HI_CHAN(x) | DAS16CS_AI_MUX_LO_CHAN(x))"))
        result = t.expand_text("outw(DAS16CS_AI_MUX_SINGLE_CHAN(chan), dev);")
        assert result == \
            "outw(((((chan) & 0xf) << 4) | (((chan) & 0xf) << 0)), dev);"

    def test_name_without_parens_not_expanded(self):
        t = table()
        t.define(Macro.parse_define("F(x) (x)"))
        assert t.expand_text("ptr = F;") == "ptr = F;"

    def test_argument_with_commas_in_parens(self):
        t = MacroTable()
        t.define(Macro.parse_define("FIRST(a, b) a"))
        assert t.expand_text("FIRST(f(1, 2), 3)") == "f(1, 2)"

    def test_arguments_expanded_before_substitution(self):
        t = MacroTable()
        t.define(Macro.parse_define("N 4"))
        t.define(Macro.parse_define("ID(x) x"))
        assert t.expand_text("ID(N)") == "4"

    def test_wrong_arity_raises(self):
        t = MacroTable()
        t.define(Macro.parse_define("ADD(a, b) ((a) + (b))"))
        with pytest.raises(MacroError):
            t.expand_text("ADD(1)")

    def test_unterminated_invocation_raises(self):
        t = MacroTable()
        t.define(Macro.parse_define("F(x) (x)"))
        with pytest.raises(MacroError):
            t.expand_text("F(1")

    def test_zero_arg_invocation(self):
        t = MacroTable()
        t.define(Macro.parse_define("F() 42"))
        assert t.expand_text("F()") == "42"

    def test_stringify(self):
        t = MacroTable()
        t.define(Macro.parse_define("STR(x) #x"))
        assert t.expand_text("STR(hello world)") == '"hello world"'

    def test_stringify_escapes_quotes(self):
        t = MacroTable()
        t.define(Macro.parse_define("STR(x) #x"))
        assert t.expand_text('STR("q")') == '"\\"q\\""'

    def test_token_paste(self):
        t = MacroTable()
        t.define(Macro.parse_define("GLUE(a, b) a##b"))
        assert t.expand_text("GLUE(dev, _priv)") == "dev_priv"

    def test_token_paste_builds_expandable_name(self):
        t = MacroTable()
        t.define(Macro.parse_define("dev_priv 99"))
        t.define(Macro.parse_define("GLUE(a, b) a##b"))
        assert t.expand_text("GLUE(dev, _priv)") == "99"

    def test_paste_at_boundary_raises(self):
        t = MacroTable()
        with pytest.raises(MacroError):
            t.define(Macro.parse_define("BAD(a) ##a"))
            t.expand_text("BAD(1)")

    def test_variadic_forwarding(self):
        t = MacroTable()
        t.define(Macro.parse_define(
            "pr(fmt, ...) printk(fmt, __VA_ARGS__)"))
        assert t.expand_text('pr("x %d %d", 1, 2)') == \
            'printk("x %d %d", 1, 2)'

    def test_mutation_token_survives_macro_body(self):
        """§III-A: a mutation in a macro body surfaces at the use site."""
        t = MacroTable()
        t.define(Macro.parse_define(
            'HI(x) (((x) & 0xf) << 4) `"define:f.c:49"'))
        expanded = t.expand_text("HI(3)")
        assert '`"define:f.c:49"' in expanded


class TestMacroTable:
    def test_undef(self):
        t = table(N=" 4")
        t.undef("N")
        assert t.expand_text("N") == "N"

    def test_undef_missing_is_noop(self):
        table().undef("NOPE")

    def test_redefinition_replaces(self):
        t = table(N=" 4")
        t.define(Macro.parse_define("N 5"))
        assert t.expand_text("N") == "5"

    def test_snapshot_is_independent(self):
        t = table(N=" 4")
        snap = t.snapshot()
        t.define(Macro.parse_define("M 1"))
        assert not snap.is_defined("M")
        assert snap.is_defined("N")

    def test_predefined(self):
        t = MacroTable({"CONFIG_PCI": "1", "__KERNEL__": "1"})
        assert t.is_defined("CONFIG_PCI")
        assert t.expand_text("CONFIG_PCI") == "1"

    def test_names_sorted(self):
        t = table(B=" 1", A=" 2")
        assert t.names() == ["A", "B"]
