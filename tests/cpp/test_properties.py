"""Property-based tests on preprocessor invariants."""

from hypothesis import given, settings, strategies as st

from repro.cpp.preprocessor import Preprocessor
from repro.errors import PreprocessorError


def pp_text(source, predefined=None):
    files = {"f.c": source}
    return Preprocessor(files.get, predefined=predefined or {}) \
        .preprocess("f.c").text


identifiers = st.sampled_from(
    ["CONFIG_A", "CONFIG_B", "CONFIG_LONG_NAME", "MODULE"])

statements = st.sampled_from(
    ["int x;", "int y = 4;", "return 0;", "foo(1, 2);", ""])


class TestConditionalExclusivity:
    @given(identifiers, statements, statements, st.booleans())
    @settings(max_examples=60)
    def test_ifdef_else_exactly_one_branch(self, symbol, then_stmt,
                                           else_stmt, define_it):
        """Exactly one branch of #ifdef/#else survives, always."""
        then_marker = "THEN_BRANCH_MARKER"
        else_marker = "ELSE_BRANCH_MARKER"
        source = (f"#ifdef {symbol}\n{then_stmt} // {then_marker}\n"
                  f"int {then_marker};\n"
                  f"#else\n{else_stmt}\n"
                  f"int {else_marker};\n#endif\n")
        predefined = {symbol: "1"} if define_it else {}
        text = pp_text(source, predefined)
        assert (then_marker in text) != (else_marker in text)
        assert (then_marker in text) == define_it

    @given(st.lists(st.booleans(), min_size=1, max_size=5))
    @settings(max_examples=40)
    def test_nested_ifdefs_conjunction(self, flags):
        """Code under nested #ifdefs survives iff every level is set."""
        names = [f"LEVEL{i}" for i in range(len(flags))]
        source = ""
        for name in names:
            source += f"#ifdef {name}\n"
        source += "int innermost_marker;\n"
        source += "#endif\n" * len(names)
        predefined = {name: "1" for name, flag in zip(names, flags)
                      if flag}
        text = pp_text(source, predefined)
        assert ("innermost_marker" in text) == all(flags)


class TestExpansionInvariants:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30)
    def test_object_macro_value_preserved(self, value):
        source = f"#define V {value}\nint x = V;\n"
        assert f"int x = {value};" in pp_text(source)

    @given(st.text(alphabet="abcdefgh_ ", min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_string_literals_never_rewritten(self, payload):
        source = (f'#define {"a"} 999\n'
                  f'char *s = "{payload}";\n')
        assert f'"{payload}"' in pp_text(source)

    @given(st.sampled_from(["`", "@", "$"]),
           st.integers(min_value=1, max_value=50))
    @settings(max_examples=30)
    def test_invalid_chars_flow_through(self, char, line):
        """Any non-C character passes the preprocessor untouched."""
        filler = "int a;\n" * (line - 1)
        source = filler + f'{char}"tag:{line}"\n'
        assert f'{char}"tag:{line}"' in pp_text(source)


class TestStructuralErrors:
    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=10)
    def test_missing_endifs_always_raise(self, depth):
        source = "#ifdef A\n" * depth + "int x;\n"
        try:
            pp_text(source)
            raised = False
        except PreprocessorError:
            raised = True
        assert raised
