"""Tests for the hierarchical span tracer."""

import pytest

from repro.obs.tracer import (NULL_TRACER, NullTracer, Span, Tracer,
                              STATUS_ERROR, STATUS_OK)
from repro.util.simclock import SimClock


class TestNesting:
    def test_children_follow_call_structure(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                with tracer.span("leaf"):
                    pass
        roots = tracer.drain()
        assert len(roots) == 1
        outer = roots[0]
        assert outer.name == "outer"
        assert [child.name for child in outer.children] == ["inner.a",
                                                            "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_sequential_roots_accumulate(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.drain()] == ["first", "second"]
        assert tracer.drain() == []  # drain pops

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        root = tracer.drain()[0]
        assert [span.name for span in root.walk()] == ["a", "b", "c", "d"]


class TestExceptions:
    def test_exception_marks_status_and_type(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        outer = tracer.drain()[0]
        assert outer.status == STATUS_ERROR
        assert outer.error_type == "ValueError"
        inner = outer.children[0]
        assert inner.status == STATUS_ERROR
        assert inner.error_type == "ValueError"

    def test_handled_exception_leaves_parent_ok(self):
        tracer = Tracer()
        with tracer.span("outer"):
            try:
                with tracer.span("inner"):
                    raise KeyError("lost")
            except KeyError:
                pass
        outer = tracer.drain()[0]
        assert outer.status == STATUS_OK
        assert outer.children[0].status == STATUS_ERROR
        assert outer.children[0].error_type == "KeyError"

    def test_error_type_survives_serialization(self):
        tracer = Tracer()
        try:
            with tracer.span("step"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        record = tracer.drain()[0].to_dict()
        assert record["status"] == "error"
        assert record["error_type"] == "RuntimeError"


class TestClocks:
    def test_sim_duration_reads_but_never_charges(self):
        clock = SimClock()
        tracer = Tracer(sim_clock=clock)
        with tracer.span("build") as span:
            clock.charge("make_i", 7.5)
        assert span.sim_duration == pytest.approx(7.5)
        # the span itself charged nothing: only our explicit charge exists
        assert [s.label for s in clock.spans] == ["make_i"]

    def test_wall_duration_is_positive(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            pass
        assert span.wall_duration >= 0.0

    def test_no_sim_clock_means_zero_sim_duration(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            pass
        assert span.sim_duration == 0.0


class TestSerialization:
    def test_to_dict_rebases_to_own_start(self):
        clock = SimClock()
        clock.charge("warmup", 100.0)  # tree must not see this offset
        tracer = Tracer(sim_clock=clock)
        with tracer.span("root"):
            clock.charge("step", 2.0)
            with tracer.span("child"):
                clock.charge("step", 3.0)
        record = tracer.drain()[0].to_dict()
        assert record["sim_start"] == pytest.approx(0.0)
        assert record["sim_duration"] == pytest.approx(5.0)
        child = record["children"][0]
        assert child["sim_start"] == pytest.approx(2.0)
        assert child["sim_duration"] == pytest.approx(3.0)

    def test_attributes_and_set_round_trip(self):
        tracer = Tracer()
        with tracer.span("op", path="a.c") as span:
            span.set("cached", True)
        record = tracer.drain()[0].to_dict()
        assert record["attributes"] == {"path": "a.c", "cached": True}

    def test_event_records_instant_child(self):
        clock = SimClock()
        tracer = Tracer(sim_clock=clock)
        with tracer.span("op") as span:
            clock.charge("x", 1.0)
            span.event("marker", kind="test")
        record = tracer.drain()[0].to_dict()
        marker = record["children"][0]
        assert marker["name"] == "marker"
        assert marker["sim_duration"] == 0.0
        assert marker["sim_start"] == pytest.approx(1.0)


class TestNullTracer:
    def test_api_parity_with_real_tracer(self):
        null = NullTracer()
        assert null.enabled is False
        assert Tracer().enabled is True
        with null.span("anything", key="value") as span:
            span.set("k", 1)
            span.event("e")
        assert null.current is None
        assert null.drain() == []
        null.event("top-level")
        assert null.drain() == []

    def test_span_returns_shared_handle(self):
        null = NullTracer()
        assert null.span("a") is null.span("b")

    def test_module_singleton_has_no_clock(self):
        assert NULL_TRACER.sim_clock is None
        assert NULL_TRACER.worker_id == 0

    def test_null_span_survives_exceptions_silently(self):
        null = NullTracer()
        with pytest.raises(ValueError):
            with null.span("op"):
                raise ValueError("propagates, but records nothing")
        assert null.drain() == []
