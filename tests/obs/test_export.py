"""Tests for the Chrome-trace and text span-tree exporters."""

import json

from repro.obs.export import (chrome_trace, render_span_tree, span_count,
                              write_chrome_trace)
from repro.obs.tracer import Tracer
from repro.util.simclock import SimClock


def _tree(index=0, worker=0, commit="abc123"):
    clock = SimClock()
    tracer = Tracer(sim_clock=clock)
    with tracer.span("jmake.check_commit", commit=commit) as root:
        clock.charge("config", 2.0)
        with tracer.span("build.make_i", files=1):
            clock.charge("make_i", 3.0)
        root.set("commit.index", index)
        root.set("worker", worker)
    return tracer.drain()[0].to_dict()


class TestChromeTrace:
    def test_events_reference_sim_microseconds(self):
        trace = chrome_trace([_tree()])
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["jmake.check_commit",
                                          "build.make_i"]
        root, child = xs
        assert root["ts"] == 0.0
        assert root["dur"] == 5_000_000.0
        assert child["ts"] == 2_000_000.0
        assert child["dur"] == 3_000_000.0

    def test_lane_and_track_metadata(self):
        trace = chrome_trace([_tree(index=3, worker=1)])
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e for e in metas}
        assert names["process_name"]["pid"] == 1
        assert names["process_name"]["args"]["name"] == "worker 1"
        assert names["thread_name"]["tid"] == 3
        assert "abc123" in names["thread_name"]["args"]["name"]
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert all(e["pid"] == 1 and e["tid"] == 3 for e in xs)

    def test_trees_sorted_by_commit_index(self):
        trace = chrome_trace([_tree(index=2, commit="c2"),
                              _tree(index=0, commit="c0"),
                              _tree(index=1, commit="c1")])
        roots = [e for e in trace["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "jmake.check_commit"]
        assert [e["tid"] for e in roots] == [0, 1, 2]

    def test_status_and_error_type_in_args(self):
        tracer = Tracer()
        try:
            with tracer.span("op"):
                raise OSError("disk")
        except OSError:
            pass
        tree = tracer.drain()[0].to_dict()
        event = chrome_trace([tree])["traceEvents"][-1]
        assert event["args"]["status"] == "error"
        assert event["args"]["error_type"] == "OSError"

    def test_categories_derive_from_name_prefix(self):
        trace = chrome_trace([_tree()])
        cats = {e["name"]: e["cat"] for e in trace["traceEvents"]
                if e["ph"] == "X"}
        assert cats["jmake.check_commit"] == "jmake"
        assert cats["build.make_i"] == "build"

    def test_write_round_trips_as_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        events = write_chrome_trace(path, [_tree()])
        with open(path) as handle:
            loaded = json.load(handle)
        assert len(loaded["traceEvents"]) == events
        assert events == 4  # 2 X + 2 M

    def test_byte_identical_for_same_trees(self, tmp_path):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_chrome_trace(a, [_tree(index=0), _tree(index=1)])
        write_chrome_trace(b, [_tree(index=1), _tree(index=0)])
        assert open(a).read() == open(b).read()


class TestTextRenderer:
    def test_renders_nesting_and_attributes(self):
        text = render_span_tree(_tree())
        lines = text.splitlines()
        assert lines[0].startswith("jmake.check_commit")
        assert lines[1].startswith("  build.make_i")
        assert "files=1" in lines[1]
        assert "sim 0.00s+5.00s" in lines[0]

    def test_wall_clock_is_optional(self):
        with_wall = render_span_tree(_tree(), show_wall=True)
        without = render_span_tree(_tree(), show_wall=False)
        assert "wall" in with_wall
        assert "wall" not in without

    def test_error_status_is_flagged(self):
        tracer = Tracer()
        try:
            with tracer.span("op"):
                raise ValueError("x")
        except ValueError:
            pass
        text = render_span_tree(tracer.drain()[0].to_dict())
        assert "!error(ValueError)" in text


class TestSpanCount:
    def test_counts_whole_tree(self):
        assert span_count(_tree()) == 2
        assert span_count({"name": "leaf", "status": "ok",
                           "sim_start": 0, "sim_duration": 0,
                           "wall_start": 0, "wall_duration": 0}) == 1
