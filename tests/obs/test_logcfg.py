"""Tests for the repro.* logger hierarchy configuration."""

import io
import logging

import pytest

from repro.obs.logcfg import ROOT_LOGGER, configure_logging, get_logger


@pytest.fixture(autouse=True)
def _clean_repro_logger():
    yield
    root = logging.getLogger(ROOT_LOGGER)
    for handler in [h for h in root.handlers
                    if getattr(h, "_repro_handler", False)]:
        root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


class TestGetLogger:
    def test_prefixes_under_repro(self):
        assert get_logger("core.jmake").name == "repro.core.jmake"

    def test_leaves_rooted_names_alone(self):
        assert get_logger("repro.buildcache").name == "repro.buildcache"
        assert get_logger("repro").name == "repro"


class TestConfigureLogging:
    def test_level_and_format(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("core.jmake").info("certified %s", "abc")
        assert stream.getvalue() == "INFO repro.core.jmake: certified abc\n"

    def test_debug_passes_lower_levels(self):
        stream = io.StringIO()
        configure_logging("debug", stream=stream)
        get_logger("kbuild").debug("detail")
        assert "DEBUG repro.kbuild: detail" in stream.getvalue()

    def test_reconfiguring_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging("info", stream=first)
        configure_logging("info", stream=second)
        get_logger("x").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_root_logger_untouched(self):
        before = list(logging.getLogger().handlers)
        configure_logging("info", stream=io.StringIO())
        assert logging.getLogger().handlers == before

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("verbose")
