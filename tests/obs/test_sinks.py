"""Sinks: OpenMetrics exposition, JSONL resume/dedup, callbacks."""

import json

import pytest

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import (
    CallbackSink,
    JsonlSink,
    OpenMetricsSink,
    parse_openmetrics,
    read_jsonl,
    render_openmetrics,
    sanitize_metric_name,
    sanitized_metrics,
)
from repro.obs.timeseries import Snapshotter


def snapshot_record(counter=3):
    registry = MetricsRegistry()
    registry.counter("service.requests.completed").inc(counter)
    registry.gauge("service.shard.0.queue_depth").set(2)
    histogram = registry.histogram("service.request.wall_seconds",
                                   (0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    return Snapshotter(registry, clock=lambda: 9.0).sample().to_dict()


class TestNameSanitization:
    def test_dots_become_underscores_under_the_prefix(self):
        assert sanitize_metric_name("service.shard.0.units") == \
            "jmake_service_shard_0_units"

    def test_all_sections_are_mapped(self):
        mapped = sanitized_metrics(snapshot_record()["metrics"])
        assert "jmake_service_requests_completed" in mapped["counters"]
        assert "jmake_service_shard_0_queue_depth" in mapped["gauges"]
        assert "jmake_service_request_wall_seconds" in \
            mapped["histograms"]


class TestOpenMetricsCodec:
    def test_exposition_ends_with_eof(self):
        assert render_openmetrics(snapshot_record()).endswith("# EOF\n")

    def test_counters_expose_total_samples(self):
        text = render_openmetrics(snapshot_record(counter=7))
        assert "# TYPE jmake_service_requests_completed counter" in text
        assert "jmake_service_requests_completed_total 7" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_openmetrics(snapshot_record())
        lines = [line for line in text.splitlines()
                 if line.startswith("jmake_service_request_wall_seconds")]
        assert lines == [
            'jmake_service_request_wall_seconds_bucket{le="0.1"} 1',
            'jmake_service_request_wall_seconds_bucket{le="1.0"} 2',
            'jmake_service_request_wall_seconds_bucket{le="+Inf"} 3',
            "jmake_service_request_wall_seconds_sum 5.55",
            "jmake_service_request_wall_seconds_count 3",
        ]

    def test_parse_rejects_missing_eof(self):
        text = render_openmetrics(snapshot_record())
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics(text.replace("# EOF\n", ""))

    def test_parse_rejects_malformed_sample_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics("!! not a sample\n# EOF")

    def test_parse_rejects_untyped_samples(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_openmetrics("jmake_x_total 3\n# EOF")

    def test_parse_rejects_non_monotone_buckets(self):
        text = "\n".join([
            "# TYPE jmake_h histogram",
            'jmake_h_bucket{le="0.1"} 5',
            'jmake_h_bucket{le="1.0"} 3',
            'jmake_h_bucket{le="+Inf"} 5',
            "jmake_h_sum 1.0",
            "jmake_h_count 5",
            "# EOF"])
        with pytest.raises(ValueError, match="non-monotone"):
            parse_openmetrics(text)


class TestOpenMetricsSink:
    def test_rewrites_the_exposition_per_snapshot(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = OpenMetricsSink(str(path))
        assert sink.emit(snapshot_record(counter=1)) is True
        first = path.read_text()
        assert sink.emit(snapshot_record(counter=2)) is True
        second = path.read_text()
        assert first != second
        assert second.endswith("# EOF\n")
        assert sink.writes == 2

    def test_missing_directory_fails_at_construction(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            OpenMetricsSink(str(tmp_path / "absent" / "metrics.prom"))

    def test_event_records_are_ignored(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = OpenMetricsSink(str(path))
        event = EventLog(clock=lambda: 0.0).emit("shard.crash")
        assert sink.emit(event.to_dict()) is False
        assert not path.exists()


class TestJsonlSink:
    def test_appends_one_json_line_per_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit({"seq": 1, "kind": "a"})
            sink.emit({"seq": 2, "kind": "b"})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [1, 2]

    def test_reopen_recovers_the_watermark(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit({"seq": 1})
            sink.emit({"seq": 2})
        sink = JsonlSink(str(path))
        assert sink.last_seq == 2
        assert sink.lines_recovered == 2
        sink.close()

    def test_duplicate_seqs_are_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit({"seq": 1})
            sink.emit({"seq": 2})
        with JsonlSink(str(path)) as sink:
            assert sink.emit({"seq": 2}) is False
            assert sink.emit({"seq": 1}) is False
            assert sink.emit({"seq": 3}) is True
            assert sink.duplicates_skipped == 2
        assert [record["seq"] for record in read_jsonl(str(path))] == \
            [1, 2, 3]

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit({"seq": 1})
            sink.emit({"seq": 2})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "kind": "tru')  # crash mid-append
        sink = JsonlSink(str(path))
        assert sink.last_seq == 2
        assert sink.torn_bytes_truncated > 0
        sink.emit({"seq": 3, "kind": "fresh"})
        sink.close()
        records = read_jsonl(str(path))
        assert [record["seq"] for record in records] == [1, 2, 3]
        assert records[-1]["kind"] == "fresh"

    def test_corrupt_interior_line_truncates_the_suspect_suffix(
            self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 1}\nnot json\n{"seq": 2}\n')
        sink = JsonlSink(str(path))
        assert sink.last_seq == 1
        assert sink.lines_recovered == 1
        sink.close()
        assert [record["seq"] for record in read_jsonl(str(path))] == [1]

    def test_kill_and_resume_never_duplicates_an_event(self, tmp_path):
        """The serve restart contract: seed start_seq from last_seq."""
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        log = EventLog(clock=lambda: 0.0, start_seq=sink.last_seq,
                       sinks=[sink])
        log.emit("service.started")
        log.emit("shard.crash", shard=0)
        sink.close()   # process "dies" here
        sink = JsonlSink(str(path))
        log = EventLog(clock=lambda: 0.0, start_seq=sink.last_seq,
                       sinks=[sink])
        log.emit("service.started")
        log.emit("service.drained")
        sink.close()
        seqs = [record["seq"] for record in read_jsonl(str(path))]
        assert seqs == [1, 2, 3, 4]

    def test_read_jsonl_missing_file_is_empty(self, tmp_path):
        assert read_jsonl(str(tmp_path / "absent.jsonl")) == []


class TestCallbackSink:
    def test_hands_records_through(self):
        seen = []
        sink = CallbackSink(seen.append)
        assert sink.emit({"seq": 1}) is True
        assert sink.emitted == 1
        assert seen == [{"seq": 1}]
