"""Tests for the metrics registry and its snapshot/merge/delta algebra."""

import pickle

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, NULL_METRICS, Counter,
                               Gauge, Histogram, MetricsRegistry,
                               NullMetricsRegistry)


class TestCounter:
    def test_inc_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.counter("tokens.found").inc()
        registry.counter("tokens.found").inc(4)
        assert registry.counter("tokens.found").value == 5

    def test_created_on_first_use(self):
        registry = MetricsRegistry()
        assert registry.counter("fresh").value == 0
        assert "fresh" in registry.counters


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("level")
        gauge.set(10)
        gauge.inc(2)
        assert gauge.value == 12

    def test_merge_takes_max(self):
        a, b = Gauge("g", 3), Gauge("g", 7)
        a.merge(b)
        assert a.value == 7


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("t", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1]  # third is overflow
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(110.5 / 4)

    def test_empty_mean_is_zero(self):
        assert Histogram("t").mean == 0.0

    def test_merge_requires_matching_buckets(self):
        a = Histogram("t", buckets=(1.0,))
        b = Histogram("t", buckets=(2.0,))
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge(b)

    def test_default_buckets(self):
        assert Histogram("t").buckets == DEFAULT_BUCKETS


class TestAlgebra:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("g").set(5)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        return registry

    def test_snapshot_is_independent(self):
        registry = self._populated()
        snap = registry.snapshot()
        registry.counter("a").inc(10)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        assert snap.counter("a").value == 3
        assert snap.histogram("h", buckets=(1.0, 2.0)).count == 1

    def test_merge_sums_counters_and_histograms(self):
        a, b = self._populated(), self._populated()
        b.counter("only_b").inc()
        a.merge(b)
        assert a.counter("a").value == 6
        assert a.counter("only_b").value == 1
        assert a.histogram("h", buckets=(1.0, 2.0)).count == 2

    def test_merge_is_commutative(self):
        """The property parallel aggregation relies on."""
        def build(seed):
            registry = MetricsRegistry()
            registry.counter("c").inc(seed)
            registry.gauge("g").set(seed * 2)
            registry.histogram("h").observe(seed)
            return registry
        ab = build(1)
        ab.merge(build(2))
        ba = build(2)
        ba.merge(build(1))
        assert ab.to_dict() == ba.to_dict()

    def test_delta_round_trips_through_merge(self):
        base = self._populated()
        snap = base.snapshot()
        base.counter("a").inc(7)
        base.histogram("h", buckets=(1.0, 2.0)).observe(0.1)
        delta = base.delta(snap)
        assert delta.counter("a").value == 7
        rebuilt = snap.snapshot()
        rebuilt.merge(delta)
        assert rebuilt.to_dict() == base.to_dict()

    def test_delta_handles_instruments_missing_from_base(self):
        registry = MetricsRegistry()
        registry.counter("new").inc(2)
        delta = registry.delta(MetricsRegistry())
        assert delta.counter("new").value == 2


class TestExport:
    def test_to_dict_is_sorted_and_json_shaped(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        record = registry.to_dict()
        assert list(record["counters"]) == ["a", "z"]
        assert set(record) == {"counters", "gauges", "histograms"}

    def test_histogram_to_value_shape(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        value = registry.to_dict()["histograms"]["h"]
        assert value == {"buckets": [1.0], "counts": [1, 0],
                         "sum": 0.5, "count": 1}

    def test_render_mentions_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("tokens.found").inc(3)
        registry.histogram("elapsed").observe(1.0)
        text = registry.render()
        assert "tokens.found" in text
        assert "elapsed" in text

    def test_registry_pickles_across_process_boundaries(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(3.0)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.to_dict() == registry.to_dict()


class TestNullRegistry:
    def test_api_parity(self):
        null = NullMetricsRegistry()
        assert null.enabled is False
        assert MetricsRegistry().enabled is True
        null.counter("a").inc(5)
        null.gauge("b").set(1)
        null.histogram("c").observe(2.0)
        assert null.to_dict() == {"counters": {}, "gauges": {},
                                  "histograms": {}}
        assert null.snapshot() is null
        assert null.delta(null) is null

    def test_instruments_are_shared(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.counter("b")
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("h")
