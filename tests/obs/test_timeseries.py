"""Snapshotter/SnapshotRing/quantiles: the metric time-series layer."""

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import CallbackSink
from repro.obs.timeseries import (
    SNAPSHOT_SCHEMA_VERSION,
    MetricsSnapshot,
    SnapshotRing,
    Snapshotter,
    histogram_quantiles,
    registry_from_dict,
    validate_snapshot_record,
)


def registry_with(counter=0, observations=()):
    registry = MetricsRegistry()
    if counter:
        registry.counter("requests").inc(counter)
    registry.gauge("depth").set(7)
    histogram = registry.histogram("latency", (1.0, 2.0, 4.0))
    for value in observations:
        histogram.observe(value)
    return registry


class TestHistogramQuantiles:
    def test_interpolates_inside_the_owning_bucket(self):
        # 10 observations uniform in (0, 1]: p50 lands mid-bucket
        data = {"buckets": [1.0, 2.0], "counts": [10, 0, 0],
                "sum": 5.0, "count": 10}
        quantiles = histogram_quantiles(data)
        assert quantiles[0.5] == pytest.approx(0.5)
        assert quantiles[0.9] == pytest.approx(0.9)
        assert quantiles[0.99] == pytest.approx(0.99)

    def test_spans_buckets(self):
        data = {"buckets": [1.0, 2.0], "counts": [5, 5, 0],
                "sum": 0.0, "count": 10}
        quantiles = histogram_quantiles(data, (0.25, 0.75))
        assert quantiles[0.25] == pytest.approx(0.5)
        assert quantiles[0.75] == pytest.approx(1.5)

    def test_overflow_clamps_to_last_finite_bound(self):
        data = {"buckets": [1.0, 2.0], "counts": [0, 0, 10],
                "sum": 100.0, "count": 10}
        assert histogram_quantiles(data, (0.99,))[0.99] == 2.0

    def test_empty_histogram_reports_zero(self):
        data = {"buckets": [1.0], "counts": [0, 0], "sum": 0.0,
                "count": 0}
        assert histogram_quantiles(data, (0.5,))[0.5] == 0.0

    def test_histogram_quantile_method_delegates(self):
        histogram = MetricsRegistry().histogram("h", (1.0, 2.0))
        for value in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == pytest.approx(0.5)


class TestSnapshotRecord:
    def test_round_trips_through_dict(self):
        source = registry_with(counter=3, observations=(0.5, 1.5))
        snapshot = MetricsSnapshot(5, 12.25, "sim", source.to_dict())
        rebuilt = MetricsSnapshot.from_dict(snapshot.to_dict())
        assert rebuilt.seq == 5
        assert rebuilt.ts == 12.25
        assert rebuilt.clock_kind == "sim"
        assert rebuilt.metrics == source.to_dict()

    def test_registry_rebuild_is_faithful(self):
        source = registry_with(counter=3, observations=(0.5, 1.5, 9.0))
        rebuilt = registry_from_dict(source.to_dict())
        assert rebuilt.to_dict() == source.to_dict()

    def test_validate_rejects_wrong_schema(self):
        record = MetricsSnapshot(1, 0.0, "wall", registry_with()
                                 .to_dict()).to_dict()
        record["schema"] = SNAPSHOT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            validate_snapshot_record(record)

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("seq"),
        lambda r: r.pop("metrics"),
        lambda r: r.__setitem__("seq", 0),
        lambda r: r.__setitem__("clock", "cpu"),
        lambda r: r.__setitem__("metrics", {"counters": {}}),
    ])
    def test_validate_rejects_malformed_records(self, mutate):
        record = MetricsSnapshot(1, 0.0, "wall", registry_with()
                                 .to_dict()).to_dict()
        mutate(record)
        with pytest.raises(ValueError):
            validate_snapshot_record(record)


class TestSnapshotRing:
    def test_bounded_oldest_evicted_first(self):
        ring = SnapshotRing(capacity=2)
        for seq in (1, 2, 3):
            ring.append(MetricsSnapshot(seq, 0.0, "sim", {}))
        assert [snapshot.seq for snapshot in ring] == [2, 3]
        assert ring.latest.seq == 3

    def test_empty_ring_has_no_latest(self):
        assert SnapshotRing().latest is None

    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ValueError):
            SnapshotRing(0)


class TestSnapshotter:
    def test_sample_is_sequenced_and_ringed(self):
        snapshotter = Snapshotter(registry_with(counter=2),
                                  clock=lambda: 42.0, start_seq=10)
        snapshot = snapshotter.sample()
        assert snapshot.seq == 11
        assert snapshot.ts == 42.0
        assert snapshot.clock_kind == "sim"
        assert snapshotter.ring.latest is snapshot
        assert snapshot.metrics["counters"]["requests"] == 2

    def test_wall_clock_is_the_default_kind(self):
        assert Snapshotter(registry_with()).clock_kind == "wall"

    def test_collectors_merge_into_every_sample(self):
        extra = MetricsRegistry()
        extra.counter("substrate.prepared.hits").inc(9)
        snapshotter = Snapshotter(registry_with(counter=1),
                                  collectors=[lambda: extra],
                                  clock=lambda: 0.0)
        metrics = snapshotter.sample().metrics
        assert metrics["counters"]["requests"] == 1
        assert metrics["counters"]["substrate.prepared.hits"] == 9

    def test_sampling_never_perturbs_the_source(self):
        source = registry_with(counter=5)
        before = source.to_dict()
        extra = MetricsRegistry()
        extra.counter("other").inc()
        Snapshotter(source, collectors=[lambda: extra],
                    clock=lambda: 0.0).sample()
        assert source.to_dict() == before

    def test_sinks_receive_serialized_snapshots(self):
        seen = []
        snapshotter = Snapshotter(registry_with(counter=1),
                                  clock=lambda: 3.0,
                                  sinks=[CallbackSink(seen.append)])
        snapshotter.sample()
        assert len(seen) == 1
        validate_snapshot_record(seen[0])
        assert seen[0]["seq"] == 1

    def test_deterministic_stream_under_a_fixed_clock(self):
        def stream():
            snapshotter = Snapshotter(registry_with(counter=4),
                                      clock=lambda: 1.0)
            return [snapshotter.sample().to_dict() for _ in range(3)]
        assert stream() == stream()

    def test_periodic_task_samples_and_final_stop_samples_again(self):
        async def main():
            snapshotter = Snapshotter(registry_with(),
                                      clock=lambda: 0.0,
                                      interval_seconds=0.005)
            snapshotter.start()
            await asyncio.sleep(0.03)
            await snapshotter.stop(final_sample=True)
            return snapshotter
        snapshotter = asyncio.run(main())
        assert snapshotter.samples_taken >= 2
        assert snapshotter.ring.latest.seq == snapshotter.seq

    def test_start_without_interval_is_an_error(self):
        async def main():
            Snapshotter(registry_with()).start()
        with pytest.raises(ValueError, match="interval"):
            asyncio.run(main())

    @pytest.mark.parametrize("kwargs", [
        {"interval_seconds": 0.0}, {"interval_seconds": -1.0},
        {"start_seq": -1}, {"clock_kind": "cpu"},
        {"ring_capacity": 0}])
    def test_bad_construction_is_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Snapshotter(registry_with(), **kwargs)

    def test_stats_shape(self):
        snapshotter = Snapshotter(registry_with(), clock=lambda: 0.0)
        snapshotter.sample()
        assert snapshotter.stats() == {
            "seq": 1, "samples_taken": 1, "ring_size": 1,
            "interval_seconds": None, "clock": "sim"}
