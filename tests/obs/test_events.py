"""Structured event log: taxonomy, sequencing, ring, sinks, null path."""

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EVENT_SHARD_CRASH,
    EVENT_SHARD_RESTART,
    NULL_EVENTS,
    Event,
    EventLog,
    NullEventLog,
    validate_event_record,
)
from repro.obs.sinks import CallbackSink


def fixed_clock():
    state = {"t": 0.0}

    def clock():
        state["t"] += 1.0
        return state["t"]
    return clock


class TestEvent:
    def test_round_trips_through_dict(self):
        event = Event(3, 1.5, EVENT_SHARD_CRASH, request_id="req-7",
                      attrs={"shard": 1, "error": "WorkerCrashError"})
        rebuilt = Event.from_dict(event.to_dict())
        assert rebuilt.seq == 3
        assert rebuilt.ts == 1.5
        assert rebuilt.kind == EVENT_SHARD_CRASH
        assert rebuilt.request_id == "req-7"
        assert rebuilt.attrs == {"shard": 1, "error": "WorkerCrashError"}

    def test_dict_form_omits_empty_fields(self):
        record = Event(1, 0.0, EVENT_SHARD_RESTART).to_dict()
        assert "request_id" not in record
        assert "attrs" not in record
        assert record["schema"] == EVENT_SCHEMA_VERSION


class TestValidateEventRecord:
    def good(self):
        return {"schema": EVENT_SCHEMA_VERSION, "seq": 1, "ts": 0.5,
                "kind": EVENT_SHARD_CRASH}

    def test_accepts_a_minimal_record(self):
        validate_event_record(self.good())

    @pytest.mark.parametrize("key", ["schema", "seq", "ts", "kind"])
    def test_rejects_missing_required_key(self, key):
        record = self.good()
        del record[key]
        with pytest.raises(ValueError, match=key):
            validate_event_record(record)

    def test_rejects_wrong_schema_version(self):
        record = self.good()
        record["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            validate_event_record(record)

    @pytest.mark.parametrize("seq", [0, -1, "1", 1.5])
    def test_rejects_non_positive_or_non_int_seq(self, seq):
        record = self.good()
        record["seq"] = seq
        with pytest.raises(ValueError, match="seq"):
            validate_event_record(record)

    def test_unknown_kind_passes_by_default_but_fails_strict(self):
        record = self.good()
        record["kind"] = "made.up_kind"
        validate_event_record(record)
        with pytest.raises(ValueError, match="unknown event kind"):
            validate_event_record(record, known_kinds_only=True)

    def test_every_taxonomy_kind_is_strict_valid(self):
        for kind in EVENT_KINDS:
            record = self.good()
            record["kind"] = kind
            validate_event_record(record, known_kinds_only=True)


class TestEventLog:
    def test_seq_is_monotone_from_start_seq(self):
        log = EventLog(clock=fixed_clock(), start_seq=41)
        first = log.emit(EVENT_SHARD_CRASH)
        second = log.emit(EVENT_SHARD_RESTART)
        assert (first.seq, second.seq) == (42, 43)
        assert log.seq == 43

    def test_timestamps_come_from_the_pinned_clock(self):
        log = EventLog(clock=fixed_clock())
        assert [log.emit("a").ts, log.emit("b").ts] == [1.0, 2.0]

    def test_ring_is_bounded_but_counts_survive_eviction(self):
        log = EventLog(capacity=3, clock=fixed_clock())
        for _ in range(10):
            log.emit(EVENT_SHARD_CRASH)
        assert len(log) == 3
        assert log.counts[EVENT_SHARD_CRASH] == 10
        assert [event.seq for event in log.events()] == [8, 9, 10]

    def test_events_filters_by_kind(self):
        log = EventLog(clock=fixed_clock())
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert [event.seq for event in log.events("a")] == [1, 3]

    def test_sinks_receive_the_dict_form(self):
        seen = []
        log = EventLog(clock=fixed_clock(),
                       sinks=[CallbackSink(seen.append)])
        log.emit(EVENT_SHARD_CRASH, request_id="req-1", shard=0)
        assert seen == [{"schema": EVENT_SCHEMA_VERSION, "seq": 1,
                         "ts": 1.0, "kind": EVENT_SHARD_CRASH,
                         "request_id": "req-1", "attrs": {"shard": 0}}]

    def test_attach_adds_a_sink_later(self):
        log = EventLog(clock=fixed_clock())
        log.emit("before")
        seen = []
        log.attach(CallbackSink(seen.append))
        log.emit("after")
        assert [record["kind"] for record in seen] == ["after"]

    def test_emitted_records_validate(self):
        log = EventLog(clock=fixed_clock())
        for kind in EVENT_KINDS:
            record = log.emit(kind, detail="x").to_dict()
            validate_event_record(record, known_kinds_only=True)

    def test_stats_shape(self):
        log = EventLog(clock=fixed_clock())
        log.emit("b")
        log.emit("a")
        log.emit("b")
        assert log.stats() == {
            "seq": 3, "ring_size": 3, "counts": {"a": 1, "b": 2}}

    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0}, {"capacity": -3}, {"start_seq": -1}])
    def test_bad_construction_is_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EventLog(**kwargs)


class TestNullEventLog:
    def test_emit_is_a_noop_returning_none(self):
        assert NULL_EVENTS.emit(EVENT_SHARD_CRASH, shard=1) is None
        assert NULL_EVENTS.events() == []
        assert len(NULL_EVENTS) == 0
        assert NULL_EVENTS.seq == 0

    def test_disabled_flag_mirrors_the_metrics_convention(self):
        assert NULL_EVENTS.enabled is False
        assert EventLog().enabled is True

    def test_stats_shape_matches_the_real_log(self):
        assert set(NullEventLog().stats()) == set(EventLog().stats())
