"""Exporter round-trips and registry-algebra laws.

The telemetry plane's exchange formats must survive a full
serialize -> re-parse cycle without losing information, and the
merge/delta algebra the sharded service leans on must obey the usual
laws (commutativity, delta-of-merge) so aggregated snapshots mean what
they claim.
"""

import json

import pytest

from repro.obs.export import chrome_trace, span_count, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import (
    parse_openmetrics,
    render_openmetrics,
    sanitized_metrics,
)
from repro.obs.timeseries import Snapshotter, registry_from_dict
from repro.obs.tracer import Tracer


def shard_registry(seed: int) -> MetricsRegistry:
    """A registry shaped like one shard's contribution."""
    registry = MetricsRegistry()
    registry.counter("service.requests.completed").inc(seed * 3 + 1)
    registry.counter(f"service.shard.{seed}.units").inc(seed + 5)
    registry.gauge("service.queue_depth").set(seed)
    histogram = registry.histogram("service.request.wall_seconds",
                                   (0.1, 1.0, 10.0))
    for value in (0.05 * (seed + 1), 0.5, 2.0 * seed + 0.2):
        histogram.observe(value)
    return registry


class TestOpenMetricsRoundTrip:
    def test_parse_inverts_render_modulo_sanitized_names(self):
        registry = shard_registry(2)
        record = Snapshotter(registry, clock=lambda: 7.5).sample() \
            .to_dict()
        parsed = parse_openmetrics(render_openmetrics(record))
        expected = sanitized_metrics(record["metrics"])
        # the exposition adds exactly two meta gauges on top
        assert parsed["gauges"].pop("jmake_snapshot_seq") == 1
        assert parsed["gauges"].pop(
            "jmake_snapshot_timestamp_seconds") == 7.5
        assert parsed == expected

    def test_rendering_is_deterministic(self):
        record = Snapshotter(shard_registry(1),
                             clock=lambda: 0.0).sample().to_dict()
        assert render_openmetrics(record) == render_openmetrics(record)
        assert parse_openmetrics(render_openmetrics(record)) == \
            parse_openmetrics(render_openmetrics(record))

    def test_parsed_payload_rebuilds_into_a_registry(self):
        record = Snapshotter(shard_registry(1),
                             clock=lambda: 0.0).sample().to_dict()
        parsed = parse_openmetrics(render_openmetrics(record))
        parsed["gauges"].pop("jmake_snapshot_seq")
        parsed["gauges"].pop("jmake_snapshot_timestamp_seconds")
        rebuilt = registry_from_dict(parsed)
        assert rebuilt.to_dict() == parsed


class TestChromeTraceRoundTrip:
    def span_trees(self):
        tracer = Tracer()
        with tracer.span("commit.check", commit="abc123",
                         **{"commit.index": 0, "worker": 1}):
            with tracer.span("substrate.preprocess", path="a.c"):
                pass
            with tracer.span("verdict.record", status_code=0):
                pass
        return [tree.to_dict() for tree in tracer.drain()]

    def test_reparsed_json_preserves_every_span(self):
        trees = self.span_trees()
        trace = json.loads(json.dumps(chrome_trace(trees)))
        complete = [event for event in trace["traceEvents"]
                    if event.get("ph") == "X"]
        assert len(complete) == sum(span_count(t) for t in trees)
        by_name = {event["name"]: event for event in complete}
        assert by_name["substrate.preprocess"]["args"]["path"] == "a.c"
        assert by_name["commit.check"]["args"]["status"] == "ok"
        assert trace["displayTimeUnit"] == "ms"

    def test_written_file_reparses_with_consistent_timing(self, tmp_path):
        trees = self.span_trees()
        path = tmp_path / "trace.json"
        events_written = write_chrome_trace(str(path), trees)
        trace = json.loads(path.read_text())
        assert len(trace["traceEvents"]) == events_written
        root = next(event for event in trace["traceEvents"]
                    if event.get("name") == "commit.check")
        children = [event for event in trace["traceEvents"]
                    if event.get("ph") == "X"
                    and event["name"] != "commit.check"]
        # children nest inside the root slice on the trace timeline
        for child in children:
            assert child["ts"] >= root["ts"]
            assert child["ts"] + child["dur"] <= \
                root["ts"] + root["dur"] + 1e-3


class TestRegistryAlgebra:
    def merged(self, left, right):
        out = MetricsRegistry()
        out.merge(left)
        out.merge(right)
        return out

    def test_merge_is_commutative(self):
        a, b = shard_registry(0), shard_registry(3)
        assert self.merged(a, b).to_dict() == self.merged(b, a).to_dict()

    def test_merge_is_associative_across_three_shards(self):
        a, b, c = (shard_registry(seed) for seed in (0, 1, 2))
        left = self.merged(self.merged(a, b), c)
        right = self.merged(a, self.merged(b, c))
        assert left.to_dict() == right.to_dict()

    def test_delta_of_merge_recovers_the_other_operand(self):
        a, b = shard_registry(1), shard_registry(2)
        combined = self.merged(a, b)
        recovered = combined.delta(a)
        for name, value in b.to_dict()["counters"].items():
            assert recovered.to_dict()["counters"][name] == value

    def test_delta_against_self_is_empty_of_counts(self):
        a = shard_registry(2)
        zero = a.snapshot().delta(a).to_dict()
        assert all(value == 0 for value in zero["counters"].values())
        assert all(h["count"] == 0 for h in zero["histograms"].values())

    def test_serialized_round_trip_commutes_with_merge(self):
        """merge(from_dict(x), from_dict(y)) == from_dict over merge."""
        a, b = shard_registry(0), shard_registry(4)
        via_dicts = self.merged(registry_from_dict(a.to_dict()),
                                registry_from_dict(b.to_dict()))
        direct = self.merged(a, b)
        assert via_dicts.to_dict() == direct.to_dict()

    def test_histogram_merge_requires_matching_buckets(self):
        a = MetricsRegistry()
        a.histogram("h", (1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", (5.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)
