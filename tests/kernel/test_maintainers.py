"""Tests for the MAINTAINERS database."""

from repro.kernel.maintainers import MaintainersDb, MaintainersEntry


def sample_db():
    return MaintainersDb([
        MaintainersEntry(
            name="NETWORKING DRIVERS",
            maintainers=["Net Maintainer <net@example.org>"],
            lists=["netdev@vger.kernel.org",
                   "linux-kernel@vger.kernel.org"],
            file_patterns=["drivers/net/"]),
        MaintainersEntry(
            name="E1000 DRIVER",
            maintainers=["Intel Person <intel@example.org>"],
            lists=["netdev@vger.kernel.org"],
            file_patterns=["drivers/net/e1000.c"]),
        MaintainersEntry(
            name="HEADERS",
            maintainers=["Header Person <hdr@example.org>"],
            lists=["linux-kernel@vger.kernel.org"],
            file_patterns=["include/linux/*.h"]),
    ])


class TestMatching:
    def test_directory_pattern_matches_subtree(self):
        db = sample_db()
        assert "NETWORKING DRIVERS" in \
            db.subsystems_for_path("drivers/net/wifi.c")

    def test_exact_pattern(self):
        db = sample_db()
        names = db.subsystems_for_path("drivers/net/e1000.c")
        assert "E1000 DRIVER" in names
        assert "NETWORKING DRIVERS" in names  # overlapping entries

    def test_glob_pattern(self):
        db = sample_db()
        assert db.subsystems_for_path("include/linux/netdevice.h") == \
            ["HEADERS"]
        assert db.subsystems_for_path("include/linux/sub/dir.h") == []

    def test_no_match(self):
        assert sample_db().subsystems_for_path("fs/ext4/inode.c") == []

    def test_lists_deduplicated(self):
        db = sample_db()
        lists = db.lists_for_path("drivers/net/e1000.c")
        assert lists.count("netdev@vger.kernel.org") == 1

    def test_maintainer_emails(self):
        db = sample_db()
        emails = db.maintainer_emails_for_path("drivers/net/e1000.c")
        assert emails == {"net@example.org", "intel@example.org"}


class TestRoundTrip:
    def test_render_parse(self):
        db = sample_db()
        reparsed = MaintainersDb.parse(db.render())
        assert len(reparsed) == len(db)
        assert reparsed.entries[0].name == "NETWORKING DRIVERS"
        assert reparsed.entries[0].lists == [
            "netdev@vger.kernel.org", "linux-kernel@vger.kernel.org"]
        assert reparsed.entries[0].file_patterns == ["drivers/net/"]
        assert reparsed.entries[1].maintainers == \
            ["Intel Person <intel@example.org>"]

    def test_parse_skips_prose(self):
        text = ("Descriptions of section entries\n\n"
                "FIRST ENTRY\nM:\tSomeone <s@x.org>\nF:\tfs/\n")
        db = MaintainersDb.parse(text)
        assert len(db) == 1
