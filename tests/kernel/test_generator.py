"""Tests for the synthetic tree generator, including end-to-end builds."""

import pytest

from repro.kbuild.build import BuildSystem
from repro.kernel.generator import KernelTreeGenerator, generate_tree
from repro.kernel.layout import HazardKind, default_tree_spec


@pytest.fixture(scope="module")
def tree():
    return generate_tree()


@pytest.fixture(scope="module")
def build_system(tree):
    return BuildSystem(
        tree.provider(),
        bootstrap_paths=tree.bootstrap_paths,
        rebuild_trigger_paths=tree.rebuild_triggers,
        path_lister=lambda: sorted(tree.files),
    )


class TestDeterminism:
    def test_same_spec_same_tree(self):
        a = KernelTreeGenerator(default_tree_spec()).generate()
        b = KernelTreeGenerator(default_tree_spec()).generate()
        assert a.files == b.files

    def test_different_seed_differs(self):
        a = generate_tree()
        b = KernelTreeGenerator(
            default_tree_spec(seed="other-seed")).generate()
        assert a.files != b.files


class TestStructure:
    def test_core_files_present(self, tree):
        for path in ("Makefile", "Kconfig", "MAINTAINERS",
                     "kernel/bounds.c", "include/linux/kernel.h"):
            assert path in tree.files

    def test_arches_emitted(self, tree):
        for directory in ("x86", "arm", "powerpc", "mips", "blackfin",
                          "parisc", "s390", "sparc"):
            assert f"arch/{directory}/Kconfig" in tree.files
            assert f"arch/{directory}/Makefile" in tree.files

    def test_defconfigs_emitted(self, tree):
        assert "arch/x86/configs/x86_64_defconfig" in tree.files
        assert "arch/arm/configs/multi_v7_defconfig" in tree.files

    def test_subsystems_emitted(self, tree):
        assert "drivers/net/Makefile" in tree.files
        assert "drivers/net/Kconfig" in tree.files
        assert "drivers/staging/comedi/Makefile" in tree.files

    def test_driver_counts(self, tree):
        net_drivers = [path for path in tree.driver_files()
                       if path.startswith("drivers/net/")]
        # 10 drivers + 2 composite parts
        assert len(net_drivers) == 12

    def test_ignored_dirs_present(self, tree):
        assert any(path.startswith("Documentation/") for path in tree.files)
        assert any(path.startswith("scripts/") for path in tree.files)
        assert any(path.startswith("tools/") for path in tree.files)

    def test_prom_init_analogue(self, tree):
        assert "arch/powerpc/kernel/prom_init.c" in tree.files
        assert "arch/powerpc/kernel/prom_init.c" in tree.rebuild_triggers

    def test_maintainers_cover_subsystems(self, tree):
        assert tree.maintainers.subsystems_for_path("drivers/net/netdrv0.c")
        assert tree.maintainers.subsystems_for_path(
            "arch/arm/kernel/arm_setup0.c")

    def test_hazards_injected(self, tree):
        seen = {kind for info in tree.info.values()
                for kind in info.hazards}
        # All Table IV categories must exist somewhere in the tree.
        assert HazardKind.CHOICE_UNSET in seen
        assert HazardKind.NEVER_SET in seen
        assert HazardKind.MODULE_ONLY in seen
        assert HazardKind.UNUSED_MACRO in seen

    def test_affine_drivers_exist(self, tree):
        affine = [info for info in tree.info.values()
                  if info.affine_arch or info.arch_gate]
        assert affine, "expected some arch-affine drivers"


class TestEndToEndBuild:
    def test_allyesconfig_builds(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        assert config.enabled("NETDRV")
        assert config.enabled("MODULES")

    def test_choice_hazard_symbols_off_under_allyes(self, build_system,
                                                    tree):
        config = build_system.make_config("x86_64", "allyesconfig")
        for symbol in tree.hazard_symbols[HazardKind.CHOICE_UNSET]:
            if symbol in build_system.config_model("x86_64").names():
                assert not config.enabled(symbol), symbol

    def test_never_set_symbols_not_in_model(self, build_system, tree):
        model = build_system.config_model("x86_64")
        for symbol in tree.hazard_symbols[HazardKind.NEVER_SET]:
            assert symbol not in model

    def test_most_drivers_compile_on_x86(self, build_system, tree):
        config = build_system.make_config("x86_64", "allyesconfig")
        total = ok = 0
        for path in tree.driver_files():
            total += 1
            if not build_system.is_buildable(path, "x86_64", config):
                continue
            result = build_system.make_i([path], "x86_64", config)[0]
            if result.ok:
                ok += 1
        assert total > 50
        assert ok / total > 0.75

    def test_affine_driver_fails_x86_compiles_elsewhere(self, build_system,
                                                        tree):
        affine = [info for info in tree.info.values()
                  if info.affine_arch == "arm"]
        assert affine
        info = affine[0]
        x86 = build_system.make_config("x86_64", "allyesconfig")
        arm = build_system.make_config("arm", "allyesconfig")
        x86_result = build_system.make_i([info.path], "x86_64", x86)[0]
        assert not x86_result.ok
        arm_result = build_system.make_i([info.path], "arm", arm)[0]
        assert arm_result.ok

    def test_arch_gated_driver(self, build_system, tree):
        gated = [info for info in tree.info.values() if info.arch_gate]
        if not gated:
            pytest.skip("no Makefile-gated drivers in this seed")
        info = gated[0]
        arch = info.arch_gate.split("_")[0].lower()
        arch_name = {"x86": "x86_64"}.get(arch, arch)
        x86 = build_system.make_config("x86_64", "allyesconfig")
        if arch_name != "x86_64":
            assert not build_system.is_buildable(info.path, "x86_64", x86)

    def test_full_object_compile(self, build_system, tree):
        config = build_system.make_config("x86_64", "allyesconfig")
        drivers = [path for path in tree.driver_files()
                   if path.startswith("fs/ext4/")]
        obj = build_system.make_o(drivers[0], "x86_64", config)
        assert obj.symbols

    def test_arch_kernel_file_compiles_natively(self, build_system):
        config = build_system.make_config("arm", "allyesconfig")
        obj = build_system.make_o("arch/arm/kernel/arm_setup0.c",
                                  "arm", config)
        assert obj.symbols == ["arm_setup0_init"]

    def test_defconfig_usable(self, build_system):
        config = build_system.make_config("x86_64", "x86_64_defconfig")
        assert config.enabled("NETDRV")

    def test_negative_dep_driver_rescued_by_defconfig(self, build_system,
                                                      tree):
        """The §V-B allyesconfig (84%) vs +configs (85%) mechanism."""
        model = build_system.config_model("x86_64")
        allyes = build_system.make_config("x86_64", "allyesconfig")
        negative = []
        for name in model.names():
            symbol = model.get(name)
            if symbol.depends_on is not None and \
                    any("!" in str(symbol.depends_on) for _ in [0]):
                if "!" in str(symbol.depends_on) and \
                        not allyes.enabled(name):
                    negative.append(name)
        assert negative, "expected negative-dependency drivers"
        defcfg = build_system.make_config("x86_64", "x86_64_defconfig")
        rescued = [name for name in negative if defcfg.enabled(name)]
        assert rescued, "defconfig should rescue some negative-dep drivers"
