"""The deprecated pre-``repro.api`` entry points: warn but still work.

Every test scopes ``-W error::DeprecationWarning`` locally, so the new
names are proven warning-free under the strictest filter while the old
names are proven to (a) warn and (b) keep behaving identically.
"""

import warnings

import pytest

from repro import api
from repro.core.jmake import JMake
from repro.evalsuite.runner import EvaluationRunner


@pytest.fixture
def strict_deprecations():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


class TestOldNamesWarn:
    def test_jmake_constructor_warns(self):
        with pytest.warns(DeprecationWarning,
                          match="repro.api.CheckSession"):
            JMake()

    def test_jmake_from_generated_tree_warns(self):
        tree = api.generate_tree()
        with pytest.warns(DeprecationWarning):
            JMake.from_generated_tree(tree)

    def test_evaluation_runner_warns(self, small_corpus):
        with pytest.warns(DeprecationWarning,
                          match="repro.api.EvaluationSession"):
            EvaluationRunner(small_corpus)


class TestOldNamesStillWork:
    def test_jmake_is_a_check_session(self):
        with pytest.warns(DeprecationWarning):
            session = JMake()
        assert isinstance(session, api.CheckSession)

    def test_runner_verdicts_match_session(self, small_corpus):
        with pytest.warns(DeprecationWarning):
            runner = EvaluationRunner(small_corpus)
        old = runner.run(limit=2, use_ground_truth_janitors=True)
        new = api.EvaluationSession(small_corpus).run(
            limit=2, use_ground_truth_janitors=True)
        assert old.canonical_records() == new.canonical_records()


class TestNewNamesAreQuiet:
    def test_check_session_is_warning_free(self, strict_deprecations):
        tree = api.generate_tree()
        api.CheckSession.from_generated_tree(tree)

    def test_evaluation_session_is_warning_free(self, small_corpus,
                                                strict_deprecations):
        api.EvaluationSession(small_corpus)

    def test_facade_helpers_are_warning_free(self, small_corpus,
                                             strict_deprecations):
        api.validate_jobs(4)
        api.serve(small_corpus)
