"""The deprecated pre-``repro.api`` entry points: warn but still work.

Every test scopes ``-W error::DeprecationWarning`` locally, so the new
names are proven warning-free under the strictest filter while the old
names are proven to (a) warn and (b) keep behaving identically.
"""

import warnings

import pytest

from repro import api
from repro.core.jmake import JMake
from repro.evalsuite.runner import EvaluationRunner


@pytest.fixture
def strict_deprecations():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


class TestOldNamesWarn:
    def test_jmake_constructor_warns(self):
        with pytest.warns(DeprecationWarning,
                          match="repro.api.CheckSession"):
            JMake()

    def test_jmake_from_generated_tree_warns(self):
        tree = api.generate_tree()
        with pytest.warns(DeprecationWarning):
            JMake.from_generated_tree(tree)

    def test_evaluation_runner_warns(self, small_corpus):
        with pytest.warns(DeprecationWarning,
                          match="repro.api.EvaluationSession"):
            EvaluationRunner(small_corpus)


class TestDisplacedModuleAttributes:
    """Store/watch types that briefly lived on repro.journal and
    repro.service: the old spellings warn and forward to the
    canonical objects."""

    def test_service_watch_names_warn_and_forward(self):
        import repro.service as service
        with pytest.warns(DeprecationWarning,
                          match="repro.service.WatchSession is "
                                "deprecated"):
            displaced = service.WatchSession
        assert displaced is api.WatchSession

    def test_service_watch_submodule_is_not_shimmed(self):
        # repro.service.watch names the submodule (Python binds it on
        # the package at import), so it must never warn
        import warnings

        import repro.service as service
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            module = service.watch
        assert module.WatchSession is api.WatchSession

    def test_journal_store_names_warn_and_forward(self):
        import repro.journal as journal
        with pytest.warns(DeprecationWarning,
                          match="repro.journal.VerdictStore is "
                                "deprecated"):
            displaced = journal.VerdictStore
        assert displaced is api.VerdictStore

    def test_journal_ingest_ledger_warns(self):
        import repro.journal as journal
        with pytest.warns(DeprecationWarning, match="repro.api"):
            displaced = journal.ingest_ledger
        assert displaced is api.ingest_ledger

    def test_unknown_attributes_still_raise(self):
        import repro.journal as journal
        import repro.service as service
        with pytest.raises(AttributeError):
            journal.NoSuchThing
        with pytest.raises(AttributeError):
            service.NoSuchThing


class TestOldNamesStillWork:
    def test_jmake_is_a_check_session(self):
        with pytest.warns(DeprecationWarning):
            session = JMake()
        assert isinstance(session, api.CheckSession)

    def test_runner_verdicts_match_session(self, small_corpus):
        with pytest.warns(DeprecationWarning):
            runner = EvaluationRunner(small_corpus)
        old = runner.run(limit=2, use_ground_truth_janitors=True)
        new = api.EvaluationSession(small_corpus).run(
            limit=2, use_ground_truth_janitors=True)
        assert old.canonical_records() == new.canonical_records()


class TestNewNamesAreQuiet:
    def test_check_session_is_warning_free(self, strict_deprecations):
        tree = api.generate_tree()
        api.CheckSession.from_generated_tree(tree)

    def test_evaluation_session_is_warning_free(self, small_corpus,
                                                strict_deprecations):
        api.EvaluationSession(small_corpus)

    def test_facade_helpers_are_warning_free(self, small_corpus,
                                             strict_deprecations):
        api.validate_jobs(4)
        api.serve(small_corpus)

    def test_store_surface_is_warning_free(self, tmp_path,
                                           strict_deprecations):
        path = str(tmp_path / "v.sqlite")
        with api.open_store(path) as store:
            api.query_verdicts(store)
        api.janitor_report(path)
        api.VerdictFilter(commit="c1")
        api.WatchConfig(batch_size=2)
        api.resolve_outputs(None, {"stats": None})
