"""The ``repro.api`` facade: completeness and the one-shot helpers."""

import pytest

from repro import api


class TestSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_sessions_are_the_real_classes(self):
        from repro.core.jmake import CheckSession
        from repro.evalsuite.runner import EvaluationSession
        from repro.service import CheckService
        assert api.CheckSession is CheckSession
        assert api.EvaluationSession is EvaluationSession
        assert api.CheckService is CheckService

    def test_schema_constants_exported(self):
        assert api.SCHEMA_VERSION >= 2
        assert callable(api.migrate_record)


class TestValidateJobs:
    def test_accepts_positive_ints(self):
        assert api.validate_jobs(1) == 1
        assert api.validate_jobs(25) == 25

    @pytest.mark.parametrize("bad", [0, -3, 2.5, "4", None, True])
    def test_rejects_everything_else(self, bad):
        with pytest.raises(ValueError,
                           match="must be a positive integer"):
            api.validate_jobs(bad)

    def test_custom_label_lands_in_message(self):
        with pytest.raises(ValueError, match="--shards"):
            api.validate_jobs(0, what="--shards")


class TestOneShotHelpers:
    def test_check_patch_on_demo_edit(self):
        tree = api.generate_tree()
        path = "drivers/staging/comedi/comedi0.c"
        original = tree.files[path]
        edited = original.replace("int status = 0;",
                                  "int status = 0;\n\tint extra = 1;")
        files = dict(tree.files)
        files[path] = edited
        worktree = api.CheckSession.worktree_for_files(files)
        patch = api.Patch(files=[api.diff_texts(path, original,
                                                edited)])
        report = api.check_patch(worktree, patch, tree=tree)
        assert report.verdict == "CERTIFIED"
        assert report.to_dict()["schema_version"] == api.SCHEMA_VERSION

    def test_check_commit_matches_session(self, small_corpus,
                                          checkable_commits):
        commit = checkable_commits[0]
        via_helper = api.check_commit(small_corpus.tree,
                                      small_corpus.repository, commit)
        session = api.CheckSession.from_generated_tree(
            small_corpus.tree)
        direct = session.check_commit(small_corpus.repository, commit)
        assert via_helper.to_dict() == direct.to_dict()

    def test_evaluate_helper_runs_window(self, small_corpus):
        result = api.evaluate(small_corpus, limit=3,
                              use_ground_truth_janitors=True)
        assert len(result.patches) == 3

    def test_serve_helper_builds_service(self, small_corpus,
                                         checkable_commits):
        service = api.serve(small_corpus,
                            config=api.ServiceConfig(shards=2))
        results = service.check_commits(
            [checkable_commits[0].id])
        assert len(results) == 1
        assert results[0].verdict
