"""The ``repro.api`` facade: completeness and the one-shot helpers."""

import pytest

from repro import api


class TestSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_sessions_are_the_real_classes(self):
        from repro.core.jmake import CheckSession
        from repro.evalsuite.runner import EvaluationSession
        from repro.service import CheckService
        assert api.CheckSession is CheckSession
        assert api.EvaluationSession is EvaluationSession
        assert api.CheckService is CheckService

    def test_schema_constants_exported(self):
        assert api.SCHEMA_VERSION >= 2
        assert callable(api.migrate_record)

    def test_store_and_watch_names_are_the_real_classes(self):
        from repro.service.watch import WatchSession, WindowSource
        from repro.store import VerdictStore
        from repro.store.query import StoredVerdict, VerdictFilter
        assert api.VerdictStore is VerdictStore
        assert api.VerdictFilter is VerdictFilter
        assert api.StoredVerdict is StoredVerdict
        assert api.WatchSession is WatchSession
        assert api.WindowSource is WindowSource
        assert isinstance(api.OUT_DIR_DEFAULTS, dict)


class TestValidateJobs:
    def test_accepts_positive_ints(self):
        assert api.validate_jobs(1) == 1
        assert api.validate_jobs(25) == 25

    @pytest.mark.parametrize("bad", [0, -3, 2.5, "4", None, True])
    def test_rejects_everything_else(self, bad):
        with pytest.raises(ValueError,
                           match="must be a positive integer"):
            api.validate_jobs(bad)

    def test_custom_label_lands_in_message(self):
        with pytest.raises(ValueError, match="--shards"):
            api.validate_jobs(0, what="--shards")


class TestOneShotHelpers:
    def test_check_patch_on_demo_edit(self):
        tree = api.generate_tree()
        path = "drivers/staging/comedi/comedi0.c"
        original = tree.files[path]
        edited = original.replace("int status = 0;",
                                  "int status = 0;\n\tint extra = 1;")
        files = dict(tree.files)
        files[path] = edited
        worktree = api.CheckSession.worktree_for_files(files)
        patch = api.Patch(files=[api.diff_texts(path, original,
                                                edited)])
        report = api.check_patch(worktree, patch, tree=tree)
        assert report.verdict == "CERTIFIED"
        assert report.to_dict()["schema_version"] == api.SCHEMA_VERSION

    def test_check_commit_matches_session(self, small_corpus,
                                          checkable_commits):
        commit = checkable_commits[0]
        via_helper = api.check_commit(small_corpus.tree,
                                      small_corpus.repository, commit)
        session = api.CheckSession.from_generated_tree(
            small_corpus.tree)
        direct = session.check_commit(small_corpus.repository, commit)
        assert via_helper.to_dict() == direct.to_dict()

    def test_evaluate_helper_runs_window(self, small_corpus):
        result = api.evaluate(small_corpus, limit=3,
                              use_ground_truth_janitors=True)
        assert len(result.patches) == 3

    def test_serve_helper_builds_service(self, small_corpus,
                                         checkable_commits):
        service = api.serve(small_corpus,
                            config=api.ServiceConfig(shards=2))
        results = service.check_commits(
            [checkable_commits[0].id])
        assert len(results) == 1
        assert results[0].verdict


class TestReadSurface:
    """The fleet-mode read helpers: open, query, rank, watch."""

    def test_open_store_round_trips_a_record(self, tmp_path):
        record = api.check_patch(
            api.CheckSession.worktree_for_files(
                {"a.c": "int x;\n"}),
            api.Patch(files=[api.diff_texts("a.c", "int x;\n",
                                            "int x;\nint y;\n")]),
            tree=None)
        path = str(tmp_path / "v.sqlite")
        with api.open_store(path) as store:
            store.ingest(dict(record.to_dict(), commit="c1",
                              journal={"dedup_key": "c1"}))
        assert api.query_verdicts(path)[0].commit == "c1"

    def test_query_verdicts_accepts_path_and_object(self, tmp_path):
        path = str(tmp_path / "v.sqlite")
        with api.open_store(path) as store:
            assert api.query_verdicts(store) == []
        assert api.query_verdicts(path) == []

    def test_janitor_report_empty_store(self, tmp_path):
        assert api.janitor_report(str(tmp_path / "v.sqlite")) == []

    def test_watch_is_the_service_entry_point(self):
        import repro.service.watch as watch_module
        assert api.WatchSession is watch_module.WatchSession


class TestResolveOutputs:
    def test_overrides_win_over_out_dir(self, tmp_path):
        out = api.resolve_outputs(str(tmp_path / "fleet"), {
            "stats": None, "journal": "/x/custom.jnl"})
        assert out["stats"].endswith("fleet/stats.json")
        assert out["journal"] == "/x/custom.jnl"
        import os
        assert os.path.isdir(tmp_path / "fleet")

    def test_without_out_dir_unset_sinks_stay_off(self):
        out = api.resolve_outputs(None, {"stats": None,
                                         "events": "e.jsonl"})
        assert out == {"stats": None, "events": "e.jsonl"}

    def test_unknown_sink_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown output sink"):
            api.resolve_outputs(None, {"flotsam": None})

    def test_out_dir_over_a_file_is_rejected(self, tmp_path):
        clash = tmp_path / "taken"
        clash.write_text("not a directory")
        with pytest.raises(ValueError, match="not a directory"):
            api.resolve_outputs(str(clash), {"stats": None})
