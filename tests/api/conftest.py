"""Fixtures for the facade suite (shared with the service suite)."""

from tests.service.conftest import checkable_commits  # noqa: F401
