"""Tests for text helpers."""

from hypothesis import given, strategies as st

from repro.util.text import (
    ends_with_continuation,
    join_spliced_lines,
    split_lines_keepends,
)


class TestSplitLines:
    def test_empty(self):
        assert split_lines_keepends("") == []

    def test_trailing_newline(self):
        assert split_lines_keepends("a\nb\n") == ["a\n", "b\n"]

    def test_no_trailing_newline(self):
        assert split_lines_keepends("a\nb") == ["a\n", "b"]

    def test_single_newline(self):
        assert split_lines_keepends("\n") == ["\n"]

    @given(st.text(alphabet=st.characters(blacklist_characters="\r"),
                   max_size=200))
    def test_roundtrip(self, text):
        assert "".join(split_lines_keepends(text)) == text


class TestContinuation:
    def test_plain_line(self):
        assert not ends_with_continuation("int x;\n")

    def test_backslash(self):
        assert ends_with_continuation("#define M(x) \\\n")

    def test_backslash_with_trailing_spaces(self):
        # gcc warns but accepts; we treat trailing blanks as continuation.
        assert ends_with_continuation("#define M(x) \\   \n")

    def test_backslash_mid_line(self):
        assert not ends_with_continuation("char *s = \"a\\n\";\n")


class TestJoinSpliced:
    def test_simple_join(self):
        lines = ["#define M(x) \\\n", "  ((x) + 1)\n", "int y;\n"]
        logical, nxt = join_spliced_lines(lines, 0)
        assert logical == "#define M(x)   ((x) + 1)"
        assert nxt == 2

    def test_no_continuation(self):
        lines = ["int x;\n"]
        logical, nxt = join_spliced_lines(lines, 0)
        assert logical == "int x;"
        assert nxt == 1

    def test_continuation_at_eof_kept_literal(self):
        lines = ["#define M \\\n"]
        logical, nxt = join_spliced_lines(lines, 0)
        # Nothing to splice with: the backslash stays.
        assert logical.endswith("\\")
        assert nxt == 1

    def test_multi_level_splice(self):
        lines = ["a \\\n", "b \\\n", "c\n"]
        logical, nxt = join_spliced_lines(lines, 0)
        assert logical == "a b c"
        assert nxt == 3
