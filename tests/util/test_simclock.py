"""Tests for the simulated clock."""

import pytest

from repro.util.simclock import SimClock, StepTimer


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_charge_advances(self):
        clock = SimClock()
        clock.charge("config", 5.0)
        clock.charge("make_i", 2.5)
        assert clock.now == 7.5

    def test_charge_records_spans(self):
        clock = SimClock()
        span = clock.charge("config", 5.0)
        assert span.start == 0.0
        assert span.end == 5.0
        assert clock.spans[0].label == "config"

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge("x", -1.0)

    def test_zero_charge_allowed(self):
        clock = SimClock()
        clock.charge("noop", 0.0)
        assert clock.now == 0.0
        assert len(clock.spans) == 1

    def test_durations_filter_by_label(self):
        clock = SimClock()
        clock.charge("a", 1.0)
        clock.charge("b", 2.0)
        clock.charge("a", 3.0)
        assert clock.durations("a") == [1.0, 3.0]
        assert clock.total("a") == 4.0
        assert clock.total() == 6.0

    def test_reset(self):
        clock = SimClock()
        clock.charge("a", 1.0)
        clock.reset()
        assert clock.now == 0.0
        assert clock.spans == []


class TestStepTimer:
    def test_charges_on_exit(self):
        clock = SimClock()
        with StepTimer(clock, "make_o") as timer:
            timer.cost = 4.0
        assert clock.total("make_o") == 4.0
        assert timer.span is not None
        assert timer.span.duration == 4.0

    def test_no_charge_on_exception(self):
        clock = SimClock()
        with pytest.raises(RuntimeError):
            with StepTimer(clock, "make_o") as timer:
                timer.cost = 4.0
                raise RuntimeError("boom")
        assert clock.total() == 0.0
