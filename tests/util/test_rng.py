"""Tests for the deterministic RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_string_seed_is_stable(self):
        a = DeterministicRng("corpus-v1")
        b = DeterministicRng("corpus-v1")
        assert a.seed == b.seed
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_fork_is_order_independent(self):
        root1 = DeterministicRng(7)
        root1.random()  # consume state on the root stream
        fork_after = root1.fork("commits")

        root2 = DeterministicRng(7)
        fork_before = root2.fork("commits")

        assert fork_after.randint(0, 10**9) == fork_before.randint(0, 10**9)

    def test_forks_are_independent_by_namespace(self):
        root = DeterministicRng(7)
        a = root.fork("a")
        b = root.fork("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_label_tracks_lineage(self):
        root = DeterministicRng(7)
        child = root.fork("tree").fork("drivers")
        assert child.label == "root/tree/drivers"


class TestDraws:
    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).choice([])

    def test_bernoulli_bounds(self):
        rng = DeterministicRng(0)
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)
        with pytest.raises(ValueError):
            rng.bernoulli(-0.1)

    def test_bernoulli_extremes(self):
        rng = DeterministicRng(0)
        assert not any(rng.bernoulli(0.0) for _ in range(100))
        assert all(rng.bernoulli(1.0) for _ in range(100))

    def test_weighted_choice_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).weighted_choice(["a", "b"], [1.0])

    def test_weighted_choice_respects_zero_weight(self):
        rng = DeterministicRng(3)
        draws = {rng.weighted_choice(["a", "b"], [0.0, 1.0])
                 for _ in range(50)}
        assert draws == {"b"}

    @given(st.integers(min_value=1, max_value=50))
    def test_zipf_rank_in_range(self, n):
        rng = DeterministicRng(5)
        for _ in range(20):
            assert 0 <= rng.zipf_rank(n) < n

    def test_zipf_rank_biased_toward_zero(self):
        rng = DeterministicRng(11)
        draws = [rng.zipf_rank(100, skew=1.2) for _ in range(2000)]
        count_low = sum(1 for draw in draws if draw < 10)
        count_high = sum(1 for draw in draws if draw >= 90)
        assert count_low > count_high * 3

    def test_zipf_rank_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).zipf_rank(0)

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=100))
    def test_randint_inclusive_bounds(self, low, high):
        if low > high:
            low, high = high, low
        value = DeterministicRng(9).randint(low, high)
        assert low <= value <= high

    def test_sample_without_replacement(self):
        rng = DeterministicRng(1)
        drawn = rng.sample(range(10), 10)
        assert sorted(drawn) == list(range(10))

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(1)
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))
