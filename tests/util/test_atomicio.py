"""Crash-atomic write helper behavior."""

import json
import os

import pytest

from repro.util.atomicio import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
)


class TestAtomicWriteBytes:
    def test_creates_the_file(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(str(target), b"payload")
        assert target.read_bytes() == b"payload"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        atomic_write_bytes(str(target), b"new")
        assert target.read_bytes() == b"new"

    def test_leaves_no_temp_files_behind(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(str(target), b"x")
        atomic_write_bytes(str(target), b"y")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bin"]

    def test_failed_write_preserves_the_old_file(self, tmp_path,
                                                 monkeypatch):
        target = tmp_path / "out.bin"
        target.write_bytes(b"precious")

        def explode(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            atomic_write_bytes(str(target), b"doomed")
        # old content intact, temp file cleaned up
        assert target.read_bytes() == b"precious"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bin"]

    def test_fsync_false_still_writes(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(str(target), b"fast", fsync=False)
        assert target.read_bytes() == b"fast"


class TestTextAndJson:
    def test_text_round_trip(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(str(target), "héllo\n")
        assert target.read_text(encoding="utf-8") == "héllo\n"

    def test_json_is_sorted_and_newline_terminated(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(str(target), {"b": 2, "a": 1})
        text = target.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 1, "b": 2}


class TestFsyncDirectory:
    def test_missing_directory_is_a_no_op(self, tmp_path):
        fsync_directory(str(tmp_path / "never-created"))

    def test_real_directory_is_fine(self, tmp_path):
        fsync_directory(str(tmp_path))
