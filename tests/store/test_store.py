"""VerdictStore: transactional ingest, dedup, telemetry, dumps."""

import pytest

from repro.errors import SchemaError, StoreError
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.store import VerdictStore
from tests.store.conftest import v4_record


class TestIngest:
    def test_ingest_lands_and_is_queryable(self, store_path):
        with VerdictStore(store_path) as store:
            assert store.ingest(v4_record("c1")) is True
            assert store.has("c1")
            assert "c1" in store
            assert len(store) == 1
            assert store.get("c1")["commit"] == "c1"

    def test_duplicate_ingest_is_a_noop(self, store_path):
        with VerdictStore(store_path) as store:
            assert store.ingest(v4_record("c1")) is True
            assert store.ingest(v4_record("c1")) is False
            assert len(store) == 1

    def test_batch_reports_landed_and_duplicates(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest(v4_record("c1"))
            result = store.ingest_batch(
                [v4_record("c1"), v4_record("c2"), v4_record("c3")])
            assert result.ingested == 2
            assert result.duplicates == 1
            assert result.commits == ("c2", "c3")

    def test_rows_survive_reopen(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest(v4_record("c1"))
        with VerdictStore(store_path) as store:
            assert store.has("c1")

    def test_stored_records_are_migrated_to_current(self, store_path):
        from tests.store.conftest import v2_record
        from repro.core.report import SCHEMA_VERSION, migrate_record
        old = v2_record("c1")
        with VerdictStore(store_path) as store:
            store.ingest(old)
            stored = store.get("c1")
        assert stored["schema_version"] == SCHEMA_VERSION
        assert stored == migrate_record(old)


class TestPoisonedBatchRollsBack:
    def test_schema_error_lands_nothing(self, store_path):
        poisoned = v4_record("bad")
        del poisoned["verdict"]
        with VerdictStore(store_path) as store:
            with pytest.raises(SchemaError):
                store.ingest_batch([v4_record("c1"), poisoned,
                                    v4_record("c2")])
            # the whole batch rolled back — not even c1 landed
            assert len(store) == 0
            assert store.schema_errors == 1

    def test_inconsistent_fully_checked_poisons_the_batch(self,
                                                          store_path):
        record = v4_record("bad")
        record["verdict"] = "PARTIAL:arm"
        # fully_checked stays True: the two encodings now disagree
        with VerdictStore(store_path) as store:
            with pytest.raises(SchemaError, match="inconsistent"):
                store.ingest_batch([record])
            assert len(store) == 0


class TestIdentityGuard:
    def test_meta_binds_once_and_rebinds_identically(self, store_path):
        meta = {"mode": "watch", "corpus_seed": "s1"}
        with VerdictStore(store_path) as store:
            assert store.meta is None
            store.bind_meta(meta)
            store.bind_meta(dict(meta))
            assert store.meta == meta

    def test_foreign_run_identity_is_refused(self, store_path):
        with VerdictStore(store_path) as store:
            store.bind_meta({"corpus_seed": "s1"})
            with pytest.raises(StoreError,
                               match="belongs to a different run"):
                store.bind_meta({"corpus_seed": "s2"})


class TestTelemetry:
    def test_counters_and_gauges(self, store_path):
        metrics = MetricsRegistry()
        with VerdictStore(store_path, metrics=metrics) as store:
            store.ingest_batch([v4_record("c1"), v4_record("c2")])
            store.ingest(v4_record("c1"))
            store.query()
        data = metrics.to_dict()
        assert data["counters"]["store.ingested"] == 2
        assert data["counters"]["store.duplicates"] == 1
        assert data["counters"]["store.batches"] == 2
        assert data["counters"]["store.queries"] == 1
        assert data["counters"]["store.query_rows"] == 2
        assert data["gauges"]["store.verdicts"] == 2

    def test_lag_gauge(self, store_path):
        metrics = MetricsRegistry()
        with VerdictStore(store_path, metrics=metrics) as store:
            store.set_lag(7)
        assert metrics.to_dict()["gauges"]["store.lag"] == 7

    def test_ingest_events(self, store_path):
        events = EventLog()
        with VerdictStore(store_path, events=events) as store:
            store.ingest_batch([v4_record("c1")])
        assert events.counts["ingest.batch"] == 1
        assert events.counts["ingest.matview_refreshed"] == 1

    def test_schema_error_event(self, store_path):
        events = EventLog()
        poisoned = v4_record("bad")
        del poisoned["files"]
        with VerdictStore(store_path, events=events) as store:
            with pytest.raises(SchemaError):
                store.ingest_batch([poisoned])
        assert events.counts["ingest.schema_error"] == 1

    def test_stats_shape(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest(v4_record("c1"))
            stats = store.stats()
        assert stats["verdicts"] == 1
        assert stats["ingested"] == 1
        assert stats["batches"] == 1
        assert stats["path"] == store_path


class TestCanonicalDump:
    def test_dump_is_independent_of_ingest_order_and_batching(
            self, tmp_path):
        records = [v4_record(f"c{i}", files={
            f"drivers/f{i % 3}.c": [("x86_64", "allyesconfig",
                                     True, True)]})
            for i in range(6)]
        with VerdictStore(str(tmp_path / "a.sqlite")) as store_a:
            store_a.ingest_batch(records)
            dump_a = store_a.canonical_dump()
        with VerdictStore(str(tmp_path / "b.sqlite")) as store_b:
            for record in reversed(records):
                store_b.ingest(record)
            dump_b = store_b.canonical_dump()
        assert dump_a == dump_b

    def test_dump_counts_header(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest(v4_record("c1"))
            dump = store.canonical_dump()
        assert dump.startswith("verdict-store canonical dump\n"
                               "verdicts=1 file_rows=1\n")
