"""Relational layout and canonical row derivation."""

import sqlite3

import pytest

from repro.core.report import migrate_record
from repro.errors import StoreError
from repro.store import VerdictStore
from repro.store.schema import (
    STORE_SCHEMA_VERSION,
    canonical_json,
    file_rows,
    record_rows,
)
from tests.store.conftest import v3_record, v4_record


class TestFileRows:
    def test_attempts_become_rows_sorted_by_arch_config(self):
        entry = {"status": "ok", "attempts": [
            {"arch": "x86_64", "config": "allyesconfig",
             "i_ok": True, "o_ok": True},
            {"arch": "arm", "config": "allyesconfig",
             "i_ok": True, "o_ok": False},
        ]}
        rows = file_rows("a.c", entry)
        assert rows == [
            ("a.c", "arm", "allyesconfig", "ok", 1, 0),
            ("a.c", "x86_64", "allyesconfig", "ok", 1, 1),
        ]

    def test_retries_of_one_pair_are_or_merged(self):
        entry = {"status": "ok", "attempts": [
            {"arch": "x86_64", "config": "allyesconfig",
             "i_ok": True, "o_ok": False},
            {"arch": "x86_64", "config": "allyesconfig",
             "i_ok": False, "o_ok": True},
        ]}
        assert file_rows("a.c", entry) == [
            ("a.c", "x86_64", "allyesconfig", "ok", 1, 1)]

    def test_pre_v4_entries_fall_back_to_useful_archs(self):
        entry = {"status": "ok", "useful_archs": ["mips", "arm"]}
        assert file_rows("a.c", entry) == [
            ("a.c", "arm", "", "ok", 1, 1),
            ("a.c", "mips", "", "ok", 1, 1),
        ]

    def test_uncompiled_files_still_get_one_row(self):
        entry = {"status": "comment-only"}
        assert file_rows("a.h", entry) == [
            ("a.h", "", "", "comment-only", 0, 0)]

    def test_record_rows_are_path_sorted(self):
        record = migrate_record(v4_record(files={
            "z/last.c": [("x86_64", "allyesconfig", True, True)],
            "a/first.c": [("x86_64", "allyesconfig", True, True)],
        }))
        paths = [row[0] for row in record_rows(record)]
        assert paths == sorted(paths)


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        record = migrate_record(v4_record())
        shuffled = dict(reversed(list(record.items())))
        assert canonical_json(record) == canonical_json(shuffled)

    def test_round_trips_through_json(self):
        import json
        record = migrate_record(v4_record())
        assert json.loads(canonical_json(record)) == record


class TestLayoutGuard:
    def test_fresh_store_stamps_the_layout_version(self, store_path):
        with VerdictStore(store_path):
            pass
        conn = sqlite3.connect(store_path)
        row = conn.execute("SELECT value FROM meta WHERE "
                           "key = 'store_schema'").fetchone()
        conn.close()
        assert row == (str(STORE_SCHEMA_VERSION),)

    def test_reopening_same_layout_is_fine(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest(v4_record())
        with VerdictStore(store_path) as store:
            assert len(store) == 1

    def test_foreign_layout_is_refused(self, store_path):
        with VerdictStore(store_path):
            pass
        conn = sqlite3.connect(store_path)
        conn.execute("UPDATE meta SET value = '99' "
                     "WHERE key = 'store_schema'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="layout version 99"):
            VerdictStore(store_path)

    def test_non_database_file_is_refused(self, tmp_path):
        path = tmp_path / "not-a-db.sqlite"
        path.write_text("this is not SQLite\n" * 100)
        with pytest.raises(StoreError, match="cannot open"):
            VerdictStore(str(path))


class TestVersionTag:
    def test_canonical_records_in_dump_carry_v3_suffix(self, store_path):
        """The dump embeds canonical JSON; it must be current-schema."""
        with VerdictStore(store_path) as store:
            store.ingest(v3_record())
            dump = store.canonical_dump()
        assert '"schema_version":4' in dump
