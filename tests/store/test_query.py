"""Typed filters over the store — pure reads, never a compile."""

import pytest

from repro import api
from repro.errors import StoreError
from repro.core.report import FileStatus
from repro.store import VerdictFilter, VerdictStore
from tests.store.conftest import v4_record


@pytest.fixture
def populated(store_path):
    """Five verdicts spanning authors, archs, and verdict kinds."""
    records = [
        v4_record("c1", author=("Dan", "dan@example.org"), files={
            "drivers/scsi/a.c": [("x86_64", "allyesconfig",
                                  True, True)]}),
        v4_record("c2", author=("Dan", "dan@example.org"), files={
            "drivers/usb/b.c": [("arm", "allyesconfig", True, True),
                                ("x86_64", "allyesconfig",
                                 True, False)]}),
        v4_record("c3", author=("Eve", "eve@example.org"), files={
            "drivers/usb/b.c": [("mips", "allyesconfig",
                                 True, True)]}),
        v4_record("c4", author=("Eve", "eve@example.org"),
                  quarantined=("arm",), files={
            "drivers/net/c.c": [("x86_64", "allyesconfig",
                                 True, True)]}),
        v4_record("c5", author=None, files={
            "drivers/net/c.c": [("x86_64", "allmodconfig",
                                 True, True)]}),
        v4_record("c6", author=("Mal", "mal@example.org"),
                  status=FileStatus.O_FAILED, files={
            "drivers/net/d.c": [("x86_64", "allyesconfig",
                                 True, False)]}),
    ]
    with VerdictStore(store_path) as store:
        store.ingest_batch(records)
    return store_path


class TestFilters:
    def test_no_filter_returns_everything_commit_sorted(self,
                                                        populated):
        results = api.query_verdicts(populated)
        assert [v.commit for v in results] == \
            ["c1", "c2", "c3", "c4", "c5", "c6"]

    def test_by_commit(self, populated):
        results = api.query_verdicts(populated, commit="c2")
        assert len(results) == 1
        assert results[0].commit == "c2"
        assert results[0].record["schema_version"] == 4

    def test_by_path_returns_whole_verdicts(self, populated):
        results = api.query_verdicts(populated,
                                     path="drivers/usb/b.c")
        assert {v.commit for v in results} == {"c2", "c3"}
        # file rows come back complete, not just the matching ones
        assert all(v.files for v in results)

    def test_by_arch(self, populated):
        results = api.query_verdicts(populated, arch="mips")
        assert [v.commit for v in results] == ["c3"]

    def test_by_config(self, populated):
        results = api.query_verdicts(populated, config="allmodconfig")
        assert [v.commit for v in results] == ["c5"]

    def test_partial_kind_matches_by_prefix(self, populated):
        results = api.query_verdicts(populated, verdict="PARTIAL")
        assert [v.commit for v in results] == ["c4"]
        assert results[0].partial
        assert not results[0].fully_checked

    def test_exact_partial_verdict(self, populated):
        assert api.query_verdicts(populated, verdict="PARTIAL:arm")
        assert not api.query_verdicts(populated,
                                      verdict="PARTIAL:mips")

    def test_by_author(self, populated):
        results = api.query_verdicts(populated,
                                     author="eve@example.org")
        assert {v.commit for v in results} == {"c3", "c4"}

    def test_by_certified(self, populated):
        uncertified = api.query_verdicts(populated, certified=False)
        assert [v.commit for v in uncertified] == ["c6"]
        assert uncertified[0].verdict == "ATTENTION REQUIRED"

    def test_by_fully_checked(self, populated):
        partial = api.query_verdicts(populated, fully_checked=False)
        assert [v.commit for v in partial] == ["c4"]

    def test_by_status(self, populated):
        failed = api.query_verdicts(populated, status="o-failed")
        assert [v.commit for v in failed] == ["c6"]

    def test_limit(self, populated):
        assert len(api.query_verdicts(populated, limit=2)) == 2

    def test_ready_filter_object(self, populated):
        results = api.query_verdicts(
            populated, VerdictFilter(author="dan@example.org",
                                     arch="arm"))
        assert [v.commit for v in results] == ["c2"]

    def test_attempt_outcomes_survive(self, populated):
        (verdict,) = api.query_verdicts(populated, commit="c2")
        by_arch = {row.arch: row for row in verdict.files}
        assert by_arch["arm"].o_ok is True
        assert by_arch["x86_64"].o_ok is False


class TestValidation:
    def test_unknown_predicate(self, populated):
        with pytest.raises(StoreError, match="unknown filter"):
            api.query_verdicts(populated, flavour="spicy")

    def test_filter_and_kwargs_are_exclusive(self, populated):
        with pytest.raises(StoreError, match="not both"):
            api.query_verdicts(populated, VerdictFilter(), commit="c1")

    def test_bad_verdict_kind(self, populated):
        with pytest.raises(StoreError, match="verdict"):
            api.query_verdicts(populated, verdict="MAYBE")

    @pytest.mark.parametrize("bad", [0, -1, True, "3"])
    def test_bad_limit(self, populated, bad):
        with pytest.raises(StoreError, match="limit"):
            api.query_verdicts(populated, limit=bad)

    def test_non_string_predicate(self, populated):
        with pytest.raises(StoreError, match="must be a string"):
            api.query_verdicts(populated, arch=7)


class TestPureRead:
    def test_queries_never_compile(self, populated, monkeypatch):
        """Answering from the store must not touch the pipeline."""
        from repro.core import jmake

        def explode(*args, **kwargs):  # pragma: no cover
            raise AssertionError("a query triggered a check")

        monkeypatch.setattr(jmake.CheckSession, "check_commit",
                            explode)
        monkeypatch.setattr(jmake.CheckSession, "check_patch", explode)
        results = api.query_verdicts(populated, verdict="CERTIFIED")
        assert len(results) == 4

    def test_path_variant_opens_and_closes(self, populated):
        # string path in, fresh handle out — twice, to prove close
        assert api.query_verdicts(populated, commit="c1")
        assert api.janitor_report(
            populated, api.JanitorViewCriteria(min_patches=1,
                                               min_files=1))
