"""Every historical schema version survives the full fleet path.

journal (WAL) -> store ingest -> ``query_verdicts`` must hand back
exactly the record ``migrate_record`` produces in memory — byte for
byte under canonical JSON — for v2 (PR-4), v3 (PR-5), and current v4
records, quarantined PARTIAL rows included. This is the contract that
lets a fleet upgrade JMake without ever re-checking old journals.
"""

import pytest

from repro import api
from repro.core.report import migrate_record
from repro.journal import VerdictLedger
from repro.store.schema import canonical_json
from tests.store.conftest import v2_record, v3_record, v4_record

BUILDERS = {"v2": v2_record, "v3": v3_record, "v4": v4_record}


def fleet_records():
    """One certified + one PARTIAL record per historical version."""
    records = {}
    for version, build in BUILDERS.items():
        records[f"{version}-ok"] = build(
            f"{version}-ok", files={
                "drivers/a.c": [("x86_64", "allyesconfig",
                                 True, True)],
                "drivers/b.h": [("arm", "allyesconfig",
                                 True, False)]})
        records[f"{version}-part"] = build(
            f"{version}-part", quarantined=("arm", "mips"), files={
                "drivers/p.c": [("powerpc", "allyesconfig",
                                 True, True)]})
    return records


@pytest.fixture
def journaled(tmp_path):
    """A ledger holding every version's records, as a real WAL would."""
    records = fleet_records()
    path = str(tmp_path / "run.jnl")
    ledger = VerdictLedger(path, fsync=False, fresh=True)
    ledger.bind_meta({"mode": "roundtrip"})
    for key, record in records.items():
        assert ledger.emit(key, record)
    ledger.close()
    return path, records


class TestJournalToStoreRoundTrip:
    def test_every_version_is_byte_identical_to_in_memory(
            self, journaled, store_path):
        path, originals = journaled
        with VerdictLedger(path, fsync=False) as ledger, \
                api.open_store(store_path) as store:
            result = api.ingest_ledger(store, ledger)
            assert result.ingested == len(originals)
            stored = {v.commit: v for v in api.query_verdicts(store)}
        assert set(stored) == set(originals)
        for key, original in originals.items():
            expected = migrate_record(original)
            assert canonical_json(stored[key].record) == \
                canonical_json(expected), key

    def test_partial_rows_stay_quarantined(self, journaled,
                                           store_path):
        path, _ = journaled
        with VerdictLedger(path, fsync=False) as ledger, \
                api.open_store(store_path) as store:
            api.ingest_ledger(store, ledger)
            partials = api.query_verdicts(store, verdict="PARTIAL")
        assert {v.commit for v in partials} == \
            {"v2-part", "v3-part", "v4-part"}
        for verdict in partials:
            assert not verdict.fully_checked
            assert verdict.record["quarantined_archs"] == \
                ["arm", "mips"]

    def test_pre_v4_records_are_queryable_by_arch(self, journaled,
                                                  store_path):
        """v2/v3 entries have no attempts; the useful-arch fallback
        rows must still answer arch filters."""
        path, _ = journaled
        with VerdictLedger(path, fsync=False) as ledger, \
                api.open_store(store_path) as store:
            api.ingest_ledger(store, ledger)
            hits = api.query_verdicts(store, arch="x86_64")
        assert {v.commit for v in hits} == \
            {"v2-ok", "v3-ok", "v4-ok"}

    def test_reingest_is_idempotent(self, journaled, store_path):
        path, originals = journaled
        with api.open_store(store_path) as store:
            for _ in range(2):
                with VerdictLedger(path, fsync=False) as ledger:
                    result = api.ingest_ledger(store, ledger)
            assert result.ingested == 0
            assert result.skipped_stored == len(originals)
            dump_after = store.canonical_dump()
        with api.open_store(str(store_path) + ".fresh") as fresh:
            with VerdictLedger(path, fsync=False) as ledger:
                api.ingest_ledger(fresh, ledger)
            assert dump_after == fresh.canonical_dump()

    def test_store_inherits_the_ledger_identity(self, journaled,
                                                store_path):
        path, _ = journaled
        with VerdictLedger(path, fsync=False) as ledger, \
                api.open_store(store_path) as store:
            api.ingest_ledger(store, ledger)
            assert store.meta == {"mode": "roundtrip"}
