"""Record builders shared across the verdict-store suite.

Everything here goes through :meth:`PatchReport.to_dict`, so the
fixtures exercise exactly the canonical records the fleet produces —
and the pre-v4 builders strip the keys their eras had not grown yet,
mirroring what real PR-4/PR-5 journals hold on disk.
"""

import pytest

from repro.core.report import (
    ArchAttempt,
    FileReport,
    FileStatus,
    PatchReport,
)


def build_report(commit="c1", *, author=("Dan Carpenter",
                                         "dan@example.org"),
                 files=None, quarantined=(), elapsed=4.0,
                 status=FileStatus.OK):
    """A :class:`PatchReport` with explicit per-file trial outcomes.

    ``files`` maps path -> list of ``(arch, config, i_ok, o_ok)``
    attempt tuples; ``status`` applies to every file (pass a failure
    status for an ATTENTION REQUIRED verdict).
    """
    if files is None:
        files = {"drivers/a.c": [("x86_64", "allyesconfig",
                                  True, True)]}
    file_reports = {}
    for path, attempts in files.items():
        file_reports[path] = FileReport(
            path=path, status=status,
            attempts=[ArchAttempt(arch=arch, config_target=config,
                                  i_ok=i_ok, o_ok=o_ok)
                      for arch, config, i_ok, o_ok in attempts],
            useful_archs=sorted({arch for arch, _, _, o_ok in attempts
                                 if o_ok}))
    report = PatchReport(commit_id=commit, file_reports=file_reports,
                         elapsed_seconds=elapsed,
                         quarantined_archs=list(quarantined))
    if author is not None:
        report.author_name, report.author_email = author
    return report


def v4_record(commit="c1", **kwargs):
    """A current (schema_version=4) canonical record."""
    return build_report(commit, **kwargs).to_dict()


def v3_record(commit="c1", **kwargs):
    """A PR-5-era record: journal block, no attempts, no author."""
    record = v4_record(commit, **kwargs)
    record["schema_version"] = 3
    del record["author"]
    for entry in record["files"].values():
        del entry["attempts"]
    return record


def v2_record(commit="c1", **kwargs):
    """A PR-4-era record: versioned + fully_checked, no journal."""
    record = v3_record(commit, **kwargs)
    record["schema_version"] = 2
    del record["journal"]
    return record


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "verdicts.sqlite")
