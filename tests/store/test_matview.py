"""The §IV janitor materialized view: incremental, transactional."""

from repro.store import JanitorViewCriteria, VerdictStore
from tests.store.conftest import v4_record


def patch(commit, email, path, **kwargs):
    return v4_record(commit, author=(email.split("@")[0], email),
                     files={path: [("x86_64", "allyesconfig",
                                    True, True)]}, **kwargs)


class TestRanking:
    def test_uniform_authors_rank_before_file_hammerers(self,
                                                        store_path):
        with VerdictStore(store_path) as store:
            # janitor: three patches, three distinct files (cv = 0)
            store.ingest_batch([
                patch("j1", "janitor@x.org", "drivers/a.c"),
                patch("j2", "janitor@x.org", "drivers/b.c"),
                patch("j3", "janitor@x.org", "drivers/c.c"),
            ])
            # maintainer: three patches over two files (cv > 0)
            store.ingest_batch([
                patch("m1", "maint@x.org", "drivers/hot.c"),
                patch("m2", "maint@x.org", "drivers/hot.c"),
                patch("m3", "maint@x.org", "drivers/cold.c"),
            ])
            rows = store.janitor_report(JanitorViewCriteria(
                min_patches=3, min_files=2, top_n=10))
        assert [row.email for row in rows] == \
            ["janitor@x.org", "maint@x.org"]
        assert rows[0].file_cv == 0.0
        assert rows[1].file_cv > 0.0
        assert rows[0].files == 3
        assert rows[1].files == 2

    def test_thresholds_filter(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest_batch([
                patch("c1", "casual@x.org", "drivers/a.c")])
            rows = store.janitor_report(JanitorViewCriteria(
                min_patches=2, min_files=1))
        assert rows == []

    def test_verdict_tallies(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest_batch([
                patch("c1", "dev@x.org", "drivers/a.c"),
                patch("c2", "dev@x.org", "drivers/b.c",
                      quarantined=("arm",)),
            ])
            (row,) = store.janitor_report(JanitorViewCriteria(
                min_patches=1, min_files=1))
        assert row.patches == 2
        assert row.certified == 1
        assert row.partial == 1
        assert row.attention == 0


class TestIncrementalRefresh:
    def test_second_batch_updates_existing_author(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest_batch([
                patch("c1", "dev@x.org", "drivers/a.c")])
            store.ingest_batch([
                patch("c2", "dev@x.org", "drivers/b.c")])
            (row,) = store.janitor_report(JanitorViewCriteria(
                min_patches=1, min_files=1))
        assert row.patches == 2
        assert row.files == 2

    def test_refresh_count_is_per_touched_author(self, store_path):
        with VerdictStore(store_path) as store:
            result = store.ingest_batch([
                patch("c1", "a@x.org", "drivers/a.c"),
                patch("c2", "a@x.org", "drivers/b.c"),
                patch("c3", "b@x.org", "drivers/a.c"),
            ])
        assert result.authors_refreshed == 2

    def test_authorless_records_do_not_enter_the_view(self,
                                                      store_path):
        with VerdictStore(store_path) as store:
            result = store.ingest_batch([
                v4_record("c1", author=None)])
            rows = store.janitor_report(JanitorViewCriteria(
                min_patches=1, min_files=1))
        assert result.authors_refreshed == 0
        assert rows == []

    def test_view_matches_a_from_scratch_rebuild(self, tmp_path):
        """Incremental refresh == rebuilding the store in one batch."""
        batches = [
            [patch("c1", "a@x.org", "drivers/a.c"),
             patch("c2", "b@x.org", "drivers/b.c")],
            [patch("c3", "a@x.org", "drivers/a.c")],
            [patch("c4", "a@x.org", "drivers/c.c"),
             patch("c5", "b@x.org", "drivers/b.c")],
        ]
        with VerdictStore(str(tmp_path / "inc.sqlite")) as inc:
            for batch in batches:
                inc.ingest_batch(batch)
            incremental = inc.canonical_dump()
        with VerdictStore(str(tmp_path / "one.sqlite")) as one:
            one.ingest_batch([r for batch in batches for r in batch])
            oneshot = one.canonical_dump()
        assert incremental == oneshot
