"""Retention compaction: prune old verdicts, rebuild the matview.

``compact(retain)`` keeps the newest ``retain`` verdicts by ingest
sequence and rebuilds the janitor materialized view from the
survivors inside the same transaction — so the ranking a dashboard
reads immediately after compaction is exactly what a fresh store
built from only the surviving records would produce.
"""

import pytest

from repro.errors import StoreError
from repro.obs.events import EVENT_STORE_COMPACTED, EventLog
from repro.store import VerdictStore
from tests.store.conftest import build_report

AUTHORS = [("Dan Carpenter", "dan@example.org"),
           ("Julia Lawall", "julia@example.org"),
           ("Arnd Bergmann", "arnd@example.org")]


def seeded_records(count):
    """``count`` distinct canonical records across three authors."""
    return [build_report(
        f"c{index:03d}",
        author=AUTHORS[index % len(AUTHORS)],
        files={f"drivers/f{index % 4}.c": [
            ("x86_64", "allyesconfig", True, True),
            ("arm", "defconfig", True, index % 2 == 0)]}).to_dict()
        for index in range(count)]


class TestCompaction:
    def test_keeps_the_newest_by_ingest_sequence(self, store_path):
        records = seeded_records(10)
        with VerdictStore(store_path) as store:
            store.ingest_batch(records)
            result = store.compact(4)
            assert result["kept"] == 4
            assert result["pruned"] == 6
            assert result["file_rows_pruned"] > 0
            assert len(store) == 4
            for record in records[-4:]:
                assert store.has(record["commit"])
            for record in records[:6]:
                assert not store.has(record["commit"])

    def test_matview_matches_a_fresh_store_of_survivors(
            self, store_path, tmp_path):
        """The rebuilt ranking carries no ghost contributions from
        pruned verdicts: it equals a store that never saw them."""
        records = seeded_records(12)
        with VerdictStore(store_path) as store:
            store.ingest_batch(records)
            store.compact(5)
            compacted_rows = store.janitor_report()
            compacted_dump = store.canonical_dump()
        with VerdictStore(str(tmp_path / "fresh.sqlite")) as fresh:
            fresh.ingest_batch(records[-5:])
            assert fresh.janitor_report() == compacted_rows
            assert fresh.canonical_dump() == compacted_dump

    def test_generous_retention_is_a_noop(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest_batch(seeded_records(3))
            result = store.compact(10)
            assert result == {"kept": 3, "pruned": 0,
                              "file_rows_pruned": 0}
            assert len(store) == 3

    def test_retain_zero_empties_the_store(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest_batch(seeded_records(3))
            result = store.compact(0)
            assert result["kept"] == 0
            assert result["pruned"] == 3
            assert len(store) == 0
            assert store.janitor_report() == []

    def test_compaction_survives_reopen(self, store_path):
        records = seeded_records(6)
        with VerdictStore(store_path) as store:
            store.ingest_batch(records)
            store.compact(2)
        with VerdictStore(store_path) as store:
            assert len(store) == 2
            assert store.has(records[-1]["commit"])
            assert not store.has(records[0]["commit"])

    def test_store_stays_writable_after_compaction(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest_batch(seeded_records(4))
            store.compact(1)
            assert store.ingest(
                build_report("after-compact").to_dict()) is True
            assert len(store) == 2

    def test_compaction_is_idempotent(self, store_path):
        with VerdictStore(store_path) as store:
            store.ingest_batch(seeded_records(8))
            first = store.compact(3)
            assert first["pruned"] == 5
            again = store.compact(3)
            assert again == {"kept": 3, "pruned": 0,
                             "file_rows_pruned": 0}


class TestRetainValidation:
    @pytest.mark.parametrize("retain", [True, False, -1, 2.5, "3",
                                        None])
    def test_non_count_retain_is_refused(self, store_path, retain):
        with VerdictStore(store_path) as store:
            store.ingest(build_report("c1").to_dict())
            with pytest.raises(StoreError):
                store.compact(retain)
            # the refused call changed nothing
            assert len(store) == 1


class TestTelemetry:
    def test_compaction_event_and_counters(self, store_path):
        events = EventLog()
        with VerdictStore(store_path, events=events) as store:
            store.ingest_batch(seeded_records(5))
            store.compact(2)
        assert events.counts[EVENT_STORE_COMPACTED] == 1
        emitted = events.events(EVENT_STORE_COMPACTED)[0]
        assert emitted.attrs["kept"] == 2
        assert emitted.attrs["pruned"] == 3
        assert emitted.attrs["retain"] == 2
