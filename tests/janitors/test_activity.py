"""Tests for developer activity metrics."""

import pytest

from repro.janitors.activity import ActivityAnalyzer, DeveloperActivity
from repro.kernel.maintainers import MaintainersDb, MaintainersEntry
from repro.vcs.objects import Signature, Tree
from repro.vcs.repository import Repository


def maintainers_db():
    return MaintainersDb([
        MaintainersEntry(name="SUBSYS A",
                         maintainers=["Alice <alice@x.org>"],
                         lists=["a@vger.kernel.org",
                                "linux-kernel@vger.kernel.org"],
                         file_patterns=["a/"]),
        MaintainersEntry(name="SUBSYS B",
                         maintainers=["Bob <bob@x.org>"],
                         lists=["b@vger.kernel.org"],
                         file_patterns=["b/"]),
    ])


@pytest.fixture
def history():
    repo = Repository()
    files = {"a/x.c": "int x;\n", "a/y.c": "int y;\n", "b/z.c": "int z;\n"}
    base = repo.commit(Tree(files), Signature(
        "Base", "base@x.org", "2011-01-01T00:00:00"), "base")
    repo.tag("start", base.id)

    def change(path, text, author, email, n):
        nonlocal files
        files = dict(files)
        files[path] = text
        return repo.commit(Tree(files), Signature(
            author, email, f"2012-01-{n:02d}T00:00:00"), f"change {n}")

    # Carol: breadth across both subsystems, uniform.
    change("a/x.c", "int x2;\n", "Carol", "carol@x.org", 1)
    change("a/y.c", "int y2;\n", "Carol", "carol@x.org", 2)
    change("b/z.c", "int z2;\n", "Carol", "carol@x.org", 3)
    # Bob: maintainer of b/, works only there, repeatedly on one file.
    change("b/z.c", "int z3;\n", "Bob", "bob@x.org", 4)
    change("b/z.c", "int z4;\n", "Bob", "bob@x.org", 5)
    repo.tag("end", repo.head().id)
    return repo


class TestAnalyzer:
    def test_patch_counts(self, history):
        analyzer = ActivityAnalyzer(history, maintainers_db())
        activities = analyzer.analyze()
        assert activities["carol@x.org"].patches == 3
        assert activities["bob@x.org"].patches == 2

    def test_subsystems_and_lists(self, history):
        analyzer = ActivityAnalyzer(history, maintainers_db())
        activities = analyzer.analyze()
        carol = activities["carol@x.org"]
        assert carol.subsystems == {"SUBSYS A", "SUBSYS B"}
        assert carol.lists == {"a@vger.kernel.org", "b@vger.kernel.org",
                               "linux-kernel@vger.kernel.org"}

    def test_maintainer_share(self, history):
        analyzer = ActivityAnalyzer(history, maintainers_db())
        activities = analyzer.analyze()
        assert activities["bob@x.org"].maintainer_share == 1.0
        assert activities["carol@x.org"].maintainer_share == 0.0

    def test_file_touches(self, history):
        analyzer = ActivityAnalyzer(history, maintainers_db())
        activities = analyzer.analyze()
        assert activities["bob@x.org"].file_touches == {"b/z.c": 2}
        assert activities["carol@x.org"].file_touches == {
            "a/x.c": 1, "a/y.c": 1, "b/z.c": 1}

    def test_window_restriction(self, history):
        analyzer = ActivityAnalyzer(history, maintainers_db())
        activities = analyzer.analyze(since="start", until="end")
        assert "base@x.org" not in activities

    def test_patch_count_helper(self, history):
        analyzer = ActivityAnalyzer(history, maintainers_db())
        assert analyzer.patch_count("carol@x.org") == 3


class TestCv:
    def test_uniform_is_zero(self):
        activity = DeveloperActivity("D", "d@x.org",
                                     file_touches={"a": 2, "b": 2, "c": 2})
        assert activity.file_cv == 0.0

    def test_skewed_is_positive(self):
        activity = DeveloperActivity("D", "d@x.org",
                                     file_touches={"a": 10, "b": 1, "c": 1})
        assert activity.file_cv > 1.0

    def test_empty_is_zero(self):
        assert DeveloperActivity("D", "d@x.org").file_cv == 0.0

    def test_known_value(self):
        # counts 1 and 3: mean 2, pop std 1 -> cv 0.5
        activity = DeveloperActivity("D", "d@x.org",
                                     file_touches={"a": 1, "b": 3})
        assert activity.file_cv == pytest.approx(0.5)

    def test_maintainer_share_zero_patches(self):
        assert DeveloperActivity("D", "d@x.org").maintainer_share == 0.0
