"""Tests for janitor identification over the synthetic corpus."""

import pytest

from repro.janitors.identify import JanitorCriteria, JanitorFinder
from repro.workload.corpus import Corpus, CorpusSpec, build_corpus
from repro.workload.personas import PersonaKind


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(CorpusSpec(seed="janitor-test",
                                   history_commits=900,
                                   eval_commits=300,
                                   regular_developers=12))


@pytest.fixture(scope="module")
def ranked(corpus):
    finder = JanitorFinder(
        corpus.repository, corpus.tree.maintainers,
        criteria=JanitorCriteria(min_patches=10, min_subsystems=12,
                                 min_lists=3, max_maintainer_share=0.05,
                                 min_eval_window_patches=3, top_n=10))
    return finder.identify(
        history_since=None, history_until=Corpus.TAG_EVAL_END,
        eval_since=Corpus.TAG_EVAL_START, eval_until=Corpus.TAG_EVAL_END)


class TestCriteria:
    def test_table_i_defaults(self):
        criteria = JanitorCriteria()
        assert criteria.min_patches == 10
        assert criteria.min_subsystems == 20
        assert criteria.min_lists == 3
        assert criteria.max_maintainer_share == 0.05

    def test_passes_logic(self):
        from repro.janitors.activity import DeveloperActivity
        criteria = JanitorCriteria()
        activity = DeveloperActivity(
            "J", "j@x.org", patches=50,
            subsystems={f"S{i}" for i in range(25)},
            lists={"a", "b", "c", "d"},
            maintainer_patches=1)
        assert criteria.passes(activity)
        activity.maintainer_patches = 10  # 20% share
        assert not criteria.passes(activity)


class TestIdentification:
    def test_finds_mostly_real_janitors(self, corpus, ranked):
        """The ranking recovers the persona ground truth."""
        assert ranked, "expected identified janitors"
        janitor_names = {p.name for p in corpus.roster
                         if p.kind is PersonaKind.JANITOR}
        recovered = [dev for dev in ranked if dev.name in janitor_names]
        assert len(recovered) >= len(ranked) * 0.7

    def test_no_maintainers_identified(self, corpus, ranked):
        maintainer_names = {p.name for p in corpus.roster
                            if p.kind is PersonaKind.MAINTAINER}
        assert not any(dev.name in maintainer_names for dev in ranked)

    def test_sorted_by_cv(self, ranked):
        cvs = [dev.file_cv for dev in ranked]
        assert cvs == sorted(cvs)

    def test_maintainer_share_low(self, ranked):
        assert all(dev.maintainer_share < 0.05 for dev in ranked)

    def test_row_rendering(self, ranked):
        row = ranked[0].as_row()
        assert len(row) == 6
        assert row[-1] == f"{ranked[0].file_cv:.2f}"

    def test_top_n_respected(self, corpus):
        finder = JanitorFinder(
            corpus.repository, corpus.tree.maintainers,
            criteria=JanitorCriteria(min_patches=1, min_subsystems=1,
                                     min_lists=1,
                                     max_maintainer_share=1.01,
                                     min_eval_window_patches=0, top_n=3))
        ranked = finder.identify(
            history_since=None, history_until=Corpus.TAG_EVAL_END,
            eval_since=Corpus.TAG_EVAL_START,
            eval_until=Corpus.TAG_EVAL_END)
        assert len(ranked) == 3
