"""Tests for Kbuild Makefile parsing."""

from repro.kbuild.makefile import KbuildMakefile
from repro.kconfig.ast import Tristate
from repro.kconfig.configfile import Config

SAMPLE = """\
# drivers/net/Makefile
obj-y += core.o
obj-m += always_mod.o
obj-$(CONFIG_E1000) += e1000.o
obj-$(CONFIG_WIFI) += wireless/
obj-$(CONFIG_BONDING) += bonding.o

bonding-objs := bond_main.o bond_sysfs.o
multi-y := part_a.o
multi-$(CONFIG_MULTI_EXTRA) += part_b.o
obj-$(CONFIG_MULTI) += multi.o

ccflags-y += -DDEBUG
"""


def cfg(**values):
    config = Config()
    for name, letter in values.items():
        config.set(name, Tristate.from_letter(letter))
    return config


class TestParse:
    def test_object_rules(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        targets = {rule.target for rule in makefile.object_rules()}
        assert targets == {"core.o", "always_mod.o", "e1000.o",
                           "bonding.o", "multi.o"}

    def test_subdir_rules(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        subdirs = makefile.subdir_rules()
        assert [rule.target for rule in subdirs] == ["wireless/"]
        assert subdirs[0].condition == "WIFI"

    def test_conditions(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        by_target = {rule.target: rule for rule in makefile.object_rules()}
        assert by_target["core.o"].condition is None
        assert by_target["e1000.o"].condition == "E1000"

    def test_composites(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        assert "bonding" in makefile.composites
        members = {rule.target for rule in makefile.composites["bonding"]}
        assert members == {"bond_main.o", "bond_sysfs.o"}

    def test_kbuild_style_composite(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        members = {rule.target for rule in makefile.composites["multi"]}
        assert members == {"part_a.o", "part_b.o"}

    def test_flag_lines_not_composites(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        assert "ccflags" not in makefile.composites

    def test_mentioned_config_vars_in_order(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        assert makefile.mentioned_config_vars == \
            ["E1000", "WIFI", "BONDING", "MULTI_EXTRA", "MULTI"]

    def test_comments_ignored(self):
        makefile = KbuildMakefile.parse("# obj-$(CONFIG_GHOST) += g.o\n")
        assert makefile.objects == []
        assert makefile.mentioned_config_vars == []


class TestRuleForSource:
    def test_direct_object(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        rule = makefile.rule_for_source("e1000.c")
        assert rule is not None
        assert rule.condition == "E1000"

    def test_unconditional_object(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        assert makefile.rule_for_source("core.c").condition is None

    def test_composite_member_gets_outer_condition(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        rule = makefile.rule_for_source("bond_main.c")
        assert rule is not None
        assert rule.condition == "BONDING"

    def test_unknown_source(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        assert makefile.rule_for_source("ghost.c") is None


class TestConfigVarsHeuristic:
    """The §III-C architecture-hint heuristic."""

    def test_direct_variable(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        assert makefile.config_vars_for_object("e1000.c") == ["E1000"]

    def test_composite_member_collects_both_levels(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        variables = makefile.config_vars_for_object("part_b.c")
        assert "MULTI_EXTRA" in variables
        assert "MULTI" in variables

    def test_fallback_to_all_mentioned(self):
        """'if the previous heuristics do not select any configuration
        variables, then any configuration variable in the Makefile'."""
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        variables = makefile.config_vars_for_object("core.c")
        assert variables == ["E1000", "WIFI", "BONDING", "MULTI_EXTRA",
                             "MULTI"]


class TestEnablement:
    def test_enabled_by_y(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        assert makefile.source_is_enabled("e1000.c", cfg(E1000="y"))
        assert not makefile.source_is_enabled("e1000.c", cfg())

    def test_enabled_by_m(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        assert makefile.source_is_enabled("e1000.c", cfg(E1000="m"))

    def test_unconditional_always_enabled(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        assert makefile.source_is_enabled("core.c", cfg())

    def test_modular_flag(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        assert makefile.source_is_modular("e1000.c", cfg(E1000="m"))
        assert not makefile.source_is_modular("e1000.c", cfg(E1000="y"))

    def test_composite_member_modular(self):
        makefile = KbuildMakefile.parse(SAMPLE, "drivers/net")
        assert makefile.source_is_modular("bond_main.c", cfg(BONDING="m"))
