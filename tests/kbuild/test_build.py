"""Tests for the build orchestrator over the fixture tree."""

import pytest

from repro.errors import KconfigError, ToolchainError
from repro.kbuild.build import BuildError
from repro.kconfig.ast import Tristate


class TestMakeConfig:
    def test_allyesconfig_x86(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        assert config.builtin("X86")
        assert config.builtin("PCI")
        assert config.builtin("E1000")

    def test_arch_specific_symbol_absent_elsewhere(self, build_system):
        x86 = build_system.make_config("x86_64", "allyesconfig")
        arm = build_system.make_config("arm", "allyesconfig")
        assert not x86.enabled("ARM_AMBA")
        assert arm.builtin("ARM_AMBA")

    def test_unsatisfiable_symbol_stays_off(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        assert not config.enabled("RARE_CHAR")  # depends on BROKEN_DEP

    def test_allmodconfig_makes_tristates_modules(self, build_system):
        config = build_system.make_config("x86_64", "allmodconfig")
        assert config.modular("E1000")

    def test_defconfig_target(self, build_system):
        config = build_system.make_config("x86_64", "small_defconfig")
        assert config.builtin("PCI")
        assert not config.enabled("NET")

    def test_missing_defconfig_raises(self, build_system):
        with pytest.raises(KconfigError):
            build_system.make_config("x86_64", "nonexistent_defconfig")

    def test_broken_arch_raises(self, build_system):
        with pytest.raises(ToolchainError):
            build_system.make_config("arm64", "allyesconfig")

    def test_config_cached_and_charged_once(self, build_system):
        build_system.make_config("x86_64", "allyesconfig")
        t1 = build_system.clock.total("config")
        build_system.make_config("x86_64", "allyesconfig")
        assert build_system.clock.total("config") == t1

    def test_defconfig_names_listed(self, build_system):
        assert build_system.defconfig_names("x86_64") == ["small_defconfig"]
        assert build_system.defconfig_names("arm") == ["multi_defconfig"]


class TestBuildability:
    def test_enabled_driver_buildable(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        assert build_system.is_buildable("drivers/net/e1000.c", "x86_64",
                                         config)

    def test_disabled_driver_not_buildable(self, build_system):
        config = build_system.make_config("x86_64", "small_defconfig")
        # NET off => E1000 off
        assert not build_system.is_buildable("drivers/net/e1000.c",
                                             "x86_64", config)

    def test_arch_dir_requires_matching_arch(self, build_system):
        x86_config = build_system.make_config("x86_64", "allyesconfig")
        assert build_system.is_buildable("arch/x86/kernel/setup.c",
                                         "x86_64", x86_config)
        assert not build_system.is_buildable("arch/arm/kernel/entry.c",
                                             "x86_64", x86_config)

    def test_subdir_condition_gates_children(self, build_system):
        """drivers/char/ is behind CONFIG_CHAR."""
        config = build_system.make_config("x86_64", "small_defconfig")
        assert config.tristate("CHAR") == Tristate.N
        # even if RARE_CHAR were on, the subdir chain is off
        assert not build_system.is_buildable("drivers/char/rare.c",
                                             "x86_64", config)

    def test_unknown_directory_not_buildable(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        assert not build_system.is_buildable("Documentation/foo.c",
                                             "x86_64", config)

    def test_arch_symbol_gated_driver(self, build_system):
        """amba_net.c is behind CONFIG_ARM_AMBA, defined only by arm."""
        x86 = build_system.make_config("x86_64", "allyesconfig")
        arm = build_system.make_config("arm", "allyesconfig")
        assert not build_system.is_buildable("drivers/net/amba_net.c",
                                             "x86_64", x86)
        assert build_system.is_buildable("drivers/net/amba_net.c",
                                         "arm", arm)


class TestMakeI:
    def test_successful_batch(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        results = build_system.make_i(
            ["drivers/net/e1000.c", "drivers/net/wifi.c"],
            "x86_64", config)
        assert all(result.ok for result in results)
        assert "e1000_probe" in results[0].i_text

    def test_no_rule_reported_per_file(self, build_system):
        config = build_system.make_config("x86_64", "small_defconfig")
        results = build_system.make_i(["drivers/net/e1000.c"],
                                      "x86_64", config)
        assert not results[0].ok
        assert results[0].error_kind == "no_rule"

    def test_missing_makefile_reported(self, build_system, tree):
        tree["orphan/lost.c"] = "int x;\n"
        config = build_system.make_config("x86_64", "allyesconfig")
        results = build_system.make_i(["orphan/lost.c"], "x86_64", config)
        assert results[0].error_kind == "no_makefile"

    def test_missing_header_reported(self, build_system):
        """amba_net.c needs arm headers: preprocess fails on x86 even if
        forced; here it's not buildable at all, so use the arm config on
        a tree where the header vanished."""
        config = build_system.make_config("arm", "allyesconfig")
        results = build_system.make_i(["drivers/net/amba_net.c"],
                                      "arm", config)
        assert results[0].ok  # header present for arm

    def test_mutated_file_still_preprocesses(self, build_system, tree):
        mutated = tree["drivers/net/wifi.c"] + '`"type:drivers/net/wifi.c:2"\n'
        tree["drivers/net/wifi.c"] = mutated
        config = build_system.make_config("x86_64", "allyesconfig")
        results = build_system.make_i(["drivers/net/wifi.c"],
                                      "x86_64", config)
        assert results[0].ok
        assert '`"type:drivers/net/wifi.c:2"' in results[0].i_text

    def test_invocation_time_charged(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        before = build_system.clock.total("make_i")
        build_system.make_i(["drivers/net/wifi.c"], "x86_64", config)
        assert build_system.clock.total("make_i") > before

    def test_empty_batch_is_free(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        before = build_system.clock.now
        assert build_system.make_i([], "x86_64", config) == []
        assert build_system.clock.now == before

    def test_module_macro_for_modular_unit(self, build_system):
        config = build_system.make_config("x86_64", "allmodconfig")
        results = build_system.make_i(["drivers/net/e1000.c"],
                                      "x86_64", config)
        assert results[0].ok
        assert "as_module" in results[0].i_text

    def test_no_module_macro_for_builtin(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        results = build_system.make_i(["drivers/net/e1000.c"],
                                      "x86_64", config)
        assert "as_module" not in results[0].i_text


class TestMakeO:
    def test_successful_object(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        obj = build_system.make_o("drivers/net/e1000.c", "x86_64", config)
        assert obj.symbols == ["e1000_probe"]

    def test_mutated_file_fails(self, build_system, tree):
        tree["drivers/net/wifi.c"] += '`"tag"\n'
        config = build_system.make_config("x86_64", "allyesconfig")
        with pytest.raises(BuildError) as excinfo:
            build_system.make_o("drivers/net/wifi.c", "x86_64", config)
        assert excinfo.value.kind == "compile_failed"

    def test_no_rule_raises(self, build_system):
        config = build_system.make_config("x86_64", "small_defconfig")
        with pytest.raises(BuildError) as excinfo:
            build_system.make_o("drivers/net/e1000.c", "x86_64", config)
        assert excinfo.value.kind == "no_rule"

    def test_rebuild_trigger_charges_heavily(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        before = build_system.clock.total("make_o")
        build_system.make_o("arch/x86/kernel/setup.c", "x86_64", config)
        assert build_system.clock.total("make_o") - before > 6000

    def test_bootstrap_marking(self, build_system):
        assert build_system.is_bootstrap("kernel/bounds.c")
        assert not build_system.is_bootstrap("kernel/sched.c")


class TestInvocationLog:
    def test_invocations_recorded(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        build_system.make_i(["drivers/net/wifi.c"], "x86_64", config)
        build_system.make_o("drivers/net/wifi.c", "x86_64", config)
        kinds = [inv.kind for inv in build_system.invocations]
        assert kinds == ["config", "make_i", "make_o"]

    def test_first_invocation_pays_setup(self, build_system):
        config = build_system.make_config("x86_64", "allyesconfig")
        build_system.make_i(["drivers/net/wifi.c"], "x86_64", config)
        first = build_system.invocations[-1].duration
        build_system.make_i(["drivers/net/wifi.c"], "x86_64", config)
        second = build_system.invocations[-1].duration
        assert first > second
