"""Tests for the simulated cost model against the paper's constants."""

from repro.kbuild.timing import CostModel


class TestDeterminism:
    def test_same_inputs_same_cost(self):
        model = CostModel()
        a = model.i_cost("x86_64", [("drivers/a.c", 4000)],
                         first_invocation=True)
        b = model.i_cost("x86_64", [("drivers/a.c", 4000)],
                         first_invocation=True)
        assert a == b

    def test_different_paths_different_noise(self):
        model = CostModel()
        a = model.o_cost("x86_64", "drivers/a.c", 4000,
                         first_invocation=False)
        b = model.o_cost("x86_64", "drivers/b.c", 4000,
                         first_invocation=False)
        assert a != b


class TestPaperConstants:
    def test_config_cost_under_five_seconds(self):
        """Fig. 4a: all configuration creations complete within 5 s."""
        model = CostModel()
        for arch in ("x86_64", "arm", "powerpc", "mips"):
            for target in ("allyesconfig", "allmodconfig", "a_defconfig"):
                assert model.config_cost(arch, target, 1500) <= 5.0

    def test_setup_ops_match_paper(self):
        """§III-D: over 80 set-up operations for x86, over 60 for arm."""
        model = CostModel()
        assert model.setup_ops("x86_64") > 80
        assert model.setup_ops("arm") > 60

    def test_first_invocation_costs_more(self):
        model = CostModel()
        first = model.setup_cost("x86_64", first_invocation=True)
        later = model.setup_cost("x86_64", first_invocation=False)
        assert first > later * 5

    def test_single_file_i_under_fifteen_seconds(self):
        model = CostModel()
        cost = model.i_cost("x86_64", [("drivers/a.c", 20_000)],
                            first_invocation=True)
        assert cost <= 15.0

    def test_large_batch_i_can_exceed_fifteen(self):
        """Fig. 4b's tail: full 50-file batches go up to ~22 s."""
        model = CostModel()
        batch = [(f"drivers/f{i}.c", 2_000) for i in range(50)]
        cost = model.i_cost("x86_64", batch, first_invocation=True)
        assert 15.0 < cost <= 22.5

    def test_typical_o_cost_under_seven(self):
        model = CostModel()
        cost = model.o_cost("x86_64", "drivers/a.c", 8_000,
                            first_invocation=False)
        assert cost <= 7.0

    def test_large_o_under_fifteen(self):
        model = CostModel()
        cost = model.o_cost("x86_64", "drivers/huge.c", 100_000,
                            first_invocation=True)
        assert cost <= 15.0

    def test_whole_kernel_rebuild_outlier(self):
        """Fig. 4c: the prom_init.c analogue exceeds 6000 s."""
        model = CostModel()
        cost = model.o_cost("powerpc", "arch/powerpc/kernel/prom_init.c",
                            5_000, first_invocation=True,
                            triggers_whole_kernel_rebuild=True)
        assert cost > 6000.0
