"""Property-based tests on Kbuild Makefile parsing."""

from hypothesis import given, settings, strategies as st

from repro.kbuild.makefile import KbuildMakefile
from repro.kconfig.ast import Tristate
from repro.kconfig.configfile import Config

object_names = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)
symbol_names = st.from_regex(r"[A-Z][A-Z0-9_]{0,12}", fullmatch=True)


@st.composite
def makefile_lines(draw):
    lines = []
    expected_objects = set()
    expected_vars = []
    names = draw(st.lists(object_names, min_size=1, max_size=10,
                          unique=True))
    for name in names:
        kind = draw(st.sampled_from(["y", "m", "config"]))
        if kind == "config":
            symbol = draw(symbol_names)
            lines.append(f"obj-$(CONFIG_{symbol}) += {name}.o")
            if symbol not in expected_vars:
                expected_vars.append(symbol)
        else:
            lines.append(f"obj-{kind} += {name}.o")
        expected_objects.add(f"{name}.o")
    return "\n".join(lines) + "\n", expected_objects, expected_vars


# Conditions can legitimately collide with object names only when the
# same stem appears twice; the strategy keeps stems unique, so each
# source has exactly one governing rule.


class TestParserProperties:
    @given(makefile_lines())
    @settings(max_examples=80)
    def test_all_objects_recovered(self, case):
        text, expected_objects, _ = case
        makefile = KbuildMakefile.parse(text)
        parsed = {rule.target for rule in makefile.object_rules()}
        assert parsed == expected_objects

    @given(makefile_lines())
    @settings(max_examples=80)
    def test_all_config_vars_recovered_in_order(self, case):
        text, _, expected_vars = case
        makefile = KbuildMakefile.parse(text)
        assert makefile.mentioned_config_vars == expected_vars

    @given(makefile_lines())
    @settings(max_examples=60)
    def test_unconditional_objects_always_enabled(self, case):
        text, _, _ = case
        makefile = KbuildMakefile.parse(text)
        empty = Config()
        for rule in makefile.object_rules():
            if rule.condition is None:
                assert makefile.source_is_enabled(
                    rule.target[:-2] + ".c", empty)

    @given(makefile_lines(), st.sampled_from(["y", "m", "n"]))
    @settings(max_examples=60)
    def test_conditional_enablement_matches_config(self, case, letter):
        text, _, _ = case
        makefile = KbuildMakefile.parse(text)
        for rule in makefile.object_rules():
            if rule.condition is None:
                continue
            config = Config()
            config.set(rule.condition, Tristate.from_letter(letter))
            enabled = makefile.source_is_enabled(
                rule.target[:-2] + ".c", config)
            assert enabled == (letter != "n")
            break
