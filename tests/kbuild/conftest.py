"""A small hand-written kernel-like tree for build-system tests."""

import pytest

TREE = {
    # -- top level ---------------------------------------------------------
    "Makefile": "obj-y += drivers/ kernel/\n",
    "Kconfig": """\
config PCI
	bool "PCI support"
config NET
	bool "Networking"
config E1000
	tristate "Intel NIC"
	depends on PCI && NET
config WIFI
	bool "Wireless"
	depends on NET
config CMDLINE_MODE
	bool
source "drivers/char/Kconfig"
""",
    "drivers/char/Kconfig": """\
config CHAR
	bool "Char devices"
config RARE_CHAR
	bool "Rare char driver"
	depends on CHAR && BROKEN_DEP
""",

    # -- architectures -------------------------------------------------------
    "arch/x86/Kconfig": """\
config X86
	bool
	default y
source "Kconfig"
""",
    "arch/x86/configs/small_defconfig":
        "CONFIG_PCI=y\n# CONFIG_NET is not set\n",
    "arch/x86/include/asm/io.h": "#define IO_BASE 0x3f8\n",
    "arch/x86/Makefile": "obj-y += kernel/\n",
    "arch/x86/kernel/Makefile": "obj-y += setup.o\n",
    "arch/x86/kernel/setup.c":
        "#include <asm/io.h>\nint x86_setup(void) { return IO_BASE; }\n",

    "arch/arm/Kconfig": """\
config ARM
	bool
	default y
config ARM_AMBA
	bool
	default y
source "Kconfig"
""",
    "arch/arm/include/asm/amba.h": "#define AMBA_REV 2\n",
    "arch/arm/Makefile": "obj-y += kernel/\n",
    "arch/arm/kernel/Makefile": "obj-y += entry.o\n",
    "arch/arm/kernel/entry.c": "int arm_entry(void) { return 0; }\n",
    "arch/arm/configs/multi_defconfig": "CONFIG_PCI=y\nCONFIG_NET=y\n",

    # -- shared headers -----------------------------------------------------
    "include/linux/kernel.h": "#define KERN_INFO \"6\"\n",

    # -- drivers --------------------------------------------------------------
    "drivers/Makefile":
        "obj-y += net/\nobj-$(CONFIG_CHAR) += char/\n",
    "drivers/net/Makefile": """\
obj-$(CONFIG_E1000) += e1000.o
obj-$(CONFIG_WIFI) += wifi.o
obj-$(CONFIG_ARM_AMBA) += amba_net.o
""",
    "drivers/net/e1000.c": """\
#include <linux/kernel.h>
static int e1000_probe(int dev)
{
#ifdef MODULE
	int as_module = 1;
#endif
	return dev;
}
""",
    "drivers/net/wifi.c": "int wifi_init(void) { return 0; }\n",
    "drivers/net/amba_net.c":
        "#include <asm/amba.h>\nint amba_probe(void) { return AMBA_REV; }\n",
    "drivers/char/Makefile": "obj-$(CONFIG_RARE_CHAR) += rare.o\n",
    "drivers/char/rare.c": "int rare_init(void) { return 0; }\n",

    # -- kernel core + bootstrap file (§V-D analogue) -----------------------
    "kernel/Makefile": "obj-y += sched.o bounds.o\n",
    "kernel/sched.c": "int schedule(void) { return 0; }\n",
    "kernel/bounds.c": "int kernel_bounds = 64;\n",
}


@pytest.fixture
def tree():
    return dict(TREE)


@pytest.fixture
def provider(tree):
    return tree.get


@pytest.fixture
def build_system(tree):
    from repro.kbuild.build import BuildSystem
    return BuildSystem(
        tree.get,
        bootstrap_paths={"kernel/bounds.c"},
        rebuild_trigger_paths={"arch/x86/kernel/setup.c"},
        path_lister=lambda: sorted(tree),
    )
