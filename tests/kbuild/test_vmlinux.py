"""Whole-kernel builds: the ultimate substrate integration test."""

import pytest

from repro.kbuild.build import BuildSystem
from repro.kernel.generator import generate_tree


@pytest.fixture(scope="module")
def tree():
    return generate_tree()


@pytest.fixture(scope="module")
def build(tree):
    return BuildSystem(tree.provider(),
                       path_lister=lambda: sorted(tree.files))


class TestMakeVmlinux:
    def test_allyesconfig_links(self, build):
        config = build.make_config("x86_64", "allyesconfig")
        result = build.make_vmlinux("x86_64", config)
        image = result.image
        assert image.architecture == "x86_64"
        assert len(image.objects) > 50
        assert len(image.symbol_table) > 100
        assert image.size > 4096
        # the arch-affine drivers legitimately fail on x86 (the §V-B
        # population real allyesconfig builds also trip over)
        assert 0 < len(result.failed) < 12
        assert not result.clean

    def test_every_arch_builds_its_own_kernel(self, tree):
        for arch in ("arm", "powerpc", "mips"):
            build = BuildSystem(tree.provider(),
                                path_lister=lambda: sorted(tree.files))
            config = build.make_config(arch, "allyesconfig")
            image = build.make_vmlinux(arch, config).image
            # arch kernel files made it in
            assert any(path.startswith("arch/") for path in
                       image.objects)
            assert image.architecture == arch

    def test_allmodconfig_excludes_modules(self, build):
        allyes = build.make_config("x86_64", "allyesconfig")
        allmod = build.make_config("x86_64", "allmodconfig")
        full = build.make_vmlinux("x86_64", allyes).image
        lean = build.make_vmlinux("x86_64", allmod).image
        assert len(lean.objects) < len(full.objects)

    def test_allnoconfig_minimal(self, build):
        allyes = build.make_config("x86_64", "allyesconfig")
        allno = build.make_config("x86_64", "allnoconfig")
        full = build.make_vmlinux("x86_64", allyes).image
        minimal = build.make_vmlinux("x86_64", allno).image
        assert len(minimal.objects) < len(full.objects)

    def test_image_contains_source_strings(self, build, tree):
        """String constants flow all the way into the image — the
        transport the paper's 'compiled image' idea relies on (§III)."""
        config = build.make_config("x86_64", "allyesconfig")
        image = build.make_vmlinux("x86_64", config).image
        # MODULE_LICENSE("GPL") strings from the drivers
        assert image.contains("GPL")

    def test_no_path_lister_raises(self, tree):
        from repro.errors import KbuildError
        build = BuildSystem(tree.provider())
        config = build.make_config("x86_64", "allyesconfig")
        with pytest.raises(KbuildError):
            build.make_vmlinux("x86_64", config)

    def test_keep_going_false_raises(self, build):
        from repro.kbuild.build import BuildError
        config = build.make_config("x86_64", "allyesconfig")
        with pytest.raises(BuildError):
            build.make_vmlinux("x86_64", config, keep_going=False)
