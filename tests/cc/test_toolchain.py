"""Tests for the toolchain registry and the make.cross matrix."""

import pytest

from repro.cc.toolchain import (
    Architecture,
    BROKEN_ARCHITECTURES,
    ToolchainRegistry,
    WORKING_ARCHITECTURES,
    arch_directory,
)
from repro.errors import ToolchainError


class TestMatrix:
    def test_counts_match_paper(self):
        """§II-A: 34 architectures listed, 24 work, 10 fail."""
        assert len(WORKING_ARCHITECTURES) == 24
        assert len(BROKEN_ARCHITECTURES) == 10
        assert len(set(WORKING_ARCHITECTURES) | set(BROKEN_ARCHITECTURES)) == 34

    def test_paper_named_architectures_present(self):
        for name in ("x86_64", "arm", "powerpc", "mips", "blackfin",
                     "parisc"):
            assert name in WORKING_ARCHITECTURES
        for name in ("arm64", "hexagon", "unicore32"):
            assert name in BROKEN_ARCHITECTURES


class TestDirectoryMapping:
    def test_x86_variants_share_directory(self):
        assert arch_directory("i386") == "x86"
        assert arch_directory("x86_64") == "x86"

    def test_sparc64_maps_to_sparc(self):
        assert arch_directory("sparc64") == "sparc"

    def test_default_is_identity(self):
        assert arch_directory("arm") == "arm"


class TestRegistry:
    def test_default_registry_has_all(self):
        registry = ToolchainRegistry()
        assert len(registry.names()) == 34
        assert len(registry.working_names()) == 24

    def test_host_defaults_to_x86_64(self):
        registry = ToolchainRegistry()
        assert registry.host.name == "x86_64"
        assert registry.host.bits == 64

    def test_unknown_host_rejected(self):
        with pytest.raises(ToolchainError):
            ToolchainRegistry(host="vax")

    def test_get_working(self):
        registry = ToolchainRegistry()
        arm = registry.get("arm")
        assert arm.name == "arm"
        assert "arch/arm/include" in arm.include_roots

    def test_get_broken_raises(self):
        registry = ToolchainRegistry()
        with pytest.raises(ToolchainError) as excinfo:
            registry.get("arm64")
        assert "make.cross" in str(excinfo.value)

    def test_get_unknown_raises(self):
        with pytest.raises(ToolchainError):
            ToolchainRegistry().get("pdp11")

    def test_for_directory_x86(self):
        registry = ToolchainRegistry()
        names = {arch.name for arch in registry.for_directory("x86")}
        assert names == {"i386", "x86_64"}

    def test_for_directory_excludes_broken(self):
        registry = ToolchainRegistry()
        names = {arch.name for arch in registry.for_directory("sh")}
        assert names == {"sh"}  # sh64 is broken

    def test_custom_registry(self):
        custom = Architecture(name="toy", bits=32,
                              include_roots=("arch/toy/include", "include"))
        registry = ToolchainRegistry(host="toy", architectures=[custom])
        assert registry.names() == ["toy"]
        assert registry.host.name == "toy"


class TestPredefines:
    def test_arch_macro(self):
        registry = ToolchainRegistry()
        assert registry.get("arm").predefines()["__arm__"] == "1"

    def test_kernel_macro_always_present(self):
        registry = ToolchainRegistry()
        assert registry.get("mips").predefines()["__KERNEL__"] == "1"

    def test_word_size(self):
        registry = ToolchainRegistry()
        assert registry.get("x86_64").predefines()["BITS_PER_LONG"] == "64"
        assert registry.get("arm").predefines()["BITS_PER_LONG"] == "32"
        assert "__LP64__" in registry.get("x86_64").predefines()
        assert "__LP64__" not in registry.get("arm").predefines()
