"""Tests for the linker and the §III 'compiled image' basic idea."""

import pytest

from repro.cc.compiler import Compiler, ObjectFile
from repro.cc.linker import KernelImage, LinkError, link
from repro.cc.toolchain import ToolchainRegistry
from repro.errors import CompileError

MUTATION = '`"code:drivers/a.c:3"'


def compile_files(files, paths, arch="x86_64", config=None):
    registry = ToolchainRegistry()
    compiler = Compiler(registry.get(arch), files.get,
                        config_macros=config or {})
    return [compiler.compile_object(path) for path in paths]


class TestLink:
    FILES = {
        "a.c": ('static int helper(int v) { return v + 1; }\n'
                'int a_entry(void) { return helper(probe_b()); }\n'),
        "b.c": ('char *tag = "b-module-v2";\n'
                'int probe_b(void) { return 0; }\n'),
    }

    def test_symbols_resolved_across_objects(self):
        objects = compile_files(self.FILES, ["a.c", "b.c"])
        image = link(objects)
        assert image.defined_in("probe_b") == "b.c"
        assert image.undefined == set()

    def test_undefined_reference_reported(self):
        objects = compile_files(self.FILES, ["a.c"])
        image = link(objects)
        assert "probe_b" in image.undefined

    def test_duplicate_symbol_raises(self):
        files = {"a.c": "int init(void) { return 1; }\n",
                 "b.c": "int init(void) { return 2; }\n"}
        objects = compile_files(files, ["a.c", "b.c"])
        with pytest.raises(LinkError) as excinfo:
            link(objects)
        assert "duplicate symbol" in str(excinfo.value)

    def test_mixed_architectures_raise(self):
        obj_x86 = ObjectFile(source="a.c", architecture="x86_64",
                             symbols=["a"])
        obj_arm = ObjectFile(source="b.c", architecture="arm",
                             symbols=["b"])
        with pytest.raises(LinkError):
            link([obj_x86, obj_arm])

    def test_empty_link_raises(self):
        with pytest.raises(LinkError):
            link([])

    def test_addresses_monotone_and_unique(self):
        objects = compile_files(self.FILES, ["a.c", "b.c"])
        image = link(objects)
        addresses = [image.address_of(s) for s in image.symbol_table]
        assert len(set(addresses)) == len(addresses)
        assert all(a >= 0xFFFF_0000_0000 for a in addresses)

    def test_rodata_carries_strings(self):
        objects = compile_files(self.FILES, ["a.c", "b.c"])
        image = link(objects)
        assert image.contains("b-module-v2")

    def test_image_size_deterministic(self):
        a = link(compile_files(self.FILES, ["a.c", "b.c"]))
        b = link(compile_files(self.FILES, ["a.c", "b.c"]))
        assert a.size == b.size > 4096


class TestPaperBasicIdea:
    """§III: 'check that all of the unique tokens are found in the
    compiled image' — works for valid builds, and is exactly what a
    mutated file makes impossible."""

    def test_token_in_string_reaches_the_image(self):
        # A token without the invalid character CAN be compiled and
        # found in the image — the string-literal transport works.
        files = {"a.c": 'char *t = "code:drivers/a.c:1";\nint f(void) '
                        '{ return 0; }\n'}
        image = link(compile_files(files, ["a.c"]))
        assert image.contains("code:drivers/a.c:1")

    def test_mutated_file_never_reaches_the_image(self):
        # The real mutation has the invalid char: no object, no image.
        files = {"a.c": f"int x;\n{MUTATION}\nint f(void) "
                        "{ return 0; }\n"}
        with pytest.raises(CompileError):
            compile_files(files, ["a.c"])
