"""Tests for lightweight syntax validation and symbol extraction."""

from repro.cc.lexer import lex_translation_unit
from repro.cc.parser import validate_unit


def validate(source):
    return validate_unit(lex_translation_unit(source))


class TestBalance:
    def test_balanced_unit_ok(self):
        outcome = validate("int f(void) { return (1 + 2); }\n")
        assert outcome.ok

    def test_unbalanced_close(self):
        outcome = validate("int f(void) { return 1; } }\n")
        assert not outcome.ok
        assert "unbalanced" in outcome.issues[0].message

    def test_unclosed_open(self):
        outcome = validate("int f(void) { return 1;\n")
        assert not outcome.ok
        assert "unclosed" in outcome.issues[0].message

    def test_mismatched_kinds(self):
        outcome = validate("int a[3) ;\n")
        assert not outcome.ok

    def test_empty_unit_rejected(self):
        outcome = validate("\n\n")
        assert not outcome.ok
        assert "empty" in outcome.issues[0].message

    def test_issue_carries_position(self):
        outcome = validate('# 42 "f.c"\nint f( {\n')
        # the unclosed paren is reported at its opening position
        assert not outcome.ok
        assert outcome.issues[0].file == "f.c"
        assert outcome.issues[0].line == 42


class TestSymbols:
    def test_function_definition_extracted(self):
        outcome = validate("static int das16cs_ai_rinsn(int dev) { return 0; }\n")
        assert outcome.symbols == ["das16cs_ai_rinsn"]

    def test_declaration_not_extracted(self):
        outcome = validate("int forward_decl(int dev);\n")
        assert outcome.symbols == []

    def test_call_inside_body_not_extracted(self):
        outcome = validate("int f(void) { helper(1); return 0; }\n")
        assert outcome.symbols == ["f"]

    def test_keyword_not_a_symbol(self):
        outcome = validate("int f(void) { if (1) { } return 0; }\n")
        assert "if" not in outcome.symbols

    def test_multiple_functions(self):
        outcome = validate("int a(void) { }\nint b(void) { }\n")
        assert outcome.symbols == ["a", "b"]

    def test_struct_and_globals_ignored(self):
        outcome = validate("struct s { int x; };\nint g;\n")
        assert outcome.symbols == []
