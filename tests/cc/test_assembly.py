"""Tests for .s/.lst generation and the §III-A rejection rationale."""

import pytest

from repro.cc.assembly import emit_assembly
from repro.cc.compiler import Compiler
from repro.cc.toolchain import ToolchainRegistry
from repro.errors import CompileError

MUTATION = '`"define:a.c:1"'


def compiler_for(files, arch="x86_64"):
    registry = ToolchainRegistry()
    return Compiler(registry.get(arch), files.get)


class TestEmission:
    def test_clean_file_produces_both_artifacts(self):
        files = {"a.c": "int f(void)\n{\n\treturn 42;\n}\n"}
        listing = emit_assembly(compiler_for(files), "a.c")
        assert '.file\t"a.c"' in listing.s_text
        assert ".globl\tf" in listing.s_text
        assert "mov\tr0, #42" in listing.s_text
        assert "a.c" in listing.lst_text

    def test_covered_lines_tracked(self):
        files = {"a.c": "int f(void)\n{\n\treturn 42;\n}\n"}
        listing = emit_assembly(compiler_for(files), "a.c")
        assert ("a.c", 1) in listing.covered_lines
        assert ("a.c", 3) in listing.covered_lines

    def test_arch_recorded(self):
        files = {"a.c": "int x;\n"}
        listing = emit_assembly(compiler_for(files, arch="arm"), "a.c")
        assert listing.architecture == "arm"
        assert ".arch\tarm" in listing.s_text


class TestPaperRationale:
    def test_mutated_file_cannot_produce_assembly(self):
        """§III-A: .s/.lst/.o are only generated for files that pass
        the front end — which a mutation never does."""
        files = {"a.c": f"int x;\n{MUTATION}\n"}
        with pytest.raises(CompileError):
            emit_assembly(compiler_for(files), "a.c")

    def test_macro_lines_lost_in_listing(self):
        """§III-A: 'the original line numbers of macros are not
        preserved in the .i, .s, and .lst files' — code from a macro
        body is attributed to the use site."""
        files = {"a.c": ("#define BODY 1234\n"      # line 1: definition
                         "int f(void)\n"
                         "{\n"
                         "\treturn BODY;\n"          # line 4: use site
                         "}\n")}
        listing = emit_assembly(compiler_for(files), "a.c")
        assert ("a.c", 4) in listing.covered_lines   # use site present
        assert ("a.c", 1) not in listing.covered_lines  # definition lost
        assert "#1234" in listing.s_text
