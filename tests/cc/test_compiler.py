"""Tests for the compiler facade — the make file.i / file.o equivalents."""

import pytest

from repro.cc.compiler import Compiler
from repro.cc.toolchain import ToolchainRegistry
from repro.errors import CompileError

MUTATION = '`"define:drivers/a.c:3"'


def compiler_for(files, arch="x86_64", config=None):
    registry = ToolchainRegistry()
    return Compiler(registry.get(arch), files.get, config_macros=config)


class TestPreprocess:
    def test_arch_include_roots_used(self):
        files = {
            "drivers/a.c": "#include <asm/io.h>\nint x = IO_BASE;\n",
            "arch/x86/include/asm/io.h": "#define IO_BASE 0x3f8\n",
        }
        result = compiler_for(files).preprocess("drivers/a.c")
        assert "int x = 0x3f8;" in result.text

    def test_wrong_arch_missing_header(self):
        files = {
            "drivers/a.c": "#include <asm/arm_only.h>\nint x;\n",
            "arch/arm/include/asm/arm_only.h": "#define A 1\n",
        }
        with pytest.raises(CompileError):
            compiler_for(files, arch="x86_64").compile_object("drivers/a.c")
        # Same file compiles for arm.
        obj = compiler_for(files, arch="arm").compile_object("drivers/a.c")
        assert obj.architecture == "arm"

    def test_config_macros_injected(self):
        files = {"a.c": "#ifdef CONFIG_PCI\nint pci;\n#endif\nint x;\n"}
        with_pci = compiler_for(files, config={"CONFIG_PCI": "1"})
        assert "int pci;" in with_pci.preprocess("a.c").text
        without = compiler_for(files)
        assert "int pci;" not in without.preprocess("a.c").text

    def test_arch_conditional_source(self):
        files = {"a.c": "#ifdef __arm__\nint arm_only;\n#endif\nint x;\n"}
        assert "arm_only" in compiler_for(files, arch="arm") \
            .preprocess("a.c").text
        assert "arm_only" not in compiler_for(files, arch="x86_64") \
            .preprocess("a.c").text


class TestCompileObject:
    def test_clean_compile(self):
        files = {"a.c": "static int probe(int dev) { return dev; }\n"}
        obj = compiler_for(files).compile_object("a.c")
        assert obj.symbols == ["probe"]
        assert obj.size > 0

    def test_mutated_file_fails_with_stray_diagnostic(self):
        """§III-A: mutations preprocess fine but can never make a .o."""
        files = {"a.c": f"int x;\n{MUTATION}\nint y;\n"}
        compiler = compiler_for(files)
        # .i generation succeeds...
        assert MUTATION in compiler.preprocess("a.c").text
        # ...but .o generation fails.
        with pytest.raises(CompileError) as excinfo:
            compiler.compile_object("a.c")
        assert any("stray" in diag.message
                   for diag in excinfo.value.diagnostics)

    def test_macro_mutation_reported_at_use_site(self):
        """The gcc 4.8 behaviour that doomed error-message scraping:
        the stray char in a macro body is attributed to the use site."""
        files = {"a.c": (f"#define M(x) ((x) + 1) {MUTATION}\n"
                         "int f(void) { return M(2); }\n")}
        with pytest.raises(CompileError) as excinfo:
            compiler_for(files).compile_object("a.c")
        diag = excinfo.value.diagnostics[0]
        assert diag.line == 2  # the use site, not the #define on line 1

    def test_missing_include_is_compile_error(self):
        files = {"a.c": '#include "nope.h"\nint x;\n'}
        with pytest.raises(CompileError):
            compiler_for(files).compile_object("a.c")

    def test_syntax_error_reported(self):
        files = {"a.c": "int f(void) { return 1;\n"}
        with pytest.raises(CompileError) as excinfo:
            compiler_for(files).compile_object("a.c")
        assert "unclosed" in excinfo.value.diagnostics[0].message

    def test_diagnostic_render(self):
        files = {"a.c": f"{MUTATION}\n"}
        with pytest.raises(CompileError) as excinfo:
            compiler_for(files).compile_object("a.c")
        rendered = excinfo.value.diagnostics[0].render()
        assert rendered.startswith("a.c:1: error:")

    def test_object_size_scales_with_tokens(self):
        small = compiler_for({"a.c": "int f(void) { return 0; }\n"}) \
            .compile_object("a.c")
        big_source = "int f(void) { return 0; }\n" * 50
        big = compiler_for({"a.c": big_source}).compile_object("a.c")
        assert big.size > small.size
