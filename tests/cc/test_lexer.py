"""Tests for the compiler-side lexer with line-marker tracking."""

from repro.cc.lexer import lex_translation_unit


class TestLineMarkers:
    def test_positions_follow_markers(self):
        text = ('# 1 "f.c"\n'
                "int x;\n"
                '# 10 "f.c"\n'
                "int y;\n")
        result = lex_translation_unit(text)
        by_ident = {t.token.text: t for t in result.tokens
                    if t.token.text in ("x", "y")}
        assert by_ident["x"].line == 1
        assert by_ident["y"].line == 10

    def test_file_switches_on_include_markers(self):
        text = ('# 1 "main.c"\n'
                "int a;\n"
                '# 1 "inc.h"\n'
                "int b;\n"
                '# 3 "main.c"\n'
                "int c;\n")
        result = lex_translation_unit(text)
        files = {t.token.text: t.file for t in result.tokens
                 if t.token.text in ("a", "b", "c")}
        assert files == {"a": "main.c", "b": "inc.h", "c": "main.c"}

    def test_lines_advance_between_markers(self):
        text = ('# 5 "f.c"\n'
                "int a;\n"
                "int b;\n")
        result = lex_translation_unit(text)
        lines = {t.token.text: t.line for t in result.tokens
                 if t.token.text in ("a", "b")}
        assert lines == {"a": 5, "b": 6}

    def test_no_marker_defaults_to_main_file(self):
        result = lex_translation_unit("int a;\n", main_file="z.c")
        assert result.tokens[0].file == "z.c"


class TestStrayCharacters:
    def test_clean_unit_has_no_strays(self):
        result = lex_translation_unit("int x = (3 + 4);\n")
        assert result.stray_characters == []

    def test_mutation_char_is_stray(self):
        result = lex_translation_unit('# 7 "f.c"\nint x; `"tag"\n')
        assert len(result.stray_characters) == 1
        stray = result.stray_characters[0]
        assert stray.token.text == "`"
        assert stray.file == "f.c"
        assert stray.line == 7

    def test_mutation_string_payload_not_stray(self):
        # The string after the backtick is a valid token.
        result = lex_translation_unit('`"define:f.c:1"\n')
        assert len(result.stray_characters) == 1

    def test_backtick_inside_string_not_stray(self):
        result = lex_translation_unit('char *s = "a`b";\n')
        assert result.stray_characters == []

    def test_at_sign_is_stray(self):
        result = lex_translation_unit("int @ x;\n")
        assert len(result.stray_characters) == 1

    def test_multiple_strays_all_reported(self):
        result = lex_translation_unit('`x\n`y\n')
        assert len(result.stray_characters) == 2


class TestIdentifiers:
    def test_identifier_listing(self):
        result = lex_translation_unit("static int foo(int bar) { }\n")
        idents = result.identifiers()
        assert "foo" in idents
        assert "bar" in idents
