"""End-to-end integration at a medium corpus scale.

One run, many invariants: this is the closest the test suite gets to the
paper's full §V pipeline, exercising corpus generation, parallel
evaluation, and every aggregation at once.
"""

import pytest

from repro.core.report import FileStatus
from repro.evalsuite.experiments import EXPERIMENTS
from repro.evalsuite.runner import EvaluationRunner
from repro.evalsuite.tables import table3, table4
from repro.workload.corpus import CorpusSpec, build_corpus


@pytest.fixture(scope="module")
def result():
    corpus = build_corpus(CorpusSpec(seed="integration-scale",
                                     history_commits=300,
                                     eval_commits=400,
                                     regular_developers=20))
    return EvaluationRunner(corpus).run(jobs=2)


class TestHeadline:
    def test_certified_rates_in_paper_band(self, result):
        certified = sum(1 for p in result.patches if p.certified)
        fraction = certified / len(result.patches)
        assert 0.75 <= fraction <= 0.95

    def test_every_experiment_produces_output(self, result):
        for experiment in EXPERIMENTS.values():
            data, text = experiment.run(result)
            assert text

    def test_verdict_vocabulary_exercised(self, result):
        statuses = {record.status for record in result.file_instances()}
        assert FileStatus.OK in statuses
        assert FileStatus.LINES_NOT_COMPILED in statuses
        assert FileStatus.COMMENT_ONLY in statuses
        assert FileStatus.BOOTSTRAP_UNTREATABLE in statuses

    def test_tables_consistent_with_raw_records(self, result):
        rows, _ = table3(result)
        assert sum(row.all_patches.count for row in rows) == \
            len(result.patches)
        counts, _ = table4(result, janitor_only=False)
        failing = [record for record in result.file_instances()
                   if record.status is FileStatus.LINES_NOT_COMPILED
                   and record.hazard_kinds]
        assert sum(counts.values()) <= len(failing) * 2  # multi-kind files

    def test_timing_totals_add_up(self, result):
        for patch in result.patches[:50]:
            step_total = sum(sum(durations) for durations in
                             patch.invocation_durations.values())
            assert step_total == pytest.approx(patch.elapsed_seconds,
                                               rel=1e-6)
